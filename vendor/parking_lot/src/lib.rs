//! In-tree stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns a guard directly instead of a `Result`. If a thread
//! panics while holding a lock, the lock is recovered (poisoning is
//! discarded) — the same observable behavior parking_lot guarantees.

use std::fmt;
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can move it out
/// and back without unsafe code; the slot is only empty during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A reader-writer lock whose acquisitions cannot fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the guard.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| {
            self.inner.wait(g).unwrap_or_else(|e| e.into_inner())
        });
    }

    /// Blocks until notified or the timeout elapses; returns `true` if the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, result) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = result.timed_out();
            g
        });
        timed_out
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Runs `f` on the underlying std guard, replacing it in place.
fn replace_guard<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    let inner = guard.inner.take().expect("guard present outside wait");
    guard.inner = Some(f(inner));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cvar.wait(&mut started);
        }
        handle.join().unwrap();
        assert!(*started);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let lock = Mutex::new(());
        let cvar = Condvar::new();
        let mut guard = lock.lock();
        assert!(cvar.wait_for(&mut guard, Duration::from_millis(10)));
    }
}
