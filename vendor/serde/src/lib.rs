//! In-tree stand-in for `serde`.
//!
//! The build environment has no access to a crate registry, so the workspace
//! vendors the narrow slice of the serde API it actually uses: the
//! [`Serialize`] / [`Deserialize`] traits, a JSON-shaped [`Value`] data
//! model, and (behind the `derive` feature) the two derive macros.
//!
//! Unlike real serde there is no serializer/deserializer abstraction: types
//! convert to and from [`Value`] directly, and `serde_json` (also vendored)
//! renders values to text. This keeps the public surface used by the
//! repository — `#[derive(Serialize, Deserialize)]`, trait bounds, and
//! `serde_json::{to_string, to_string_pretty, from_str}` — source-compatible.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered so output is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required struct field, with a typed error on absence.
    pub fn field(&self, ty: &str, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(_) => self
                .get(name)
                .ok_or_else(|| Error::custom(format!("missing field `{name}` of `{ty}`"))),
            other => Err(Error::custom(format!(
                "expected object for `{ty}`, got {}",
                other.kind()
            ))),
        }
    }

    /// A short name for the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The value as an `f64`, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(n) => Some(n as f64),
            Value::U64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(n) => u64::try_from(n).ok(),
            Value::U64(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Converts a type into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Reconstructs a type from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialization helper traits, mirroring `serde::de`.
pub mod de {
    /// Marker for types deserializable without borrowing from the input —
    /// with this stub's owned data model, every [`Deserialize`](crate::Deserialize)
    /// type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Serialization helper module, mirroring `serde::ser`.
pub mod ser {
    pub use crate::{Error, Serialize};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {}", v.kind())))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(n) => Value::I64(n),
            Err(_) => Value::U64(*self),
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_u64()
            .ok_or_else(|| Error::custom(format!("expected unsigned integer, got {}", v.kind())))
    }
}

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(n) => n.to_value(),
            Err(_) => Value::String(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if let Some(n) = v.as_u64() {
            return Ok(u128::from(n));
        }
        v.as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| Error::custom(format!("expected u128, got {}", v.kind())))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|n| n as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected string, got {}", v.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

impl<T: Serialize + std::cmp::Eq + std::hash::Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::cmp::Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(|items| items.into_iter().collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(|items| items.into_iter().collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic across hasher states.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+ ; $len:expr)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected array, got {}", v.kind())))?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, got array of {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4),
    (A.0, B.1, C.2, D.3, E.4; 5)
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i64::from_value(&42i32.to_value()).unwrap(), 42);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        let round: Vec<(f64, f64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(round, v);
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn object_field_lookup() {
        let obj = Value::Object(vec![("a".into(), Value::I64(1))]);
        assert_eq!(obj.get("a"), Some(&Value::I64(1)));
        assert!(obj.field("T", "missing").is_err());
        assert!(Value::Null.field("T", "a").is_err());
    }

    #[test]
    fn errors_report_kinds() {
        let err = f64::from_value(&Value::String("x".into())).unwrap_err();
        assert!(err.to_string().contains("string"));
    }
}
