//! In-tree stand-in for `crossbeam`.
//!
//! Provides the two pieces the campaign executor builds on:
//!
//! * [`deque`] — a work-stealing scheduler substrate: a shared [`deque::Injector`]
//!   plus per-worker [`deque::Worker`] queues with [`deque::Stealer`] handles,
//!   mirroring `crossbeam-deque`'s API shape.
//! * [`channel`] — cloneable MPMC channels over `std::sync::mpsc` with a
//!   mutexed receiver.
//!
//! The implementations favor clarity over lock-free cleverness (the real
//! crate's Chase-Lev deques are replaced with mutexed `VecDeque`s); the unit
//! of scheduled work here is an entire simulation run, so queue overhead is
//! noise. The API mirroring keeps call sites source-compatible with real
//! crossbeam.

pub mod deque {
    //! Work-stealing double-ended queues, after `crossbeam-deque`.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// The result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The attempt lost a race; the caller may retry.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// A global FIFO injector queue, shared by all workers.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("injector lock").push_back(task);
        }

        /// Steals one task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector lock").pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Steals a batch of tasks into `worker`'s local queue and pops one.
        pub fn steal_batch_and_pop(&self, worker: &Worker<T>) -> Steal<T> {
            let mut queue = self.queue.lock().expect("injector lock");
            let first = match queue.pop_front() {
                Some(task) => task,
                None => return Steal::Empty,
            };
            // Move up to half of the remainder over to the local queue.
            let batch = queue.len().div_ceil(2).min(16);
            let mut local = worker.queue.lock().expect("worker lock");
            for _ in 0..batch {
                match queue.pop_front() {
                    Some(task) => local.push_back(task),
                    None => break,
                }
            }
            Steal::Success(first)
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector lock").is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector lock").len()
        }
    }

    /// A worker-local queue; the owning worker pops LIFO-free (FIFO here),
    /// thieves steal from the opposite end.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a FIFO worker queue.
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the local queue.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("worker lock").push_back(task);
        }

        /// Pops the next local task.
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("worker lock").pop_front()
        }

        /// Whether the local queue is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("worker lock").is_empty()
        }

        /// Creates a stealer handle for other workers.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A handle for stealing tasks from another worker's queue.
    #[derive(Debug)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steals one task from the back of the victim's queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("stealer lock").pop_back() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Whether the victim's queue is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("stealer lock").is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }
}

pub mod channel {
    //! Cloneable MPMC channels, after `crossbeam-channel`.

    use std::sync::{mpsc, Arc, Mutex};

    /// Error returned by [`Receiver::recv`] on a closed, drained channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sending half; cloneable.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// The receiving half; cloneable (receives are serialized by a mutex).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    impl<T> Sender<T> {
        /// Sends a message, failing if every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; errors when the channel is closed
        /// and drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner
                .lock()
                .expect("receiver lock")
                .recv()
                .map_err(|_| RecvError)
        }

        /// Receives without blocking, if a message is ready.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.lock().expect("receiver lock").try_recv().ok()
        }

        /// Drains and collects every currently queued message.
        pub fn try_iter(&self) -> Vec<T> {
            let rx = self.inner.lock().expect("receiver lock");
            let mut out = Vec::new();
            while let Ok(v) = rx.try_recv() {
                out.push(v);
            }
            out
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn injector_fifo_order() {
        let inj = Injector::new();
        inj.push(1);
        inj.push(2);
        assert_eq!(inj.len(), 2);
        assert_eq!(inj.steal(), Steal::Success(1));
        assert_eq!(inj.steal(), Steal::Success(2));
        assert!(inj.steal().is_empty());
    }

    #[test]
    fn batch_steal_moves_work_locally() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let worker = Worker::new_fifo();
        assert_eq!(inj.steal_batch_and_pop(&worker), Steal::Success(0));
        assert!(!worker.is_empty());
        let mut drained = Vec::new();
        while let Some(x) = worker.pop() {
            drained.push(x);
        }
        // Local batch holds the next tasks in order.
        assert_eq!(drained, (1..=drained.len() as i32).collect::<Vec<_>>());
    }

    #[test]
    fn stealers_take_from_the_back() {
        let worker = Worker::new_fifo();
        worker.push(1);
        worker.push(2);
        let stealer = worker.stealer();
        assert_eq!(stealer.steal(), Steal::Success(2));
        assert_eq!(worker.pop(), Some(1));
    }

    #[test]
    fn concurrent_workers_drain_everything() {
        let inj = Arc::new(Injector::new());
        for i in 0..1000 {
            inj.push(i);
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let inj = Arc::clone(&inj);
            handles.push(thread::spawn(move || {
                let worker = Worker::new_fifo();
                let mut count = 0usize;
                loop {
                    let task = worker
                        .pop()
                        .or_else(|| inj.steal_batch_and_pop(&worker).success());
                    match task {
                        Some(_) => count += 1,
                        None => break,
                    }
                }
                count
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn channels_fan_in() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        thread::spawn(move || tx2.send(1).unwrap());
        tx.send(2).unwrap();
        drop(tx);
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert!(rx.recv().is_err());
    }
}
