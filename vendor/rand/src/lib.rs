//! In-tree stand-in for `rand`.
//!
//! The workspace's deterministic generator (`eaao_simcore::rng::SimRng`)
//! implements the `rand` *trait surface* — [`RngCore`] and [`SeedableRng`] —
//! so downstream code can use standard idioms (`rng.next_u64()`,
//! `rng.gen::<u64>()`). Only the traits are vendored; there are no OS
//! entropy sources or distributions here, which is exactly right for a
//! simulator that must never draw nondeterministic randomness.

use std::fmt;

/// Error type for fallible RNG operations (never produced by this
/// workspace's generators).
#[derive(Debug, Clone)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator failure")
    }
}

impl std::error::Error for Error {}

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible byte fill (infallible for deterministic generators).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, padding the seed with zeros.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for (chunk, byte) in seed
            .as_mut()
            .iter_mut()
            .zip(state.to_le_bytes().iter().cycle())
        {
            *chunk = *byte;
        }
        Self::from_seed(seed)
    }
}

/// Values samplable from raw random bits.
pub trait Random: Sized {
    /// Draws a value from the generator.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for i64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience extension over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly random value.
    fn gen<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn gen_draws_through_the_trait() {
        let mut rng = Counter(0);
        let a: u64 = rng.gen();
        assert_eq!(a, 1);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
        assert!(rng.try_fill_bytes(&mut [0u8; 3]).is_ok());
    }
}
