//! In-tree stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! vendored `serde` stub's value model (`Serialize::to_value` /
//! `Deserialize::from_value`). The parser is hand-rolled over
//! `proc_macro::TokenStream` — no `syn`/`quote` — and supports the shapes this
//! repository uses:
//!
//! * structs with named fields,
//! * tuple structs (single-field newtypes serialize transparently),
//! * unit structs,
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde's default).
//!
//! Generic types and `#[serde(...)]` attributes are intentionally not
//! supported; deriving on one produces a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` via the value model.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

/// Derives `serde::Deserialize` via the value model.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, direction: Direction) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => generate(&name, &shape, direction)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error token parses"),
    }
}

/// Parses the deriving item down to its name and field/variant layout.
fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("derive expects a struct or enum".to_owned()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("missing type name".to_owned()),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the vendored serde derive does not support generics (on `{name}`)"
        ));
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::TupleStruct(count_tuple_fields(g.stream()))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            _ => Err(format!("unsupported struct body for `{name}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            _ => Err(format!("missing enum body for `{name}`")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Advances past `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // `#`
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // `[...]`
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Extracts field names from the body of a braced struct.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token in struct body: {other}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(fields)
}

/// Advances past a type, stopping at a top-level `,` (tracks `<...>` depth;
/// parenthesized and bracketed types arrive as atomic groups).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

/// Extracts the variants of an enum body.
fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token in enum body: {other}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream())?;
                i += 1;
                VariantFields::Named(names)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                VariantFields::Tuple(n)
            }
            _ => VariantFields::Unit,
        };
        // Skip a discriminant (`= expr`) if present.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_type(&tokens, &mut i);
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn generate(name: &str, shape: &Shape, direction: Direction) -> String {
    match direction {
        Direction::Serialize => generate_serialize(name, shape),
        Direction::Deserialize => generate_deserialize(name, shape),
    }
}

fn generate_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{pushes}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::TupleStruct(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Shape::UnitStruct => "::serde::Value::Null".to_owned(),
        Shape::Enum(variants) => {
            let arms: String = variants.iter().map(|v| serialize_arm(name, v)).collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_arm(name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.fields {
        VariantFields::Unit => {
            format!("{name}::{v} => ::serde::Value::String(::std::string::String::from({v:?})),")
        }
        VariantFields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let pattern = binds.join(", ");
            let payload = if *n == 1 {
                "::serde::Serialize::to_value(__f0)".to_owned()
            } else {
                let items: String = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b}),"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{items}])")
            };
            format!(
                "{name}::{v}({pattern}) => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from({v:?}), {payload})]),"
            )
        }
        VariantFields::Named(fields) => {
            let pattern = fields.join(", ");
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value({f})),"
                    )
                })
                .collect();
            format!(
                "{name}::{v} {{ {pattern} }} => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from({v:?}), \
                 ::serde::Value::Object(::std::vec![{pushes}]))]),"
            )
        }
    }
}

fn generate_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         __v.field({name:?}, {f:?})?)?,"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?,"))
                .collect();
            format!(
                "let __items = __v.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if __items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\
                     \"wrong tuple arity for {name}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({inits}))"
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => generate_enum_deserialize(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

fn generate_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.fields, VariantFields::Unit))
        .map(|v| format!("{0:?} => ::std::result::Result::Ok({name}::{0}),", v.name))
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|v| match &v.fields {
            VariantFields::Unit => None,
            VariantFields::Tuple(1) => Some(format!(
                "{0:?} => ::std::result::Result::Ok(\
                 {name}::{0}(::serde::Deserialize::from_value(__payload)?)),",
                v.name
            )),
            VariantFields::Tuple(n) => {
                let inits: String = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?,"))
                    .collect();
                Some(format!(
                    "{0:?} => {{\n\
                         let __items = __payload.as_array().ok_or_else(|| \
                         ::serde::Error::custom(\"expected array payload\"))?;\n\
                         if __items.len() != {n} {{\n\
                             return ::std::result::Result::Err(\
                             ::serde::Error::custom(\"wrong variant arity\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}::{0}({inits}))\n\
                     }},",
                    v.name
                ))
            }
            VariantFields::Named(fields) => {
                let inits: String = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(\
                             __payload.field({name:?}, {f:?})?)?,"
                        )
                    })
                    .collect();
                Some(format!(
                    "{0:?} => ::std::result::Result::Ok({name}::{0} {{ {inits} }}),",
                    v.name
                ))
            }
        })
        .collect();
    format!(
        "match __v {{\n\
             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
             }},\n\
             ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                 let (__tag, __payload) = &__fields[0];\n\
                 match __tag.as_str() {{\n\
                     {tagged_arms}\n\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
             }},\n\
             __other => ::std::result::Result::Err(::serde::Error::custom(\
             ::std::format!(\"expected {name} variant, got {{}}\", __other.kind()))),\n\
         }}"
    )
}
