//! In-tree stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace uses: range and
//! collection strategies, `prop_map`, `prop_oneof!`, tuple composition,
//! and the `proptest!` / `prop_assert!` macros. Two deliberate
//! simplifications versus the real crate:
//!
//! * **Deterministic by construction** — case inputs derive from a hash of
//!   the test name and the case index, never from OS entropy, so a failure
//!   reproduces on every run with no persistence file.
//! * **No shrinking** — a failing case reports the exact generated input
//!   (inputs here are small tuples and short vectors, readable as-is).

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the strategy.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// A strategy mapped through a function; see [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// A type-erased strategy; see [`Strategy::boxed`].
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample(rng)
        }
    }

    /// A uniform choice among several strategies; backs `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given options (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Width computed in u64 via wrapping sub: correct for
                    // signed ranges since the span is <= u64::MAX.
                    let width = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(width)) as $t
                }
            }
        )+};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    impl Strategy for Range<char> {
        type Value = char;
        fn sample(&self, rng: &mut TestRng) -> char {
            let (lo, hi) = (self.start as u32, self.end as u32);
            char::from_u32(lo + rng.below((hi - lo) as u64) as u32).unwrap_or(self.start)
        }
    }

    impl Strategy for bool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy for `Vec`s with uniformly chosen length; see [`vec()`](vec()).
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `size` elements (length drawn uniformly from the range),
    /// each generated by `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case generation and execution.

    use crate::strategy::Strategy;
    use std::fmt;

    /// The deterministic generator behind every strategy (splitmix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from an arbitrary 64-bit value.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A test-case failure (from `prop_assert!` or an explicit `Err`).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property does not hold.
        Fail(String),
        /// The input was rejected (counted, not failed).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// A rejection with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Execution knobs for `proptest!` blocks.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Upper bound on shrinking steps after a failure (the stand-in
        /// reports the failing input without shrinking, but the knob is
        /// kept so config literals using struct update stay portable).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 48,
                max_shrink_iters: 1024,
            }
        }
    }

    /// Runs a property over deterministically generated cases.
    pub struct TestRunner {
        config: ProptestConfig,
        seed: u64,
    }

    impl TestRunner {
        /// A runner whose case stream is a pure function of `name`.
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                seed ^= u64::from(byte);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner { config, seed }
        }

        /// Samples `config.cases` inputs and checks the property on each,
        /// panicking with the offending input on the first failure.
        pub fn run<S>(
            &mut self,
            strategy: &S,
            mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
        ) where
            S: Strategy,
            S::Value: fmt::Debug + Clone,
        {
            for case in 0..self.config.cases {
                let mut rng = TestRng::new(self.seed ^ (u64::from(case) << 32 | 0x5DEE_CE66));
                let input = strategy.sample(&mut rng);
                match test(input.clone()) {
                    Ok(()) => {}
                    Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(message)) => panic!(
                        "property failed on case {case}/{total}: {message}\n  input: {input:?}",
                        total = self.config.cases,
                    ),
                }
            }
        }
    }
}

/// Everything a `proptest!` block needs in scope.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that checks the body over generated inputs.
///
/// An optional leading `#![proptest_config(expr)]` overrides the
/// [`ProptestConfig`](crate::test_runner::ProptestConfig) for the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner =
                $crate::test_runner::TestRunner::new($config, stringify!($name));
            let strategy = ($($strategy,)+);
            runner.run(&strategy, |($($arg,)+)| {
                $body
                Ok(())
            });
        }
    )*};
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) so the runner can report the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {{
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    }};
    ($cond:expr, $($fmt:tt)+) => {{
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    }};
}

/// `prop_assert!` for equality, reporting both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: both sides equal `{:?}`",
            left
        );
    }};
}

/// A strategy choosing uniformly among the listed strategies (which must
/// all produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Shape {
        Dot,
        Line(i64),
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -50i64..50, f in 0.25f64..0.75, b in 0u8..3) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(b < 3);
        }

        #[test]
        fn vec_lengths_land_in_range(xs in crate::collection::vec(0u32..10, 2..6)) {
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_map_compose(shape in prop_oneof![
            (0i64..10).prop_map(Shape::Line),
            (0i64..1).prop_map(|_| Shape::Dot),
        ]) {
            match shape {
                Shape::Dot => {}
                Shape::Line(n) => prop_assert!((0..10).contains(&n)),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]

        #[test]
        fn config_override_applies(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn same_name_means_same_cases() {
        let sample = |name: &str| {
            let mut runner = TestRunner::new(
                ProptestConfig {
                    cases: 5,
                    ..ProptestConfig::default()
                },
                name,
            );
            let mut values = Vec::new();
            runner.run(&(0u64..1_000_000), |x| {
                values.push(x);
                Ok(())
            });
            values
        };
        assert_eq!(sample("alpha"), sample("alpha"));
        assert_ne!(sample("alpha"), sample("beta"));
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_the_input() {
        let mut runner = TestRunner::new(ProptestConfig::default(), "doomed");
        runner.run(&(0u64..10), |x| {
            prop_assert!(x > 100, "x was {x}");
            Ok(())
        });
    }
}
