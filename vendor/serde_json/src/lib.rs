//! In-tree stand-in for `serde_json`.
//!
//! Renders the vendored `serde` stub's [`Value`] model to JSON text and
//! parses JSON text back. Supports the functions the repository calls:
//! [`to_string`], [`to_string_pretty`], [`to_value`], [`from_value`], and
//! [`from_str`].
//!
//! Numbers print with Rust's shortest-roundtrip float formatting; non-finite
//! floats render as `null` (matching real serde_json's `Value` behavior).

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts a serializable type into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Parses JSON text into a type.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // Keep integral floats distinguishable from integers, as
                // serde_json does ("1.0" not "1").
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{n:.1}"));
                } else {
                    out.push_str(&n.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            ('[', ']'),
            items.iter(),
            items.len(),
            indent,
            depth,
            |o, x, d| write_value(o, x, indent, d),
        ),
        Value::Object(fields) => {
            write_seq(
                out,
                ('{', '}'),
                fields.iter(),
                fields.len(),
                indent,
                depth,
                |o, (k, x), d| {
                    write_escaped(o, k);
                    o.push(':');
                    if indent.is_some() {
                        o.push(' ');
                    }
                    write_value(o, x, indent, d);
                },
            );
        }
    }
}

fn write_seq<I: Iterator>(
    out: &mut String,
    (open, close): (char, char),
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    if len > 0 {
        for (i, item) in items.enumerate() {
            if i > 0 {
                out.push(',');
            }
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * (depth + 1)));
            }
            write_item(out, item, depth + 1);
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!("trailing input at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_at(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::custom("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::custom(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::custom(format!("expected `:` at byte {pos}")));
                }
                *pos += 1;
                let value = parse_at(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error::custom(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::custom(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::custom(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::custom("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::custom("invalid \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::custom("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::custom("invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::custom("invalid number"))?;
    if text.is_empty() {
        return Err(Error::custom(format!("expected value at byte {start}")));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::I64(n));
        }
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::U64(n));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error::custom(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("x".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::I64(1), Value::F64(2.5)]),
            ),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(
            compact,
            r#"{"name":"x","xs":[1,2.5],"ok":true,"none":null}"#
        );
        let parsed = parse_value(&compact).unwrap();
        assert_eq!(parsed, v);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"x\""));
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&-3.0f64).unwrap(), "-3.0");
        assert_eq!(to_string(&1.25f64).unwrap(), "1.25");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{1}f✓".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn typed_roundtrip() {
        let xs = vec![(1.0f64, 2.0f64), (3.5, -4.5)];
        let json = to_string(&xs).unwrap();
        let back: Vec<(f64, f64)> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("nul").is_err());
    }

    #[test]
    fn big_u64_roundtrips_exactly() {
        let n = u64::MAX;
        let json = to_string(&n).unwrap();
        let back: u64 = from_str(&json).unwrap();
        assert_eq!(back, n);
    }
}
