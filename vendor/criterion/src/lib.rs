//! In-tree stand-in for `criterion`.
//!
//! Mirrors the criterion API surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! `criterion_group!`, `criterion_main!` — over a plain wall-clock
//! harness: each benchmark runs a warm-up pass, then `sample_size` timed
//! samples, and reports min / mean / max per-iteration times. There is no
//! statistical outlier analysis or HTML report; the numbers are for
//! regression eyeballing, not publication.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` as well as
/// `std::hint::black_box`.
pub use std::hint::black_box;

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for the rest of this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.criterion.sample_size,
            f,
        );
        self
    }

    /// Runs a parameterized benchmark; `input` is passed to the closure.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.criterion.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name, a bare parameter, or both.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(name), Some(p)) => write!(f, "{name}/{p}"),
            (Some(name), None) => write!(f, "{name}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // One untimed warm-up pass to populate caches and lazy state.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{name:<50} time: [{} {} {}]",
        format_duration(min),
        format_duration(mean),
        format_duration(max)
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Defines a benchmark group function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Defines `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_the_requested_samples() {
        let mut ran = 0usize;
        run_benchmark("noop", 5, |b| {
            b.iter(|| ran += 1);
        });
        // 5 timed samples plus 1 warm-up.
        assert_eq!(ran, 6);
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(
            BenchmarkId::new("hierarchical", 64).to_string(),
            "hierarchical/64"
        );
        assert_eq!(BenchmarkId::from_parameter(800).to_string(), "800");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }

    #[test]
    fn group_api_is_chainable() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("one", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.bench_function("named", |b| b.iter(|| black_box(0)));
        group.finish();
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
