//! # EAAO — Everywhere All at Once
//!
//! A reproduction of *"Everywhere All at Once: Co-Location Attacks on Public
//! Cloud FaaS"* (Zhao, Morrison, Fletcher, Torrellas — ASPLOS 2024).
//!
//! This facade crate re-exports the workspace's public API. See the
//! individual crates for details:
//!
//! * [`simcore`] — virtual time, event queue, deterministic RNG, statistics.
//! * [`tsc`] — the x86 timestamp-counter model (invariant TSC, offsetting,
//!   frequency refinement, noisy syscall clocks, boot-time derivation).
//! * [`cloudsim`] — physical hosts, Gen 1 / Gen 2 sandboxes, covert-channel
//!   media, Cloud Run pricing.
//! * [`orchestrator`] — the Cloud-Run-like orchestrator (base/helper host
//!   placement, autoscaling, idle reaping) and the simulation
//!   [`World`](orchestrator::world::World).
//! * [`core`] — the paper's attack toolkit: host fingerprinting, scalable
//!   co-location verification, launch strategies, and the per-figure
//!   experiment drivers.
//! * [`campaign`] — the batch campaign engine: declarative experiment
//!   grids run on a work-stealing pool, streamed to resumable JSONL with
//!   seeds derived so results are identical at any parallelism.
//! * [`serve`] — the streaming campaign service: a daemon multiplexing
//!   concurrent client submissions over one shared executor, speaking a
//!   dependency-free length-prefixed wire protocol (see
//!   `docs/SERVICE.md`).
//! * [`obs`] — the structured observability layer: span tracing, a
//!   deterministic metrics registry, and JSONL trace files (see
//!   `docs/OBSERVABILITY.md`).
//!
//! # Quickstart
//!
//! ```
//! use eaao::prelude::*;
//!
//! // A small us-west1-like data center, deterministic under seed 7.
//! let mut world = World::new(RegionConfig::us_west1().with_hosts(40), 7);
//! let account = world.create_account();
//! let service = world.deploy_service(account, ServiceSpec::default());
//!
//! // Launch 20 instances and fingerprint their hosts.
//! let launch = world.launch(service, 20).expect("within quota");
//! let fingerprinter = Gen1Fingerprinter::default();
//! let readings = probe_fleet(&mut world, launch.instances(), SimDuration::from_millis(10));
//! let fingerprints: Vec<_> = readings
//!     .iter()
//!     .filter_map(|r| fingerprinter.fingerprint(r))
//!     .collect();
//! assert_eq!(fingerprints.len(), 20);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use eaao_campaign as campaign;
pub use eaao_cloudsim as cloudsim;
pub use eaao_core as core;
pub use eaao_obs as obs;
pub use eaao_orchestrator as orchestrator;
pub use eaao_serve as serve;
pub use eaao_simcore as simcore;
pub use eaao_tsc as tsc;

/// One-stop import for examples and downstream users.
pub mod prelude {
    pub use eaao_campaign::prelude::*;
    pub use eaao_cloudsim::prelude::*;
    pub use eaao_core::prelude::*;
    pub use eaao_obs::prelude::*;
    pub use eaao_orchestrator::prelude::*;
    pub use eaao_serve::prelude::*;
    pub use eaao_simcore::prelude::*;
    pub use eaao_tsc::prelude::*;
}
