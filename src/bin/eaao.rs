//! `eaao` — command-line front end to the simulator and attack toolkit.
//!
//! ```text
//! eaao attack     [--region R] [--seed N] [--strategy naive|optimized] [--victims N]
//! eaao fingerprint [--region R] [--seed N] [--instances N] [--gen2]
//! eaao verify      [--region R] [--seed N] [--instances N]
//! eaao explore     [--region R] [--seed N]
//! eaao monitor     [--region R] [--seed N] [--windows N]
//! eaao trace FILE
//! eaao tidy        [--root DIR] [--json PATH|-] [--write-baseline] [--list-checks]
//! ```
//!
//! Every command is deterministic under `--seed` and runs in milliseconds
//! of real time (the week-long experiments run on virtual time). For the
//! paper's figures and tables use the `repro` binary in `eaao-bench`.
//!
//! Any command accepts `--trace FILE` to stream structured span events and
//! a closing metrics snapshot to `FILE` as JSONL (see
//! `docs/OBSERVABILITY.md`); `eaao trace FILE` summarizes such a file.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use eaao::prelude::*;

struct Common {
    region: String,
    seed: u64,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_and_exit();
    }
    let command = args.remove(0);
    if command == "trace" {
        // `trace` takes a positional file, unlike every other command.
        let [path] = args.as_slice() else {
            die("trace needs exactly one trace-file argument");
        };
        summarize_trace(Path::new(path));
        return;
    }
    if command == "tidy" {
        // `tidy` owns its flags (--root/--json/--write-baseline/
        // --list-checks); forward them untouched instead of parsing them
        // as simulator flags.
        std::process::exit(eaao_tidy::cli::run(&args).into());
    }
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut bare_flags: Vec<String> = Vec::new();
    let mut it = args.into_iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    flags.insert(name.to_owned(), it.next().expect("peeked"));
                }
                _ => bare_flags.push(name.to_owned()),
            }
        } else {
            die(&format!("unexpected argument {arg:?}"));
        }
    }
    let common = Common {
        region: flags
            .get("region")
            .cloned()
            .unwrap_or_else(|| "us-east1".to_owned()),
        seed: flags
            .get("seed")
            .map(|s| s.parse().unwrap_or_else(|_| die("--seed needs an integer")))
            .unwrap_or(2_024),
    };
    let trace = flags.get("trace").map(PathBuf::from);
    match command.as_str() {
        "attack" => run_traced(trace, || attack(&common, &flags)),
        "fingerprint" => run_traced(trace, || fingerprint(&common, &flags, &bare_flags)),
        "verify" => run_traced(trace, || verify(&common, &flags)),
        "explore" => run_traced(trace, || explore(&common)),
        "monitor" => run_traced(trace, || monitor(&common, &flags)),
        "campaign" => campaign(&common, &flags, &bare_flags, trace),
        "serve" => serve(&flags),
        "submit" => submit(&common, &flags, &bare_flags),
        "shutdown" => shutdown(&flags),
        "help" | "--help" | "-h" => usage_and_exit(),
        other => die(&format!("unknown command {other:?}")),
    }
}

/// Runs `run` under a tracing collector when `--trace FILE` was given,
/// writing its span events plus a closing metrics snapshot to the file.
fn run_traced(trace: Option<PathBuf>, run: impl FnOnce()) {
    let Some(path) = trace else {
        return run();
    };
    let writer = TraceWriter::create(&path)
        .unwrap_or_else(|e| die(&format!("cannot create trace file {}: {e}", path.display())));
    let collector = Collector::with_events();
    with_instrument(collector.clone(), run);
    let mut events = collector.drain_events();
    events.extend(collector.metrics_event());
    writer
        .write_events(&events)
        .unwrap_or_else(|e| die(&format!("cannot write trace file {}: {e}", path.display())));
    eprintln!("trace: {} events -> {}", events.len(), path.display());
}

fn summarize_trace(path: &Path) {
    let summary = TraceSummary::read(path)
        .unwrap_or_else(|e| die(&format!("cannot summarize {}: {e}", path.display())));
    print!("{}", summary.render());
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: eaao <command> [flags]\n\
         commands:\n\
           attack       run a co-location attack against a fresh victim\n\
                        [--strategy naive|optimized] [--victims N]\n\
           fingerprint  launch instances and print their host fingerprints [--instances N] [--gen2]\n\
           verify       compare hierarchical vs pairwise verification [--instances N]\n\
           explore      estimate the region's serving-pool size\n\
           monitor      detect victim activity from a co-located instance [--windows N]\n\
           campaign     run a batch experiment grid in parallel, streaming JSONL\n\
                        --spec FILE | --experiments a,b,c [--regions r1,r2]\n\
                        [--platforms cloudrun,lambda-like,azure-like]\n\
                        [--verifiers rng-ctest,membus-lockcheck]\n\
                        [--seeds N] [--out DIR] [--jobs N] [--resume] [--quick]\n\
           serve        run the streaming campaign daemon (docs/SERVICE.md)\n\
                        [--addr A] [--metrics-addr A] [--jobs N] [--out DIR]\n\
                        [--max-pending N] [--dispatchers N]\n\
           submit       submit a campaign to a daemon, streaming records to stdout\n\
                        --addr A (--spec FILE | --experiments a,b,c)\n\
                        [--platforms p1,p2] [--verifiers v1,v2]\n\
                        [--out NAME] [--seeds N] [--quick] [--quiet]\n\
           shutdown     ask a daemon to drain and exit: eaao shutdown --addr A\n\
           trace        summarize a JSONL trace file: eaao trace FILE\n\
           tidy         run the workspace static-analysis pass\n\
                        [--root DIR] [--json PATH|-] [--write-baseline] [--list-checks]\n\
         common flags: --region us-east1|us-central1|us-west1   --seed N\n\
                       --trace FILE   write structured span/metrics events as JSONL"
    );
    std::process::exit(2);
}

fn die(msg: &str) -> ! {
    eprintln!("eaao: {msg}");
    std::process::exit(2);
}

fn parse_or<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags
        .get(key)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| die(&format!("--{key} got an invalid value {v:?}")))
        })
        .unwrap_or(default)
}

fn attack(common: &Common, flags: &HashMap<String, String>) {
    let victims = parse_or(flags, "victims", 100usize);
    let strategy = flags
        .get("strategy")
        .map(String::as_str)
        .unwrap_or("optimized");
    let mut arena = Scenario::in_region(&common.region)
        .seed(common.seed)
        .victims(victims)
        .build();
    println!(
        "victim: {} instances in {} (seed {})",
        victims, common.region, common.seed
    );
    let report = match strategy {
        "naive" => NaiveLaunch::default()
            .run(&mut arena.world, arena.attacker)
            .unwrap_or_else(|e| die(&format!("attack failed: {e}"))),
        "optimized" => OptimizedLaunch::default()
            .run(&mut arena.world, arena.attacker)
            .unwrap_or_else(|e| die(&format!("attack failed: {e}"))),
        other => die(&format!("unknown strategy {other:?}")),
    };
    let coverage = measure_coverage(&arena.world, &report.live_instances, &arena.victims);
    println!(
        "attacker ({strategy}): {} instances on {} hosts ({:.0}% of the region), cost {}",
        report.live_instances.len(),
        report.hosts_occupied,
        coverage.attacker_host_coverage() * 100.0,
        report.cost
    );
    println!(
        "victim instance coverage: {:.1}%  (co-located with >=1 victim instance: {})",
        coverage.victim_instance_coverage() * 100.0,
        if coverage.at_least_one() { "yes" } else { "no" }
    );
}

fn fingerprint(common: &Common, flags: &HashMap<String, String>, bare: &[String]) {
    let instances = parse_or(flags, "instances", 100usize);
    let gen2 = bare.iter().any(|f| f == "gen2");
    let mut world = World::new(region_by_name(&common.region), common.seed);
    let account = world.create_account();
    let generation = if gen2 {
        Generation::Gen2
    } else {
        Generation::Gen1
    };
    let service = world.deploy_service(
        account,
        ServiceSpec::default()
            .with_generation(generation)
            .with_max_instances(1_000),
    );
    let launch = world
        .launch(service, instances)
        .unwrap_or_else(|e| die(&format!("launch failed: {e}")));
    let readings = probe_fleet(&mut world, launch.instances(), SimDuration::from_millis(10));
    let mut counts: HashMap<String, usize> = HashMap::new();
    for reading in &readings {
        let label = if gen2 {
            Gen2Fingerprint::from_reading(reading)
                .map(|f| f.to_string())
                .unwrap_or_else(|| "-".to_owned())
        } else {
            Gen1Fingerprinter::default()
                .fingerprint(reading)
                .map(|f| f.to_string())
                .unwrap_or_else(|| "-".to_owned())
        };
        *counts.entry(label).or_default() += 1;
    }
    let mut rows: Vec<(String, usize)> = counts.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    println!(
        "{} instances -> {} distinct {} fingerprints:",
        instances,
        rows.len(),
        if gen2 { "Gen 2" } else { "Gen 1" }
    );
    for (fp, n) in rows {
        println!("  {n:>4}  {fp}");
    }
}

fn verify(common: &Common, flags: &HashMap<String, String>) {
    let instances = parse_or(flags, "instances", 100usize);
    let mut world = World::new(region_by_name(&common.region), common.seed);
    let account = world.create_account();
    let service = world.deploy_service(account, ServiceSpec::default().with_max_instances(1_000));
    let launch = world
        .launch(service, instances)
        .unwrap_or_else(|e| die(&format!("launch failed: {e}")));
    let ids = launch.instances().to_vec();
    let readings = probe_fleet(&mut world, &ids, SimDuration::from_millis(10));
    let fingerprinter = Gen1Fingerprinter::default();
    let (groups, _) = group_by_fingerprint(&readings, |r| fingerprinter.fingerprint(r));
    let groups: Vec<Vec<InstanceId>> = groups
        .into_iter()
        .map(|(_, m)| m.iter().map(|&i| readings[i].instance).collect())
        .collect();
    let outcome = HierarchicalVerifier::new()
        .verify(&mut world, &groups)
        .unwrap_or_else(|e| die(&format!("verification failed: {e}")));
    println!(
        "hierarchical: {} clusters, {} tests, {} wall, {} cost",
        outcome.clusters.len(),
        outcome.stats.ctests,
        outcome.stats.wall,
        outcome.stats.cost
    );
    println!(
        "pairwise would need {} tests (~{:.1} h at 100 ms each)",
        pair_count(instances),
        pair_count(instances) as f64 * 0.1 / 3_600.0
    );
}

fn explore(common: &Common) {
    let mut world = World::new(region_by_name(&common.region), common.seed);
    let report = ClusterExplorer::default()
        .run(&mut world)
        .unwrap_or_else(|e| die(&format!("exploration failed: {e}")));
    println!(
        "{}: {} unique apparent hosts after {} launches (true simulated pool: {})",
        common.region,
        report.estimated_hosts,
        report.cumulative.len(),
        report.true_hosts
    );
}

fn monitor(common: &Common, flags: &HashMap<String, String>) {
    let windows = parse_or(flags, "windows", 24usize);
    let mut arena = Scenario::in_region(&common.region)
        .seed(common.seed)
        .victims(50)
        .build();
    let report = OptimizedLaunch {
        services: 2,
        launches_per_service: 3,
        instances_per_launch: 400,
        ..OptimizedLaunch::default()
    }
    .run(&mut arena.world, arena.attacker)
    .unwrap_or_else(|e| die(&format!("attack failed: {e}")));
    let observer = report
        .live_instances
        .iter()
        .copied()
        .find(|&a| arena.victims.iter().any(|&v| arena.world.co_located(a, v)))
        .unwrap_or_else(|| die("no co-located instance this seed; try another"));
    // The victim serves a bursty workload: active every third window.
    let schedule: Vec<bool> = (0..windows).map(|w| w % 3 == 0).collect();
    let trace = monitor_victim_activity(
        &mut arena.world,
        observer,
        &arena.victims,
        &schedule,
        &MonitorConfig::default(),
    )
    .unwrap_or_else(|e| die(&format!("monitoring failed: {e}")));
    let render =
        |bits: &[bool]| -> String { bits.iter().map(|&b| if b { '#' } else { '.' }).collect() };
    println!("victim activity:  {}", render(&schedule));
    println!("attacker detects: {}", render(trace.windows()));
    println!(
        "detection accuracy: {:.1}%",
        trace.accuracy_against(&schedule) * 100.0
    );
}

fn campaign(
    common: &Common,
    flags: &HashMap<String, String>,
    bare: &[String],
    trace: Option<PathBuf>,
) {
    let mut spec = if let Some(path) = flags.get("spec") {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read spec {path:?}: {e}")));
        CampaignSpec::from_json(&text).unwrap_or_else(|e| die(&format!("bad spec {path:?}: {e}")))
    } else {
        let Some(experiments) = flags.get("experiments") else {
            die("campaign needs --spec FILE or --experiments a,b,c");
        };
        CampaignSpec {
            experiments: split_list(experiments),
            ..CampaignSpec::default()
        }
    };
    // Flags refine the spec (CLI wins over file).
    if let Some(regions) = flags.get("regions") {
        spec.regions = split_list(regions);
    } else if flags.contains_key("region") {
        spec.regions = vec![common.region.clone()];
    }
    if let Some(platforms) = flags.get("platforms") {
        spec.platforms = split_list(platforms);
    }
    if let Some(verifiers) = flags.get("verifiers") {
        spec.verifiers = split_list(verifiers);
    }
    spec.seeds = parse_or(flags, "seeds", spec.seeds);
    if flags.contains_key("seed") {
        spec.seed = common.seed;
    }
    if bare.iter().any(|f| f == "quick") {
        spec.quick = true;
    }
    spec.validate()
        .unwrap_or_else(|e| die(&format!("invalid campaign: {e}")));

    let out_dir = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| format!("campaign-{}", spec.name));
    let jobs = parse_or(flags, "jobs", 1usize);
    let resume = bare.iter().any(|f| f == "resume");
    let report = Campaign::new(spec, &out_dir)
        .jobs(jobs)
        .resume(resume)
        .trace(trace)
        .run_with_progress(|done, total, record| {
            let status = if record.is_ok() { "ok" } else { "FAILED" };
            println!("[{done:>4}/{total}] {status:>6}  {}", record.key);
        })
        .unwrap_or_else(|e| die(&format!("campaign failed: {e}")));
    println!(
        "{}: {} runs ({} resumed, {} executed, {} failed) -> {out_dir}/results.jsonl",
        report.name, report.total, report.resumed, report.executed, report.failed
    );
    if !report.all_ok() {
        std::process::exit(1);
    }
}

/// Default protocol address shared by `serve`, `submit`, and `shutdown`.
const DEFAULT_ADDR: &str = "127.0.0.1:4780";

fn serve(flags: &HashMap<String, String>) {
    let config = ServeConfig {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| DEFAULT_ADDR.to_owned()),
        metrics_addr: flags.get("metrics-addr").cloned(),
        jobs: parse_or(flags, "jobs", 2usize),
        out_root: PathBuf::from(
            flags
                .get("out")
                .cloned()
                .unwrap_or_else(|| "serve-out".to_owned()),
        ),
        max_pending: parse_or(flags, "max-pending", 8usize),
        dispatchers: parse_or(flags, "dispatchers", 2usize),
        ..ServeConfig::default()
    };
    let server = Server::start(config).unwrap_or_else(|e| die(&format!("cannot start: {e}")));
    println!("eaao-serve listening on {}", server.addr());
    if let Some(addr) = server.metrics_addr() {
        println!("metrics scrape endpoint on {addr}");
    }
    server
        .wait()
        .unwrap_or_else(|e| die(&format!("daemon failed: {e}")));
    println!("eaao-serve drained and stopped");
}

fn submit(common: &Common, flags: &HashMap<String, String>, bare: &[String]) {
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| DEFAULT_ADDR.to_owned());
    let mut spec = if let Some(path) = flags.get("spec") {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read spec {path:?}: {e}")));
        CampaignSpec::from_json(&text).unwrap_or_else(|e| die(&format!("bad spec {path:?}: {e}")))
    } else {
        let Some(experiments) = flags.get("experiments") else {
            die("submit needs --spec FILE or --experiments a,b,c");
        };
        CampaignSpec {
            experiments: split_list(experiments),
            ..CampaignSpec::default()
        }
    };
    if let Some(regions) = flags.get("regions") {
        spec.regions = split_list(regions);
    } else if flags.contains_key("region") {
        spec.regions = vec![common.region.clone()];
    }
    if let Some(platforms) = flags.get("platforms") {
        spec.platforms = split_list(platforms);
    }
    if let Some(verifiers) = flags.get("verifiers") {
        spec.verifiers = split_list(verifiers);
    }
    spec.seeds = parse_or(flags, "seeds", spec.seeds);
    if flags.contains_key("seed") {
        spec.seed = common.seed;
    }
    if bare.iter().any(|f| f == "quick") {
        spec.quick = true;
    }
    let spec_json =
        serde_json::to_string(&spec).unwrap_or_else(|e| die(&format!("spec serialization: {e}")));
    let quiet = bare.iter().any(|f| f == "quiet");
    let client =
        Client::connect(&addr).unwrap_or_else(|e| die(&format!("cannot reach {addr}: {e}")));
    let outcome = client
        .submit(&spec_json, flags.get("out").map(String::as_str), |record| {
            // One record per line, exactly as the daemon streamed it —
            // the same bytes the batch path writes to results.jsonl.
            println!("{}", record.json);
            if !quiet {
                eprintln!("[{}/{}] {}", record.done, record.total, record.campaign);
            }
        })
        .unwrap_or_else(|e| die(&format!("submission failed: {e}")));
    eprintln!(
        "{}: {} runs ({} executed, {} failed){}",
        outcome.campaign,
        outcome.total,
        outcome.executed,
        outcome.failed,
        if outcome.complete {
            ""
        } else {
            " [incomplete]"
        }
    );
    if outcome.failed > 0 || !outcome.complete {
        std::process::exit(1);
    }
}

fn shutdown(flags: &HashMap<String, String>) {
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| DEFAULT_ADDR.to_owned());
    Client::connect(&addr)
        .unwrap_or_else(|e| die(&format!("cannot reach {addr}: {e}")))
        .shutdown()
        .unwrap_or_else(|e| die(&format!("shutdown failed: {e}")));
    println!("daemon at {addr} is draining");
}

fn split_list(csv: &str) -> Vec<String> {
    csv.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect()
}

/// Resolves a region name (CLI-side wrapper around the core lookup).
fn region_by_name(name: &str) -> RegionConfig {
    match name {
        "us-east1" => RegionConfig::us_east1(),
        "us-central1" => RegionConfig::us_central1(),
        "us-west1" => RegionConfig::us_west1(),
        other => die(&format!("unknown region {other:?}")),
    }
}
