//! Boot-time derivation from TSC readings (Eq. 4.1) and the drift law
//! (Eq. 4.2).
//!
//! The Gen 1 fingerprint derives a host's boot time as
//!
//! ```text
//! T_boot = T_w − tsc / f          (Eq. 4.1)
//! ```
//!
//! where `tsc` is a raw counter read, `T_w` the paired wall-clock time, and
//! `f` the frequency used for conversion. When `f` is the *reported*
//! frequency `f_r = f* + ε`, the derived boot time drifts linearly in the
//! measurement time:
//!
//! ```text
//! ΔT_boot = ΔT_w · ε / f_r        (Eq. 4.2)
//! ```
//!
//! so fingerprints eventually cross a rounding boundary and "expire".

use eaao_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::freq::TscFrequency;

/// A paired measurement: a raw TSC read and the wall-clock time at which it
/// was taken (as observed through the sandboxed syscall clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TscSample {
    /// The raw counter value (`rdtsc`).
    pub tsc: u64,
    /// The paired wall-clock reading `T_w`.
    pub wall: SimTime,
}

impl TscSample {
    /// Creates a sample.
    pub fn new(tsc: u64, wall: SimTime) -> Self {
        TscSample { tsc, wall }
    }

    /// Derives the host boot time using frequency `f` (Eq. 4.1).
    ///
    /// # Examples
    ///
    /// ```
    /// use eaao_simcore::time::SimTime;
    /// use eaao_tsc::boot::TscSample;
    /// use eaao_tsc::freq::TscFrequency;
    ///
    /// // 20 G ticks at 2 GHz = 10 s of uptime; measured at t = 110 s.
    /// let sample = TscSample::new(20_000_000_000, SimTime::from_secs(110));
    /// let boot = sample.derive_boot_time(TscFrequency::from_ghz(2.0));
    /// assert_eq!(boot, SimTime::from_secs(100));
    /// ```
    pub fn derive_boot_time(self, f: TscFrequency) -> SimTime {
        let uptime_s = self.tsc as f64 / f.as_hz();
        self.wall - SimDuration::from_secs_f64(uptime_s)
    }

    /// Derives the boot time and rounds it to `precision` (the paper's
    /// `p_boot`).
    ///
    /// # Panics
    ///
    /// Panics if `precision` is not positive.
    pub fn derive_rounded_boot_time(self, f: TscFrequency, precision: SimDuration) -> SimTime {
        self.derive_boot_time(f).round_to(precision)
    }
}

/// The drift rate of the derived boot time, in seconds of drift per second
/// of elapsed wall time: `ε / f_r` with the paper's convention
/// `f_r = f* + ε`, i.e. `ε = f_r − f*` (Eq. 4.2).
///
/// Positive when the reported frequency overestimates the actual one (the
/// derived boot time then moves later over time).
pub fn drift_rate(actual: TscFrequency, reported: TscFrequency) -> f64 {
    reported.error_versus(actual) / reported.as_hz()
}

/// Predicted change in the derived boot time after `elapsed` wall time
/// (Eq. 4.2).
pub fn predicted_drift(
    actual: TscFrequency,
    reported: TscFrequency,
    elapsed: SimDuration,
) -> SimDuration {
    SimDuration::from_secs_f64(drift_rate(actual, reported) * elapsed.as_secs_f64())
}

/// Time until a boot-time fingerprint derived at `derived` crosses the next
/// rounding boundary, given a drift `rate` (s/s) and rounding `precision`.
///
/// Returns `None` when the rate is (numerically) zero — the fingerprint
/// never expires.
///
/// # Panics
///
/// Panics if `precision` is not positive.
pub fn time_to_expiration(
    derived: SimTime,
    rate: f64,
    precision: SimDuration,
) -> Option<SimDuration> {
    assert!(precision.as_nanos() > 0, "precision must be positive");
    if rate == 0.0 || !rate.is_finite() {
        return None;
    }
    let p = precision.as_nanos() as f64;
    let rounded = derived.round_to(precision);
    // Signed distance (ns) from the derived value to the boundary it will
    // cross while drifting in the direction of `rate`.
    let offset_ns = (derived.as_nanos() - rounded.as_nanos()) as f64;
    let distance_ns = if rate > 0.0 {
        p / 2.0 - offset_ns
    } else {
        p / 2.0 + offset_ns
    };
    let seconds = (distance_ns / 1e9) / rate.abs();
    Some(SimDuration::from_secs_f64(seconds.max(0.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq41_exact_with_true_frequency() {
        let f = TscFrequency::from_ghz(2.2);
        let boot = SimTime::from_secs(1_000);
        let now = SimTime::from_secs(5_000);
        let tsc = f.ticks_over(4_000.0).round() as u64;
        let sample = TscSample::new(tsc, now);
        let derived = sample.derive_boot_time(f);
        assert!((derived - boot).abs().as_secs_f64() < 1e-6);
    }

    #[test]
    fn rounded_derivation_collapses_noise() {
        let f = TscFrequency::from_ghz(2.0);
        let p = SimDuration::from_secs(1);
        let a = TscSample::new(20_000_000_000, SimTime::from_secs_f64(110.2));
        let b = TscSample::new(20_000_000_000, SimTime::from_secs_f64(110.4));
        assert_eq!(
            a.derive_rounded_boot_time(f, p),
            b.derive_rounded_boot_time(f, p)
        );
    }

    #[test]
    fn drift_matches_eq42() {
        // Actual 5 kHz above reported → ε = f_r − f* = −5 kHz at 2 GHz,
        // rate −2.5e-6 s/s: the derived boot time moves earlier over time.
        let reported = TscFrequency::from_ghz(2.0);
        let actual = reported.offset_by_hz(5_000.0);
        let rate = drift_rate(actual, reported);
        assert!((rate + 2.5e-6).abs() < 1e-12);
        let drift = predicted_drift(actual, reported, SimDuration::from_days(1));
        assert!((drift.as_secs_f64() + 0.216).abs() < 1e-3);
    }

    #[test]
    fn empirical_drift_equals_predicted() {
        // Derive boot times at two instants and compare with Eq. 4.2.
        let reported = TscFrequency::from_ghz(2.0);
        let actual = reported.offset_by_hz(-8_000.0);
        let boot = SimTime::ZERO;
        let measure = |at: SimTime| {
            let tsc = actual
                .ticks_over(at.duration_since(boot).as_secs_f64())
                .round() as u64;
            TscSample::new(tsc, at).derive_boot_time(reported)
        };
        let t1 = SimTime::from_hours(1);
        let t2 = SimTime::from_secs(86_400); // +23 h
        let observed = measure(t2) - measure(t1);
        let predicted = predicted_drift(actual, reported, t2 - t1);
        assert!(
            (observed.as_secs_f64() - predicted.as_secs_f64()).abs() < 1e-3,
            "observed {observed}, predicted {predicted}"
        );
    }

    #[test]
    fn expiration_scales_inversely_with_rate() {
        let derived = SimTime::from_secs(100); // exactly on a bucket center
        let p = SimDuration::from_secs(1);
        let slow = time_to_expiration(derived, 1e-6, p).unwrap();
        let fast = time_to_expiration(derived, 2e-6, p).unwrap();
        assert!((slow.as_secs_f64() / fast.as_secs_f64() - 2.0).abs() < 1e-9);
        // Centered value with rate 1e-6 takes 0.5 s / 1e-6 = 5.79 days.
        assert!((slow.as_days_f64() - 5.787).abs() < 0.01);
    }

    #[test]
    fn expiration_accounts_for_phase() {
        let p = SimDuration::from_secs(1);
        // 0.4 s past the bucket center, drifting up: only 0.1 s to go.
        let derived = SimTime::from_secs_f64(100.4);
        let t = time_to_expiration(derived, 1e-6, p).unwrap();
        assert!((t.as_secs_f64() - 0.1e6).abs() < 1.0);
        // Same phase, drifting down: 0.9 s to go.
        let t = time_to_expiration(derived, -1e-6, p).unwrap();
        assert!((t.as_secs_f64() - 0.9e6).abs() < 1.0);
    }

    #[test]
    fn zero_rate_never_expires() {
        assert!(time_to_expiration(SimTime::ZERO, 0.0, SimDuration::from_secs(1)).is_none());
        assert!(time_to_expiration(SimTime::ZERO, f64::NAN, SimDuration::from_secs(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "precision must be positive")]
    fn expiration_rejects_bad_precision() {
        time_to_expiration(SimTime::ZERO, 1e-6, SimDuration::ZERO);
    }
}
