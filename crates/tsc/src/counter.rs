//! The invariant timestamp counter.
//!
//! An invariant TSC resets to zero at host boot and increments at a fixed
//! rate — the host's *actual* TSC frequency — irrespective of frequency
//! scaling and power states (Section 2.4 of the paper). Reading it with
//! `rdtsc`/`rdtscp` is unprivileged, which is exactly what the Gen 1
//! fingerprint exploits.

use eaao_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

use crate::freq::TscFrequency;

/// An invariant TSC: zero at host boot, ticking at the host's actual
/// frequency forever after.
///
/// # Examples
///
/// ```
/// use eaao_simcore::time::SimTime;
/// use eaao_tsc::counter::InvariantTsc;
/// use eaao_tsc::freq::TscFrequency;
///
/// let boot = SimTime::from_secs(100);
/// let tsc = InvariantTsc::new(boot, TscFrequency::from_ghz(2.0));
/// // 10 seconds of uptime = 20 billion ticks at 2 GHz.
/// assert_eq!(tsc.read(SimTime::from_secs(110)), 20_000_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvariantTsc {
    boot: SimTime,
    actual: TscFrequency,
}

impl InvariantTsc {
    /// Creates a counter for a host that booted at `boot` with actual
    /// frequency `actual`.
    pub fn new(boot: SimTime, actual: TscFrequency) -> Self {
        InvariantTsc { boot, actual }
    }

    /// The host boot instant (when the counter was zero).
    pub fn boot_time(self) -> SimTime {
        self.boot
    }

    /// The actual tick rate.
    pub fn actual_frequency(self) -> TscFrequency {
        self.actual
    }

    /// Reads the counter at virtual time `now` (the `rdtsc` instruction).
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the boot instant — the host did not exist
    /// yet.
    pub fn read(self, now: SimTime) -> u64 {
        let uptime = now.duration_since(self.boot);
        assert!(
            !uptime.is_negative(),
            "TSC read before host boot ({} < {})",
            now,
            self.boot
        );
        self.actual.ticks_over(uptime.as_secs_f64()).round() as u64
    }

    /// Re-arms the counter after a host reboot at `new_boot`.
    ///
    /// The actual frequency is a property of the crystal and survives
    /// reboots; only the zero point moves.
    pub fn rebooted_at(self, new_boot: SimTime) -> InvariantTsc {
        InvariantTsc {
            boot: new_boot,
            actual: self.actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eaao_simcore::time::SimDuration;

    #[test]
    fn zero_at_boot() {
        let boot = SimTime::from_secs(50);
        let tsc = InvariantTsc::new(boot, TscFrequency::from_ghz(2.0));
        assert_eq!(tsc.read(boot), 0);
        assert_eq!(tsc.boot_time(), boot);
    }

    #[test]
    fn ticks_at_actual_rate_not_reported() {
        let reported = TscFrequency::from_ghz(2.0);
        let actual = reported.offset_by_hz(1_000_000.0); // +1 MHz
        let tsc = InvariantTsc::new(SimTime::ZERO, actual);
        let t = SimTime::from_secs(100);
        assert_eq!(tsc.read(t), 200_100_000_000);
    }

    #[test]
    fn monotone_over_time() {
        let tsc = InvariantTsc::new(SimTime::ZERO, TscFrequency::from_ghz(2.2));
        let mut prev = 0;
        for s in 1..100 {
            let v = tsc.read(SimTime::from_secs(s));
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "TSC read before host boot")]
    fn read_before_boot_panics() {
        let tsc = InvariantTsc::new(SimTime::from_secs(10), TscFrequency::from_ghz(2.0));
        tsc.read(SimTime::from_secs(9));
    }

    #[test]
    fn reboot_resets_zero_point_keeps_rate() {
        let f = TscFrequency::from_ghz(2.0).offset_by_hz(500.0);
        let tsc = InvariantTsc::new(SimTime::ZERO, f);
        let rebooted = tsc.rebooted_at(SimTime::from_secs(1_000));
        assert_eq!(rebooted.read(SimTime::from_secs(1_000)), 0);
        assert_eq!(rebooted.actual_frequency(), f);
        assert_eq!(
            rebooted.read(SimTime::from_secs(1_000) + SimDuration::from_secs(1)),
            2_000_000_500
        );
    }
}
