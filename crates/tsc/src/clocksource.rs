//! The sandboxed syscall clock and its noise model.
//!
//! Inside a Gen 1 container the attacker can pair a `rdtsc` read with a
//! real-world timestamp only through a system call (Section 4.2); privileged
//! hardware clocks are unreachable. The pairing is therefore perturbed by
//! interrupts, context switches, and gVisor's time virtualization.
//!
//! The model distinguishes two host populations, matching the measurement
//! split the paper reports:
//!
//! * **normal hosts** — nanosecond-scale pairing jitter with rare
//!   microsecond-scale interrupt spikes. Ten repetitions of the
//!   frequency-measurement procedure land below ~100 Hz of standard
//!   deviation (Section 4.2, method 2).
//! * **problematic hosts** (~10% of the fleet) — heavy-tailed
//!   microsecond-scale jitter. The measured frequency scatters by
//!   10 kHz–MHz, which is why the paper abandons the measured-frequency
//!   method in favour of the reported frequency.
//!
//! On top of the per-measurement jitter, every *sandbox* carries a constant
//! **per-instance clock offset** (tens of microseconds to milliseconds):
//! the sandboxed runtime initializes and disciplines its virtualized clock
//! independently per container. A constant offset cancels out of the
//! Δtsc/ΔT_w frequency measurement, but it shifts the derived boot time of
//! Eq. 4.1 — so two co-located instances disagree at sub-10-ms rounding
//! precisions, producing exactly the recall fall-off the paper's Figure 4
//! shows on the left of its sweet spot.

use eaao_simcore::dist::{LogNormal, Normal, Sample};
use eaao_simcore::rng::SimRng;
use eaao_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Noise profile of one host's syscall clock.
///
/// # Examples
///
/// ```
/// use eaao_simcore::rng::SimRng;
/// use eaao_tsc::clocksource::ClockNoiseProfile;
///
/// let mut rng = SimRng::seed_from(1);
/// let normal = ClockNoiseProfile::normal_host();
/// let jitter = normal.sample_jitter(&mut rng);
/// assert!(jitter.abs().as_secs_f64() < 1e-3);
/// assert!(!normal.is_problematic());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockNoiseProfile {
    /// Baseline pairing jitter (signed), always present.
    base: Normal,
    /// Probability that a measurement is hit by an interrupt/context switch.
    spike_probability: f64,
    /// Magnitude of a spike (always delays the timestamp).
    spike: LogNormal,
    /// Magnitude distribution of the constant per-instance clock offset
    /// (sign drawn separately).
    instance_offset: LogNormal,
    /// Whether this host belongs to the problematic population.
    problematic: bool,
}

impl ClockNoiseProfile {
    /// Fraction of hosts that are "problematic" in the paper's measurements
    /// (58 of 586 evaluated hosts, Section 4.2).
    pub const PROBLEMATIC_FRACTION: f64 = 0.10;

    /// Profile of a well-behaved host.
    ///
    /// Baseline jitter σ = 3 ns keeps the 10-repetition measured-frequency
    /// standard deviation around ~100 Hz at ΔT_w = 100 ms, as the paper
    /// observes on most hosts; interrupt spikes are rare.
    pub fn normal_host() -> Self {
        ClockNoiseProfile {
            base: Normal::new(0.0, 3e-9),
            spike_probability: 0.001,
            spike: LogNormal::from_median(5e-6, 1.0),
            instance_offset: Self::default_instance_offset(),
            problematic: false,
        }
    }

    /// The per-instance clock-offset magnitude distribution: median ~10 µs
    /// with a heavy tail into milliseconds, calibrated against the recall
    /// fall-off in Figure 4 below 10 ms of rounding precision.
    fn default_instance_offset() -> LogNormal {
        LogNormal::from_median(10e-6, 2.0)
    }

    /// Profile of a problematic host with pairing jitter at scale
    /// `sigma_seconds` (microseconds to ~100 µs).
    ///
    /// # Panics
    ///
    /// Panics if `sigma_seconds` is not strictly positive.
    pub fn problematic_host(sigma_seconds: f64) -> Self {
        assert!(sigma_seconds > 0.0, "sigma must be positive");
        ClockNoiseProfile {
            base: Normal::new(0.0, sigma_seconds),
            spike_probability: 0.10,
            spike: LogNormal::from_median(sigma_seconds * 5.0, 1.0),
            instance_offset: Self::default_instance_offset(),
            problematic: true,
        }
    }

    /// Draws a host profile: problematic with probability
    /// [`PROBLEMATIC_FRACTION`], with a per-host jitter scale spanning the
    /// 10 kHz–MHz measured-frequency-stddev range the paper reports.
    ///
    /// [`PROBLEMATIC_FRACTION`]: Self::PROBLEMATIC_FRACTION
    pub fn sample_host(rng: &mut SimRng) -> Self {
        if rng.chance(Self::PROBLEMATIC_FRACTION) {
            // σ(f̂) ≈ f·σ(jitter)·√2/ΔT_w; 0.35 µs–70 µs maps to roughly
            // 10 kHz–2 MHz at 2 GHz and ΔT_w = 100 ms.
            let sigma = LogNormal::from_median(5e-6, 1.2)
                .sample(rng)
                .clamp(0.35e-6, 70e-6);
            ClockNoiseProfile::problematic_host(sigma)
        } else {
            ClockNoiseProfile::normal_host()
        }
    }

    /// Whether the host belongs to the problematic population.
    pub fn is_problematic(&self) -> bool {
        self.problematic
    }

    /// Draws the signed pairing error of one (tsc, wall-time) measurement.
    pub fn sample_jitter(&self, rng: &mut SimRng) -> SimDuration {
        let mut seconds = self.base.sample(rng);
        if rng.chance(self.spike_probability) {
            seconds += self.spike.sample(rng);
        }
        SimDuration::from_secs_f64(seconds)
    }

    /// Draws a constant per-instance clock offset (sampled once when a
    /// sandbox's clock is set up).
    pub fn sample_instance_offset(&self, rng: &mut SimRng) -> SimDuration {
        let magnitude = self.instance_offset.sample(rng);
        let seconds = if rng.chance(0.5) {
            magnitude
        } else {
            -magnitude
        };
        SimDuration::from_secs_f64(seconds)
    }
}

/// A syscall-backed wall clock as observed from inside a sandbox.
///
/// Each [`read`](SyscallClock::read) returns the true simulation time
/// perturbed by the host's noise profile — the `T_w` that enters Eq. 4.1.
#[derive(Debug, Clone)]
pub struct SyscallClock {
    profile: ClockNoiseProfile,
    /// The sandbox's constant clock offset, fixed at construction.
    offset: SimDuration,
    rng: SimRng,
}

impl SyscallClock {
    /// Creates a clock with the given noise profile and RNG stream, drawing
    /// the sandbox's constant clock offset.
    pub fn new(profile: ClockNoiseProfile, mut rng: SimRng) -> Self {
        let offset = profile.sample_instance_offset(&mut rng);
        SyscallClock {
            profile,
            offset,
            rng,
        }
    }

    /// The noise profile in effect.
    pub fn profile(&self) -> &ClockNoiseProfile {
        &self.profile
    }

    /// The sandbox's constant clock offset.
    pub fn instance_offset(&self) -> SimDuration {
        self.offset
    }

    /// Reads the wall clock at true time `now`.
    pub fn read(&mut self, now: SimTime) -> SimTime {
        now + self.offset + self.profile.sample_jitter(&mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eaao_simcore::stats::Summary;

    fn jitter_sample(profile: ClockNoiseProfile, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::seed_from(seed);
        (0..n)
            .map(|_| profile.sample_jitter(&mut rng).as_secs_f64())
            .collect()
    }

    #[test]
    fn normal_host_jitter_is_tiny() {
        let xs = jitter_sample(ClockNoiseProfile::normal_host(), 10_000, 1);
        let s = Summary::of(&xs);
        // Mean dominated by rare spikes but still well below a microsecond.
        assert!(s.mean().abs() < 2e-6, "mean {}", s.mean());
        // The bulk is at the 20 ns scale.
        let small = xs.iter().filter(|x| x.abs() < 100e-9).count();
        assert!(small > 9_000, "only {small} small jitters");
    }

    #[test]
    fn problematic_host_jitter_is_large() {
        let xs = jitter_sample(ClockNoiseProfile::problematic_host(20e-6), 10_000, 2);
        let s = Summary::of(&xs);
        assert!(s.std_dev() > 5e-6, "std {}", s.std_dev());
    }

    #[test]
    fn sample_host_population_split() {
        let mut rng = SimRng::seed_from(3);
        let problematic = (0..10_000)
            .filter(|_| ClockNoiseProfile::sample_host(&mut rng).is_problematic())
            .count();
        let fraction = problematic as f64 / 10_000.0;
        assert!((fraction - 0.10).abs() < 0.02, "fraction {fraction}");
    }

    #[test]
    fn syscall_clock_wraps_truth() {
        let mut clock = SyscallClock::new(ClockNoiseProfile::normal_host(), SimRng::seed_from(4));
        let now = SimTime::from_secs(1_000);
        let reading = clock.read(now);
        assert!((reading - now).abs().as_secs_f64() < 0.1);
        assert!(!clock.profile().is_problematic());
    }

    #[test]
    fn instance_offset_is_constant_per_clock() {
        let mut clock = SyscallClock::new(ClockNoiseProfile::normal_host(), SimRng::seed_from(5));
        let offset = clock.instance_offset();
        assert_ne!(offset.as_nanos(), 0, "offsets are continuous, never zero");
        // Every read is centered on the same offset (jitter is tiny).
        for s in 0..50 {
            let now = SimTime::from_secs(s);
            let err = (clock.read(now) - now - offset).abs();
            assert!(err.as_secs_f64() < 1e-3, "read deviated by {err}");
        }
    }

    #[test]
    fn instance_offsets_differ_between_sandboxes() {
        let profile = ClockNoiseProfile::normal_host();
        let a = SyscallClock::new(profile, SimRng::seed_from(6));
        let b = SyscallClock::new(profile, SimRng::seed_from(7));
        assert_ne!(a.instance_offset(), b.instance_offset());
    }

    #[test]
    fn offset_population_spans_micro_to_milliseconds() {
        let mut rng = SimRng::seed_from(8);
        let profile = ClockNoiseProfile::normal_host();
        let offsets: Vec<f64> = (0..5_000)
            .map(|_| profile.sample_instance_offset(&mut rng).abs().as_secs_f64())
            .collect();
        let below_50us = offsets.iter().filter(|&&o| o < 50e-6).count() as f64 / 5_000.0;
        let above_1ms = offsets.iter().filter(|&&o| o > 1e-3).count() as f64 / 5_000.0;
        assert!((0.5..0.9).contains(&below_50us), "P(<50µs) = {below_50us}");
        assert!((0.004..0.1).contains(&above_1ms), "P(>1ms) = {above_1ms}");
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn problematic_rejects_zero_sigma() {
        ClockNoiseProfile::problematic_host(0.0);
    }
}
