//! x86 timestamp-counter model for the EAAO reproduction.
//!
//! This crate models every piece of x86 timekeeping the paper's host
//! fingerprints depend on (Sections 2.4, 4.2 and 4.5):
//!
//! * [`freq`] — TSC frequencies; the *reported* frequency parsed from CPU
//!   model names vs the *actual* per-host frequency `f* = f_r + ε`.
//! * [`counter`] — the invariant TSC: zero at host boot, fixed tick rate.
//! * [`offset`] — hardware TSC offsetting as configured by hypervisors for
//!   guest VMs (the Gen 2 environment).
//! * [`refine`] — the kernel's boot-time frequency refinement to 1 kHz,
//!   which KVM exports to guests (`tsc_khz`) — the Gen 2 fingerprint.
//! * [`clocksource`] — the sandboxed syscall clock with per-host noise
//!   profiles, including the ~10% "problematic" host population.
//! * [`boot`] — boot-time derivation (Eq. 4.1), rounding to `p_boot`, and
//!   the linear drift law (Eq. 4.2) with expiration prediction.
//! * [`measure`] — the attacker's frequency-measurement procedure and the
//!   statistics that disqualify it on problematic hosts.
//!
//! # Examples
//!
//! Derive a host's boot time from a raw TSC read, the way the Gen 1
//! fingerprint does:
//!
//! ```
//! use eaao_simcore::time::{SimDuration, SimTime};
//! use eaao_tsc::prelude::*;
//!
//! let reported = parse_base_frequency("Intel Xeon CPU @ 2.00GHz").unwrap();
//! let actual = reported.offset_by_hz(4_000.0); // ε = +4 kHz, unknown to us
//! let tsc = InvariantTsc::new(SimTime::from_secs(500), actual);
//!
//! let now = SimTime::from_hours(2);
//! let sample = TscSample::new(tsc.read(now), now);
//! let boot = sample.derive_rounded_boot_time(reported, SimDuration::from_secs(1));
//! assert_eq!(boot, SimTime::from_secs(500)); // correct at this time scale
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod boot;
pub mod clocksource;
pub mod counter;
pub mod freq;
pub mod measure;
pub mod offset;
pub mod refine;

pub use boot::TscSample;
pub use counter::InvariantTsc;
pub use freq::TscFrequency;
pub use refine::RefinedTscFrequency;

/// Convenient glob import of the TSC model types.
pub mod prelude {
    pub use crate::boot::{drift_rate, predicted_drift, time_to_expiration, TscSample};
    pub use crate::clocksource::{ClockNoiseProfile, SyscallClock};
    pub use crate::counter::InvariantTsc;
    pub use crate::freq::{parse_base_frequency, TscFrequency};
    pub use crate::measure::{measure_frequency, FrequencyMeasurement, TimeSampler};
    pub use crate::offset::OffsetTsc;
    pub use crate::refine::RefinedTscFrequency;
}
