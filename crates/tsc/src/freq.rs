//! TSC frequency representation and the reported-frequency heuristic.
//!
//! The paper's Gen 1 fingerprint needs a value of the TSC frequency `f` for
//! Eq. 4.1. Cloud Run's `cpuid` does not report it, so the attacker falls
//! back to the *labeled base frequency* embedded in the CPU model name
//! (e.g. `"Intel Xeon CPU @ 2.00GHz"`), which empirically equals the
//! frequency the TSC is *supposed* to run at (Section 4.2, method 1). The
//! actual frequency deviates from this reported value by a constant per-host
//! error `ε` of up to a few MHz, which is what makes derived boot times
//! drift (Eq. 4.2).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A TSC frequency in Hz.
///
/// # Examples
///
/// ```
/// use eaao_tsc::freq::TscFrequency;
///
/// let reported = TscFrequency::from_ghz(2.0);
/// let actual = reported.offset_by_hz(4_000.0); // ε = +4 kHz
/// assert_eq!(actual.as_hz(), 2_000_000_000.0 + 4_000.0);
/// assert!((actual.error_versus(reported) - 4_000.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct TscFrequency(f64);

impl TscFrequency {
    /// Creates a frequency from Hz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive and finite.
    pub fn from_hz(hz: f64) -> Self {
        assert!(hz.is_finite() && hz > 0.0, "frequency must be positive");
        TscFrequency(hz)
    }

    /// Creates a frequency from GHz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not strictly positive and finite.
    pub fn from_ghz(ghz: f64) -> Self {
        TscFrequency::from_hz(ghz * 1e9)
    }

    /// The frequency in Hz.
    pub fn as_hz(self) -> f64 {
        self.0
    }

    /// The frequency in kHz.
    pub fn as_khz(self) -> f64 {
        self.0 / 1e3
    }

    /// The frequency in GHz.
    pub fn as_ghz(self) -> f64 {
        self.0 / 1e9
    }

    /// Returns this frequency shifted by `delta_hz` (the per-host error ε).
    ///
    /// # Panics
    ///
    /// Panics if the result would be non-positive.
    pub fn offset_by_hz(self, delta_hz: f64) -> TscFrequency {
        TscFrequency::from_hz(self.0 + delta_hz)
    }

    /// The signed error of `self` relative to `reported` (ε in Eq. 4.2,
    /// in Hz), i.e. `self − reported`.
    pub fn error_versus(self, reported: TscFrequency) -> f64 {
        self.0 - reported.0
    }

    /// Number of TSC ticks elapsed over `seconds` at this frequency.
    pub fn ticks_over(self, seconds: f64) -> f64 {
        self.0 * seconds
    }
}

impl fmt::Display for TscFrequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}GHz", self.as_ghz())
    }
}

/// Extracts the labeled base frequency from a CPU model-name string.
///
/// Recognizes the `"… @ <x.y>GHz"` convention used by Intel model names
/// (e.g. `"Intel(R) Xeon(R) CPU @ 2.20GHz"`). Returns `None` when the model
/// name carries no frequency label — in that case the attacker cannot use
/// the reported-frequency method on this host.
///
/// # Examples
///
/// ```
/// use eaao_tsc::freq::parse_base_frequency;
///
/// let f = parse_base_frequency("Intel(R) Xeon(R) CPU @ 2.20GHz").unwrap();
/// assert_eq!(f.as_ghz(), 2.2);
/// assert!(parse_base_frequency("AMD EPYC 7B12").is_none());
/// ```
// tidy:allow(panic-reachability) -- every slice position comes from `rfind`/`find` on the same string (`@` and the match starts are char boundaries), so the ranges are always valid; unparsable inputs return `None`, never panic.
pub fn parse_base_frequency(model_name: &str) -> Option<TscFrequency> {
    let at = model_name.rfind('@')?;
    let tail = model_name[at + 1..].trim();
    let ghz_pos = tail.find("GHz")?;
    let number = tail[..ghz_pos].trim();
    let ghz: f64 = number.parse().ok()?;
    if ghz > 0.0 && ghz.is_finite() {
        Some(TscFrequency::from_ghz(ghz))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let f = TscFrequency::from_ghz(2.5);
        assert_eq!(f.as_hz(), 2.5e9);
        assert_eq!(f.as_khz(), 2.5e6);
        assert_eq!(f.as_ghz(), 2.5);
        assert_eq!(f.to_string(), "2.500000GHz");
    }

    #[test]
    fn offset_and_error() {
        let reported = TscFrequency::from_ghz(2.0);
        let actual = reported.offset_by_hz(-12_345.0);
        assert!((actual.error_versus(reported) + 12_345.0).abs() < 1e-6);
        assert!(actual < reported);
    }

    #[test]
    fn ticks_over_scales_linearly() {
        let f = TscFrequency::from_ghz(2.0);
        assert_eq!(f.ticks_over(0.5), 1e9);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn rejects_zero() {
        TscFrequency::from_hz(0.0);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn offset_cannot_go_negative() {
        TscFrequency::from_hz(1.0).offset_by_hz(-2.0);
    }

    #[test]
    fn parses_intel_style_names() {
        let cases = [
            ("Intel(R) Xeon(R) CPU @ 2.00GHz", 2.0),
            ("Intel Xeon CPU @ 2.20GHz", 2.2),
            ("Intel(R) Xeon(R) Platinum 8273CL CPU @ 2.80GHz", 2.8),
        ];
        for (name, ghz) in cases {
            let f = parse_base_frequency(name).unwrap_or_else(|| panic!("parse {name}"));
            assert!((f.as_ghz() - ghz).abs() < 1e-12, "{name}");
        }
    }

    #[test]
    fn rejects_unlabeled_names() {
        assert!(parse_base_frequency("AMD EPYC 7B12").is_none());
        assert!(parse_base_frequency("Intel Xeon CPU @ GHz").is_none());
        assert!(parse_base_frequency("Intel Xeon CPU @ -2.0GHz").is_none());
        assert!(parse_base_frequency("").is_none());
    }
}
