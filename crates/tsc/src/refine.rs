//! Kernel-style TSC frequency refinement.
//!
//! At boot, Linux refines the TSC frequency against other hardware clocks
//! and keeps the refined value — at 1 kHz precision — for timekeeping
//! (Section 2.4). In the Gen 2 environment, KVM exports this refined *host*
//! frequency to the guest (`tsc_khz`), where the paper reads it as the
//! Gen 2 fingerprint (Section 4.5).
//!
//! Two properties matter and are both modeled here:
//!
//! * refinement happens **once per host boot**, so co-located instances
//!   always observe the same value — the Gen 2 fingerprint has no false
//!   negatives;
//! * the refinement measurement itself carries an error (the kernel
//!   calibrates against imperfect clocks), and the result is rounded to
//!   1 kHz, so distinct hosts frequently collide — the Gen 2 fingerprint's
//!   low precision (~2 hosts per fingerprint in the paper).

use serde::{Deserialize, Serialize};

use crate::freq::TscFrequency;

/// Precision of the kernel refinement, in Hz (Linux refines to 1 kHz).
pub const REFINEMENT_PRECISION_HZ: f64 = 1_000.0;

/// A refined TSC frequency as exported by the kernel: whole kilohertz.
///
/// # Examples
///
/// ```
/// use eaao_tsc::freq::TscFrequency;
/// use eaao_tsc::refine::RefinedTscFrequency;
///
/// let actual = TscFrequency::from_ghz(2.0).offset_by_hz(5_400.0);
/// // Refinement measured the frequency 300 Hz low, then rounded to 1 kHz.
/// let refined = RefinedTscFrequency::refine(actual, -300.0);
/// assert_eq!(refined.as_khz(), 2_000_005);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RefinedTscFrequency(u64);

impl RefinedTscFrequency {
    /// Runs the boot-time refinement: measures `actual` with a calibration
    /// error of `measurement_error_hz`, then rounds to 1 kHz.
    ///
    /// # Panics
    ///
    /// Panics if the perturbed frequency would be non-positive.
    pub fn refine(actual: TscFrequency, measurement_error_hz: f64) -> Self {
        let measured_hz = actual.as_hz() + measurement_error_hz;
        assert!(measured_hz > 0.0, "refined frequency must be positive");
        RefinedTscFrequency((measured_hz / REFINEMENT_PRECISION_HZ).round() as u64)
    }

    /// Creates a refined value directly from whole kHz (e.g. parsed from a
    /// guest kernel's `tsc_khz`).
    pub fn from_khz(khz: u64) -> Self {
        RefinedTscFrequency(khz)
    }

    /// The refined frequency in whole kHz.
    pub fn as_khz(self) -> u64 {
        self.0
    }

    /// The refined frequency in Hz.
    pub fn as_hz(self) -> f64 {
        self.0 as f64 * REFINEMENT_PRECISION_HZ
    }
}

impl std::fmt::Display for RefinedTscFrequency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}kHz", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_to_whole_khz() {
        let actual = TscFrequency::from_hz(2_000_000_499.0);
        assert_eq!(RefinedTscFrequency::refine(actual, 0.0).as_khz(), 2_000_000);
        let actual = TscFrequency::from_hz(2_000_000_501.0);
        assert_eq!(RefinedTscFrequency::refine(actual, 0.0).as_khz(), 2_000_001);
    }

    #[test]
    fn measurement_error_shifts_result() {
        let actual = TscFrequency::from_ghz(2.0);
        let low = RefinedTscFrequency::refine(actual, -2_000.0);
        let high = RefinedTscFrequency::refine(actual, 2_000.0);
        assert_eq!(high.as_khz() - low.as_khz(), 4);
    }

    #[test]
    fn nearby_hosts_collide() {
        // Two hosts whose true frequencies differ by less than the rounding
        // bucket share a fingerprint — the source of Gen 2 false positives.
        let a = TscFrequency::from_ghz(2.0).offset_by_hz(100.0);
        let b = TscFrequency::from_ghz(2.0).offset_by_hz(300.0);
        assert_eq!(
            RefinedTscFrequency::refine(a, 0.0),
            RefinedTscFrequency::refine(b, 0.0)
        );
    }

    #[test]
    fn round_trips_and_display() {
        let r = RefinedTscFrequency::from_khz(2_200_007);
        assert_eq!(r.as_khz(), 2_200_007);
        assert_eq!(r.as_hz(), 2_200_007_000.0);
        assert_eq!(r.to_string(), "2200007kHz");
    }

    #[test]
    fn ord_allows_sorting() {
        let mut v = [
            RefinedTscFrequency::from_khz(3),
            RefinedTscFrequency::from_khz(1),
            RefinedTscFrequency::from_khz(2),
        ];
        v.sort();
        assert_eq!(
            v.iter().map(|r| r.as_khz()).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    #[should_panic(expected = "refined frequency must be positive")]
    fn rejects_nonpositive_measurement() {
        RefinedTscFrequency::refine(TscFrequency::from_hz(100.0), -200.0);
    }
}
