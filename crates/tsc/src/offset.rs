//! Hardware-assisted TSC offsetting, as used by the Gen 2 environment.
//!
//! With TSC offsetting (Section 4.5), the hypervisor records the host TSC
//! value `tsc0` when it boots a guest VM and configures the hardware so
//! every guest `rdtsc` returns `host_tsc − tsc0`. The guest sees a counter
//! that was zero at *VM* boot — hiding the host's boot time — but the
//! counter still ticks at the host's actual rate, which is what the Gen 2
//! fingerprint exploits.

use eaao_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

use crate::counter::InvariantTsc;

/// A guest-visible view of a host TSC with an offset applied.
///
/// # Examples
///
/// ```
/// use eaao_simcore::time::SimTime;
/// use eaao_tsc::counter::InvariantTsc;
/// use eaao_tsc::freq::TscFrequency;
/// use eaao_tsc::offset::OffsetTsc;
///
/// let host = InvariantTsc::new(SimTime::ZERO, TscFrequency::from_ghz(2.0));
/// // VM boots 100 s after the host.
/// let guest = OffsetTsc::for_vm_booted_at(host, SimTime::from_secs(100));
/// assert_eq!(guest.read(SimTime::from_secs(100)), 0);
/// assert_eq!(guest.read(SimTime::from_secs(101)), 2_000_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffsetTsc {
    host: InvariantTsc,
    offset: u64,
}

impl OffsetTsc {
    /// Creates a guest view with an explicit raw offset.
    pub fn new(host: InvariantTsc, offset: u64) -> Self {
        OffsetTsc { host, offset }
    }

    /// Creates the conventional hypervisor configuration: the offset is the
    /// host TSC value at the moment the VM boots, so the guest counter reads
    /// zero at VM boot.
    ///
    /// # Panics
    ///
    /// Panics if `vm_boot` precedes the host's boot.
    pub fn for_vm_booted_at(host: InvariantTsc, vm_boot: SimTime) -> Self {
        OffsetTsc {
            host,
            offset: host.read(vm_boot),
        }
    }

    /// The raw offset subtracted from host reads.
    pub fn offset(self) -> u64 {
        self.offset
    }

    /// Reads the guest-visible counter at `now` (`rdtsc` inside the VM).
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the VM boot instant (the guest counter would
    /// be negative, which the hardware never produces for a live VM).
    pub fn read(self, now: SimTime) -> u64 {
        let host_value = self.host.read(now);
        host_value
            .checked_sub(self.offset)
            .expect("guest TSC read before VM boot")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::TscFrequency;

    fn host() -> InvariantTsc {
        InvariantTsc::new(
            SimTime::from_secs(10),
            TscFrequency::from_ghz(2.0).offset_by_hz(7_000.0),
        )
    }

    #[test]
    fn guest_zero_at_vm_boot() {
        let guest = OffsetTsc::for_vm_booted_at(host(), SimTime::from_secs(500));
        assert_eq!(guest.read(SimTime::from_secs(500)), 0);
    }

    #[test]
    fn guest_rate_matches_host_rate() {
        let h = host();
        let guest = OffsetTsc::for_vm_booted_at(h, SimTime::from_secs(500));
        let t1 = SimTime::from_secs(600);
        let t2 = SimTime::from_secs(700);
        let guest_delta = guest.read(t2) - guest.read(t1);
        let host_delta = h.read(t2) - h.read(t1);
        assert_eq!(guest_delta, host_delta);
    }

    #[test]
    fn offset_hides_host_boot_time() {
        // Deriving "boot time" from the guest TSC yields the VM boot, not
        // the host boot.
        let h = host();
        let vm_boot = SimTime::from_secs(500);
        let guest = OffsetTsc::for_vm_booted_at(h, vm_boot);
        let now = SimTime::from_secs(1_000);
        let apparent_uptime_s = guest.read(now) as f64 / h.actual_frequency().as_hz();
        let derived_boot = now.as_secs_f64() - apparent_uptime_s;
        assert!((derived_boot - vm_boot.as_secs_f64()).abs() < 1e-6);
        assert!((derived_boot - h.boot_time().as_secs_f64()).abs() > 400.0);
    }

    #[test]
    fn explicit_offset_accessor() {
        let guest = OffsetTsc::new(host(), 12345);
        assert_eq!(guest.offset(), 12345);
    }

    #[test]
    #[should_panic(expected = "guest TSC read before VM boot")]
    fn read_before_vm_boot_panics() {
        let guest = OffsetTsc::for_vm_booted_at(host(), SimTime::from_secs(500));
        guest.read(SimTime::from_secs(499));
    }
}
