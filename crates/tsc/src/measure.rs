//! The attacker's TSC-frequency measurement procedure (Section 4.2,
//! method 2).
//!
//! The attacker reads the TSC twice, `Δ T_w` apart, and computes
//! `f̂ = Δtsc / ΔT_w`. Because the sandbox only exposes a noisy syscall
//! clock, repeated measurements scatter: on most hosts the standard
//! deviation after 10 repetitions is under 100 Hz, but on ~10% of hosts it
//! ranges from 10 kHz to a few MHz — making the measured frequency unusable
//! for fingerprinting and motivating the reported-frequency method.

use eaao_simcore::stats::Summary;
use eaao_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::boot::TscSample;
use crate::freq::TscFrequency;

/// Something that can take paired (tsc, wall) samples and wait in between —
/// the view an attacker program has from inside a sandbox.
pub trait TimeSampler {
    /// Takes one paired sample at the current instant.
    fn sample(&mut self) -> TscSample;

    /// Busy-waits (or sleeps) for approximately `d` of wall time.
    fn wait(&mut self, d: SimDuration);
}

/// Result of a repeated frequency measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyMeasurement {
    estimates_hz: Vec<f64>,
}

impl FrequencyMeasurement {
    /// The individual per-repetition estimates in Hz.
    pub fn estimates_hz(&self) -> &[f64] {
        &self.estimates_hz
    }

    /// The mean estimate as a frequency.
    ///
    /// # Panics
    ///
    /// Panics if the measurement is empty or the mean is non-positive
    /// (cannot happen for samples produced by a monotone TSC).
    pub fn mean_frequency(&self) -> TscFrequency {
        TscFrequency::from_hz(Summary::of(&self.estimates_hz).mean())
    }

    /// Standard deviation of the estimates in Hz — the paper's criterion
    /// for a "problematic" host (≥ 10 kHz).
    pub fn std_dev_hz(&self) -> f64 {
        Summary::of(&self.estimates_hz).std_dev()
    }
}

/// Measures the TSC frequency with `repetitions` repetitions of the
/// two-read procedure, waiting `wait` between the reads of each repetition.
///
/// # Panics
///
/// Panics if `repetitions` is zero or `wait` is not positive.
///
/// # Examples
///
/// ```
/// use eaao_simcore::time::{SimDuration, SimTime};
/// use eaao_tsc::boot::TscSample;
/// use eaao_tsc::measure::{measure_frequency, TimeSampler};
///
/// /// A noise-free sampler ticking at exactly 2 GHz.
/// struct Ideal {
///     now: SimTime,
/// }
/// impl TimeSampler for Ideal {
///     fn sample(&mut self) -> TscSample {
///         let ticks = (self.now.as_secs_f64() * 2e9).round() as u64;
///         TscSample::new(ticks, self.now)
///     }
///     fn wait(&mut self, d: SimDuration) {
///         self.now += d;
///     }
/// }
///
/// let mut sampler = Ideal { now: SimTime::from_secs(1) };
/// let m = measure_frequency(&mut sampler, SimDuration::from_millis(100), 10);
/// assert!((m.mean_frequency().as_hz() - 2e9).abs() < 100.0);
/// assert!(m.std_dev_hz() < 100.0);
/// ```
pub fn measure_frequency<S: TimeSampler + ?Sized>(
    sampler: &mut S,
    wait: SimDuration,
    repetitions: usize,
) -> FrequencyMeasurement {
    assert!(repetitions > 0, "need at least one repetition");
    assert!(wait.as_nanos() > 0, "wait must be positive");
    let mut estimates_hz = Vec::with_capacity(repetitions);
    for _ in 0..repetitions {
        let first = sampler.sample();
        sampler.wait(wait);
        let second = sampler.sample();
        let delta_tsc = second.tsc.wrapping_sub(first.tsc) as f64;
        let delta_wall = second.wall.duration_since(first.wall).as_secs_f64();
        if delta_wall > 0.0 {
            estimates_hz.push(delta_tsc / delta_wall);
        }
    }
    FrequencyMeasurement { estimates_hz }
}

/// Threshold above which a host's measured-frequency scatter makes the
/// measured-frequency method unreliable (Section 4.2 reports 10 kHz to a
/// few MHz on problematic hosts).
pub const PROBLEMATIC_STD_DEV_HZ: f64 = 10_000.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clocksource::{ClockNoiseProfile, SyscallClock};
    use crate::counter::InvariantTsc;
    use eaao_simcore::rng::SimRng;
    use eaao_simcore::time::SimTime;

    /// A sampler backed by the full noise model: invariant TSC plus noisy
    /// syscall clock.
    struct NoisySampler {
        now: SimTime,
        tsc: InvariantTsc,
        clock: SyscallClock,
    }

    impl NoisySampler {
        fn new(profile: ClockNoiseProfile, seed: u64) -> Self {
            NoisySampler {
                now: SimTime::from_secs(10_000),
                tsc: InvariantTsc::new(
                    SimTime::ZERO,
                    TscFrequency::from_ghz(2.0).offset_by_hz(3_000.0),
                ),
                clock: SyscallClock::new(profile, SimRng::seed_from(seed)),
            }
        }
    }

    impl TimeSampler for NoisySampler {
        fn sample(&mut self) -> TscSample {
            TscSample::new(self.tsc.read(self.now), self.clock.read(self.now))
        }

        fn wait(&mut self, d: SimDuration) {
            self.now += d;
        }
    }

    #[test]
    fn normal_host_measures_below_100hz_std() {
        let mut sampler = NoisySampler::new(ClockNoiseProfile::normal_host(), 42);
        let m = measure_frequency(&mut sampler, SimDuration::from_millis(100), 10);
        assert!(m.std_dev_hz() < 1_000.0, "std {}", m.std_dev_hz());
        // The mean recovers the *actual* frequency (2 GHz + 3 kHz), not the
        // reported one.
        assert!(
            (m.mean_frequency().as_hz() - 2_000_003_000.0).abs() < 2_000.0,
            "mean {}",
            m.mean_frequency().as_hz()
        );
    }

    #[test]
    fn typical_normal_host_is_tight() {
        // Baseline σ = 3 ns at ΔT_w = 100 ms gives roughly
        // 2e9 · 3e-9 · √2 / 0.1 ≈ 85 Hz per estimate, matching the paper's
        // "<100 Hz on most hosts". Rare interrupt spikes can still inflate a
        // run, so check across several seeds.
        let mut below = 0;
        for seed in 0..20 {
            let mut sampler = NoisySampler::new(ClockNoiseProfile::normal_host(), seed);
            let m = measure_frequency(&mut sampler, SimDuration::from_millis(100), 10);
            if m.std_dev_hz() < PROBLEMATIC_STD_DEV_HZ {
                below += 1;
            }
        }
        assert!(below >= 19, "only {below}/20 normal hosts below threshold");
    }

    #[test]
    fn problematic_host_scatters_10khz_to_mhz() {
        let mut sampler = NoisySampler::new(ClockNoiseProfile::problematic_host(20e-6), 7);
        let m = measure_frequency(&mut sampler, SimDuration::from_millis(100), 100);
        assert!(
            m.std_dev_hz() > PROBLEMATIC_STD_DEV_HZ,
            "std {}",
            m.std_dev_hz()
        );
        assert!(m.std_dev_hz() < 5e6, "std {}", m.std_dev_hz());
    }

    #[test]
    fn estimates_are_recorded() {
        let mut sampler = NoisySampler::new(ClockNoiseProfile::normal_host(), 8);
        let m = measure_frequency(&mut sampler, SimDuration::from_millis(50), 5);
        assert_eq!(m.estimates_hz().len(), 5);
    }

    #[test]
    #[should_panic(expected = "need at least one repetition")]
    fn rejects_zero_repetitions() {
        let mut sampler = NoisySampler::new(ClockNoiseProfile::normal_host(), 9);
        measure_frequency(&mut sampler, SimDuration::from_millis(100), 0);
    }

    #[test]
    #[should_panic(expected = "wait must be positive")]
    fn rejects_zero_wait() {
        let mut sampler = NoisySampler::new(ClockNoiseProfile::normal_host(), 9);
        measure_frequency(&mut sampler, SimDuration::ZERO, 1);
    }
}
