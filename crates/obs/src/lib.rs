//! Structured observability for the EAAO reproduction: span-scoped
//! tracing, a deterministic metrics registry, and profiling hooks.
//!
//! The paper's attack pipeline ("Everywhere All at Once: Co-Location
//! Attacks on Public Cloud FaaS", ASPLOS 2024) is a chain of timed,
//! stochastic stages — fingerprint collection (§4.1), hierarchical CTest
//! verification (§5), and the launch-strategy probes (§5.2, §6). This
//! crate is the measurement substrate that makes those stages visible:
//! the orchestrator, cloud simulator, experiment drivers, and campaign
//! engine all emit into it, and the `eaao --trace` / `eaao trace`
//! surfaces read it back.
//!
//! # Architecture
//!
//! * [`event`] — the versioned JSONL [`Event`] schema written to trace
//!   files.
//! * [`metrics`] — counters, gauges, and fixed-bucket log-scale
//!   [`Histogram`]s whose serialized [`MetricsSnapshot`] is deterministic
//!   (independent of thread interleaving and `--jobs`).
//! * [`instrument`] — the [`Instrument`] sink trait, the thread-local
//!   [`with_instrument`] dispatch, RAII [`SpanGuard`]s, and the built-in
//!   [`Collector`].
//! * [`trace`] — the on-disk [`TraceWriter`] and the [`TraceSummary`]
//!   aggregator behind `eaao trace`.
//!
//! # Determinism contract
//!
//! Two kinds of data flow through this crate, with different guarantees:
//!
//! 1. **Metrics** are fed only deterministic quantities (simulated time,
//!    counts, simulated spend). A run's [`MetricsSnapshot`] — embedded in
//!    campaign records — is byte-identical across `--jobs` values and
//!    across tracing on/off.
//! 2. **Events** carry wall-clock timestamps (`t_ns`, `dur_ns`) and are
//!    written to a *separate* `--trace` file. They are the trace-side
//!    analogue of a record's `wall_ms`: the only nondeterministic output.
//!
//! # Example
//!
//! ```
//! use eaao_obs::{count, observe, span, with_instrument, Collector};
//!
//! let collector = Collector::with_events();
//! let snapshot = with_instrument(collector.clone(), || {
//!     let mut stage = span("demo.stage");
//!     stage.u64_field("items", 3);
//!     count("demo.items", 3);
//!     observe("demo.sim_ns", 1_500);
//!     collector.snapshot()
//! });
//! assert_eq!(snapshot.counters["demo.items"], 3);
//! assert_eq!(snapshot.histograms["demo.sim_ns"].p50, 1_500);
//! // One span_start + one span_end were buffered for the trace file.
//! assert_eq!(collector.drain_events().len(), 2);
//! ```
//!
//! Instrumented code is observability-agnostic: outside a
//! [`with_instrument`] scope every hook is a cheap no-op, so library
//! users who never ask for metrics pay almost nothing.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod instrument;
pub mod metrics;
pub mod scrape;
pub mod trace;

pub use event::{Event, EventKind, SCHEMA_VERSION};
pub use instrument::{
    active, count, gauge, observe, point, span, with_instrument, Collector, Instrument, SpanGuard,
};
pub use metrics::{
    bucket_bound, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use scrape::{render, render_with_labels};
pub use trace::{SpanStats, TraceSummary, TraceWriter};

/// The commonly used surface in one import.
pub mod prelude {
    pub use crate::event::{Event, EventKind};
    pub use crate::instrument::{
        count, gauge, observe, point, span, with_instrument, Collector, Instrument, SpanGuard,
    };
    pub use crate::metrics::{MetricsRegistry, MetricsSnapshot};
    pub use crate::scrape::{render, render_with_labels};
    pub use crate::trace::{TraceSummary, TraceWriter};
}
