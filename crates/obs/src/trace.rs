//! Trace streams on disk: the JSONL writer behind `--trace` and the
//! reader behind `eaao trace`.
//!
//! A trace file holds one [`Event`] per line, in the order batches were
//! flushed. Within one `run` the events are in emission order (and their
//! `t_ns` values non-decreasing); across runs the interleaving follows
//! completion order, which — like `wall_ms` — is nondeterministic.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use parking_lot::Mutex;

use crate::event::{Event, EventKind};
use crate::metrics::Histogram;

/// A shared, append-only JSONL event stream.
#[derive(Debug)]
pub struct TraceWriter {
    inner: Mutex<BufWriter<File>>,
}

impl TraceWriter {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] if the file cannot be created.
    pub fn create(path: &Path) -> io::Result<TraceWriter> {
        Ok(TraceWriter {
            inner: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }

    /// Appends a batch of events, one JSONL line each, flushing once at
    /// the end so concurrent batches never interleave mid-line.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] on write failure.
    pub fn write_events(&self, events: &[Event]) -> io::Result<()> {
        let mut writer = self.inner.lock();
        for event in events {
            let line = serde_json::to_string(event).expect("event serializes");
            writeln!(writer, "{line}")?;
        }
        writer.flush()
    }
}

/// Per-span-name duration statistics computed from a trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// The span name.
    pub name: String,
    /// Number of `span_end` events seen.
    pub count: u64,
    /// Sum of span durations, nanoseconds.
    pub total_ns: u64,
    /// Median span duration (log-bucket estimate), nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile span duration, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile span duration, nanoseconds.
    pub p99_ns: u64,
    /// Longest span duration, nanoseconds.
    pub max_ns: u64,
}

/// An aggregated reading of a `--trace` JSONL file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Total events in the file.
    pub events: u64,
    /// Distinct run keys seen (0 when the trace was not campaign-scoped).
    pub runs: u64,
    /// Duration statistics per span name, sorted by descending total time.
    pub spans: Vec<SpanStats>,
}

impl TraceSummary {
    /// Reads and aggregates the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] if the file cannot be read, or one of kind
    /// [`io::ErrorKind::InvalidData`] naming the offending line if any
    /// line fails to parse as an [`Event`].
    pub fn read(path: &Path) -> io::Result<TraceSummary> {
        let text = std::fs::read_to_string(path)?;
        let mut events = 0u64;
        let mut runs: BTreeMap<String, ()> = BTreeMap::new();
        let mut durations: BTreeMap<String, (Histogram, u64, u64)> = BTreeMap::new();
        for (number, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let event: Event = serde_json::from_str(line).map_err(|error| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("trace line {}: {error}", number + 1),
                )
            })?;
            events += 1;
            if let Some(run) = &event.run {
                runs.insert(run.clone(), ());
            }
            if event.kind == EventKind::SpanEnd {
                let duration = event.dur_ns.unwrap_or(0);
                let entry = durations
                    .entry(event.name.clone())
                    .or_insert_with(|| (Histogram::default(), 0, 0));
                entry.0.record(duration);
                entry.1 += duration;
                entry.2 = entry.2.max(duration);
            }
        }
        let mut spans: Vec<SpanStats> = durations
            .into_iter()
            .map(|(name, (histogram, total_ns, max_ns))| {
                let snapshot = histogram.snapshot();
                SpanStats {
                    name,
                    count: snapshot.count,
                    total_ns,
                    p50_ns: snapshot.p50,
                    p95_ns: snapshot.p95,
                    p99_ns: snapshot.p99,
                    max_ns,
                }
            })
            .collect();
        spans.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        Ok(TraceSummary {
            events,
            runs: runs.len() as u64,
            spans,
        })
    }

    /// Renders the summary as an aligned text table for terminal output.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} events, {} runs\n{:<28} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
            self.events, self.runs, "span", "count", "total_ms", "p50_us", "p99_us", "max_us"
        );
        for stats in &self.spans {
            out.push_str(&format!(
                "{:<28} {:>7} {:>10.2} {:>10.1} {:>10.1} {:>10.1}\n",
                stats.name,
                stats.count,
                stats.total_ns as f64 / 1e6,
                stats.p50_ns as f64 / 1e3,
                stats.p99_ns as f64 / 1e3,
                stats.max_ns as f64 / 1e3,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SCHEMA_VERSION;
    use serde::Value;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("eaao-obs-trace-tests");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(name)
    }

    fn end_event(run: &str, name: &str, t_ns: u64, dur_ns: u64) -> Event {
        let mut event = Event::new(EventKind::SpanEnd, name, t_ns);
        event.run = Some(run.to_owned());
        event.span = Some(1);
        event.dur_ns = Some(dur_ns);
        event
    }

    #[test]
    fn written_events_summarize_back() {
        let path = scratch("roundtrip.jsonl");
        let writer = TraceWriter::create(&path).expect("create");
        writer
            .write_events(&[
                end_event("a/s0", "world.launch", 10, 5_000),
                end_event("a/s0", "world.launch", 20, 7_000),
                end_event("b/s0", "verify.hierarchical", 10, 90_000),
            ])
            .expect("write");
        let summary = TraceSummary::read(&path).expect("read");
        assert_eq!(summary.events, 3);
        assert_eq!(summary.runs, 2);
        assert_eq!(summary.spans.len(), 2);
        // Sorted by total time: verify.hierarchical (90us) first.
        assert_eq!(summary.spans[0].name, "verify.hierarchical");
        assert_eq!(summary.spans[1].count, 2);
        assert_eq!(summary.spans[1].total_ns, 12_000);
        assert!(summary.render().contains("world.launch"));
    }

    #[test]
    fn a_malformed_line_is_an_invalid_data_error() {
        let path = scratch("malformed.jsonl");
        std::fs::write(&path, "{\"not\":\"an event\"}\n").expect("write");
        let error = TraceSummary::read(&path).expect_err("rejects");
        assert_eq!(error.kind(), io::ErrorKind::InvalidData);
        assert!(error.to_string().contains("line 1"));
    }

    #[test]
    fn schema_version_round_trips_through_the_file() {
        let path = scratch("version.jsonl");
        let writer = TraceWriter::create(&path).expect("create");
        let mut event = Event::new(EventKind::Point, "marker", 0);
        event.fields = Value::Object(vec![("hosts".to_owned(), Value::I64(4))]);
        writer.write_events(&[event]).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        let parsed: Event = serde_json::from_str(text.trim()).expect("parses");
        assert_eq!(parsed.v, SCHEMA_VERSION);
    }
}
