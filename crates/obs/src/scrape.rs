//! Plaintext scrape rendering of [`MetricsSnapshot`]s.
//!
//! The `eaao-serve` daemon exposes its metrics on a scrape endpoint in
//! the conventional `name{label="value"} value` exposition format:
//! counters and gauges become single samples, histograms become
//! summary-style quantile samples plus `_sum`/`_count`. Rendering is
//! fully deterministic — snapshots store their series in `BTreeMap`s, so
//! the same snapshot always produces byte-identical scrape text.
//!
//! Metric names are sanitized to `[a-zA-Z0-9_:]` (the dotted internal
//! names like `campaign.runs_ok` become `campaign_runs_ok`) and prefixed
//! with `eaao_` so served metrics cannot collide with a co-hosted
//! exporter's namespace.

use std::fmt::Write as _;

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

/// Renders `snapshot` without labels.
///
/// Equivalent to [`render_with_labels`] with an empty label set.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    render_with_labels(snapshot, &[])
}

/// Renders `snapshot` with `labels` attached to every sample.
///
/// Labels are rendered in the order given; the daemon uses this to tag
/// each campaign's merged snapshot with its server-assigned id, e.g.
/// `eaao_campaign_runs_ok{campaign="c0001"} 12`.
pub fn render_with_labels(snapshot: &MetricsSnapshot, labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        sample(&mut out, name, labels, &[], &format_u64(*value));
    }
    for (name, value) in &snapshot.gauges {
        sample(&mut out, name, labels, &[], &format_f64(*value));
    }
    for (name, histogram) in &snapshot.histograms {
        render_histogram(&mut out, name, labels, histogram);
    }
    out
}

/// Wraps already-rendered scrape `body` text in a minimal HTTP/1.1
/// response, the whole answer the daemon's scrape listener writes to any
/// connection before closing it.
pub fn http_response(body: &str) -> String {
    format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    histogram: &HistogramSnapshot,
) {
    for (quantile, value) in [
        ("0.5", histogram.p50),
        ("0.95", histogram.p95),
        ("0.99", histogram.p99),
    ] {
        sample(
            out,
            name,
            labels,
            &[("quantile", quantile)],
            &format_u64(value),
        );
    }
    let base = sanitize(name);
    line(
        out,
        &format!("{base}_sum"),
        labels,
        &format_u64(histogram.sum),
    );
    line(
        out,
        &format!("{base}_count"),
        labels,
        &format_u64(histogram.count),
    );
}

/// One sample whose name still needs sanitizing.
fn sample(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    extra: &[(&str, &str)],
    value: &str,
) {
    let sanitized = sanitize(name);
    let mut all: Vec<(&str, &str)> = labels.to_vec();
    all.extend_from_slice(extra);
    line_with(out, &sanitized, &all, value);
}

/// One sample with an already-sanitized name.
fn line(out: &mut String, sanitized: &str, labels: &[(&str, &str)], value: &str) {
    line_with(out, sanitized, labels, value);
}

fn line_with(out: &mut String, sanitized: &str, labels: &[(&str, &str)], value: &str) {
    out.push_str(sanitized);
    if !labels.is_empty() {
        out.push('{');
        for (idx, (key, val)) in labels.iter().enumerate() {
            if idx > 0 {
                out.push(',');
            }
            let _ = write!(out, "{key}=\"{}\"", escape_label(val));
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Maps an internal dotted metric name onto the exposition charset and
/// prefixes the `eaao_` namespace.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("eaao_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes `\`, `"`, and newlines inside a label value.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn format_u64(value: u64) -> String {
    value.to_string()
}

/// `f64` rendering that keeps integral values short (`3` not `3.0`) and
/// is stable across platforms (Rust's `Display` for `f64` is shortest
/// round-trip, which is deterministic).
fn format_f64(value: f64) -> String {
    if value == value.trunc() && value.is_finite() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn snapshot() -> MetricsSnapshot {
        let registry = MetricsRegistry::new();
        registry.counter("campaign.runs_ok").add(12);
        registry.gauge("serve.active_clients").set(3.0);
        let h = registry.histogram("probe.sim_ns");
        h.record(100);
        h.record(200);
        registry.snapshot()
    }

    #[test]
    fn renders_counters_gauges_and_histograms_deterministically() {
        let snap = snapshot();
        let text = render(&snap);
        assert!(text.contains("eaao_campaign_runs_ok 12\n"));
        assert!(text.contains("eaao_serve_active_clients 3\n"));
        assert!(text.contains("eaao_probe_sim_ns{quantile=\"0.5\"}"));
        assert!(text.contains("eaao_probe_sim_ns_sum 300\n"));
        assert!(text.contains("eaao_probe_sim_ns_count 2\n"));
        assert_eq!(text, render(&snap), "rendering is deterministic");
    }

    #[test]
    fn labels_are_attached_and_escaped() {
        let snap = snapshot();
        let text = render_with_labels(&snap, &[("campaign", "c0001\"x\\y")]);
        assert!(text.contains("eaao_campaign_runs_ok{campaign=\"c0001\\\"x\\\\y\"} 12\n"));
        assert!(text.contains("{campaign=\"c0001\\\"x\\\\y\",quantile=\"0.5\"}"));
    }

    #[test]
    fn http_response_wraps_body_with_content_length() {
        let response = http_response("a 1\n");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(response.contains("Content-Length: 4\r\n"));
        assert!(response.ends_with("\r\n\r\na 1\n"));
    }

    #[test]
    fn fractional_gauges_keep_their_fraction() {
        let registry = MetricsRegistry::new();
        registry.gauge("serve.load").set(0.5);
        let text = render(&registry.snapshot());
        assert!(text.contains("eaao_serve_load 0.5\n"));
    }
}
