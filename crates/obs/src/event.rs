//! The structured event schema written to `--trace` JSONL streams.
//!
//! Every line of a trace file is one [`Event`], serialized as a JSON
//! object with a fixed field set (see [`Event`] for the meaning of each
//! field and `docs/OBSERVABILITY.md` for worked examples). The schema is
//! versioned through [`SCHEMA_VERSION`] so readers can reject streams
//! produced by an incompatible writer.

use serde::{Deserialize, Error, Serialize, Value};

/// Version stamped into every event's `v` field. Bump on any breaking
/// change to the [`Event`] layout.
pub const SCHEMA_VERSION: u64 = 1;

/// What an [`Event`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened: `t_ns` is its start time, `span` its id.
    SpanStart,
    /// A span closed: `t_ns` is its end time, `dur_ns` its duration, and
    /// `fields` carries every annotation added while it was open.
    SpanEnd,
    /// A one-off annotation outside any span lifecycle.
    Point,
    /// A metrics snapshot: `fields` holds a serialized
    /// [`MetricsSnapshot`](crate::metrics::MetricsSnapshot).
    Metrics,
}

impl EventKind {
    /// The snake_case wire name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Point => "point",
            EventKind::Metrics => "metrics",
        }
    }
}

impl Serialize for EventKind {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_owned())
    }
}

impl Deserialize for EventKind {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let text = v.as_str().ok_or_else(|| {
            Error::custom(format!("expected event kind string, got {}", v.kind()))
        })?;
        match text {
            "span_start" => Ok(EventKind::SpanStart),
            "span_end" => Ok(EventKind::SpanEnd),
            "point" => Ok(EventKind::Point),
            "metrics" => Ok(EventKind::Metrics),
            other => Err(Error::custom(format!("unknown event kind {other:?}"))),
        }
    }
}

/// One structured observability event.
///
/// Timestamps (`t_ns`, `dur_ns`) are **wall-clock** nanoseconds measured
/// from a per-run monotonic anchor — they are the only nondeterministic
/// content in a trace, exactly as `wall_ms` is the only nondeterministic
/// field of a campaign record. Everything else (names, span topology,
/// deterministic `fields` annotations) is reproducible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Schema version; always [`SCHEMA_VERSION`] for events this crate
    /// emits.
    pub v: u64,
    /// The campaign run key the event belongs to, when emitted under the
    /// campaign engine (`None` for standalone CLI traces).
    pub run: Option<String>,
    /// What the event describes.
    pub kind: EventKind,
    /// Dotted event name, e.g. `world.ctest` (see `docs/OBSERVABILITY.md`
    /// for the full catalog).
    pub name: String,
    /// Span id, unique within one run's event stream.
    pub span: Option<u64>,
    /// Id of the span that was open when this one started.
    pub parent: Option<u64>,
    /// Nanoseconds since the run's clock anchor (wall time; monotonic and
    /// non-decreasing within a run).
    pub t_ns: u64,
    /// Span duration in nanoseconds (`span_end` only).
    pub dur_ns: Option<u64>,
    /// Deterministic annotations (span fields or a metrics snapshot);
    /// `null` when there are none.
    pub fields: Value,
}

impl Event {
    /// A bare event of `kind` named `name` at `t_ns`, with every optional
    /// field empty.
    pub fn new(kind: EventKind, name: impl Into<String>, t_ns: u64) -> Event {
        Event {
            v: SCHEMA_VERSION,
            run: None,
            kind,
            name: name.into(),
            span: None,
            parent: None,
            t_ns,
            dur_ns: None,
            fields: Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_their_wire_names() {
        for kind in [
            EventKind::SpanStart,
            EventKind::SpanEnd,
            EventKind::Point,
            EventKind::Metrics,
        ] {
            let wire = serde_json::to_string(&kind).expect("serializes");
            assert_eq!(wire, format!("{:?}", kind.as_str()));
            let back: EventKind = serde_json::from_str(&wire).expect("parses");
            assert_eq!(back, kind);
        }
    }

    #[test]
    fn unknown_kind_is_rejected() {
        assert!(serde_json::from_str::<EventKind>("\"span_begin\"").is_err());
    }

    #[test]
    fn events_round_trip_through_jsonl() {
        let mut event = Event::new(EventKind::SpanEnd, "world.launch", 42);
        event.run = Some("fig6/us-west1/-/-/-/-/s0".to_owned());
        event.span = Some(3);
        event.parent = Some(1);
        event.dur_ns = Some(17);
        event.fields = Value::Object(vec![("requested".to_owned(), Value::I64(800))]);
        let line = serde_json::to_string(&event).expect("serializes");
        let back: Event = serde_json::from_str(&line).expect("parses");
        assert_eq!(back, event);
    }
}
