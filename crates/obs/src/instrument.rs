//! Profiling hooks: the [`Instrument`] sink trait, the thread-local
//! dispatch that instrumented code emits into, and RAII [`SpanGuard`]s.
//!
//! Instrumented code never owns a sink. It calls the free functions
//! ([`span`], [`count`], [`gauge`], [`observe`]) which route to whatever
//! [`Instrument`] the surrounding [`with_instrument`] scope installed on
//! the current thread — or do nothing, cheaply, when no scope is active.
//! This is what lets the orchestrator, simulator, and experiment drivers
//! stay observability-agnostic while the campaign engine collects per-run
//! metrics and traces.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Serialize, Value};

use crate::event::{Event, EventKind, SCHEMA_VERSION};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};

/// A sink for structured events and metrics.
///
/// Implementations must be thread-safe; the built-in [`Collector`] is the
/// canonical one. `now_ns` anchors span timestamps — it must be monotonic
/// and non-decreasing for the lifetime of the instrument.
pub trait Instrument: Send + Sync {
    /// Whether span/point events should be constructed at all. Metrics
    /// updates are always applied; returning `false` here makes spans
    /// nearly free.
    fn wants_events(&self) -> bool;
    /// Accepts one event (only called when [`Instrument::wants_events`]
    /// returns `true`).
    fn record(&self, event: Event);
    /// The metrics registry updates are applied to.
    fn metrics(&self) -> &MetricsRegistry;
    /// Monotonic nanoseconds since the instrument's clock anchor.
    fn now_ns(&self) -> u64;
}

struct ActiveScope {
    instrument: Arc<dyn Instrument>,
    span_stack: Vec<u64>,
    next_span: u64,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveScope>> = const { RefCell::new(None) };
}

/// Runs `f` with `instrument` installed as the current thread's sink,
/// restoring the previous sink (if any) afterwards — including on panic,
/// so a caught panic in instrumented code cannot leak a stale scope.
pub fn with_instrument<R>(instrument: Arc<dyn Instrument>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<ActiveScope>);
    impl Drop for Restore {
        fn drop(&mut self) {
            ACTIVE.with(|active| *active.borrow_mut() = self.0.take());
        }
    }
    let previous = ACTIVE.with(|active| {
        active.borrow_mut().replace(ActiveScope {
            instrument,
            span_stack: Vec::new(),
            next_span: 1,
        })
    });
    let _restore = Restore(previous);
    f()
}

/// Whether an instrument is installed on the current thread.
pub fn active() -> bool {
    ACTIVE.with(|active| active.borrow().is_some())
}

/// Adds `delta` to the counter `name` of the current scope's registry.
/// No-op outside a [`with_instrument`] scope.
pub fn count(name: &str, delta: u64) {
    ACTIVE.with(|active| {
        if let Some(scope) = active.borrow().as_ref() {
            scope.instrument.metrics().counter(name).add(delta);
        }
    });
}

/// Sets the gauge `name` of the current scope's registry. No-op outside a
/// [`with_instrument`] scope.
pub fn gauge(name: &str, value: f64) {
    ACTIVE.with(|active| {
        if let Some(scope) = active.borrow().as_ref() {
            scope.instrument.metrics().gauge(name).set(value);
        }
    });
}

/// Records `value` into the histogram `name` of the current scope's
/// registry. No-op outside a [`with_instrument`] scope.
pub fn observe(name: &str, value: u64) {
    ACTIVE.with(|active| {
        if let Some(scope) = active.borrow().as_ref() {
            scope.instrument.metrics().histogram(name).record(value);
        }
    });
}

/// State of a live span; present only while a scope wants events.
#[derive(Debug)]
struct SpanActive {
    name: String,
    id: u64,
    parent: Option<u64>,
    start_ns: u64,
    fields: Vec<(String, Value)>,
}

/// An RAII guard for one traced span.
///
/// Created by [`span`]; emits a `span_start` event immediately and the
/// matching `span_end` (carrying duration and any annotations added via
/// the `*_field` methods) when dropped. Outside an event-collecting
/// scope the guard is inert and allocation-free.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<SpanActive>,
}

impl SpanGuard {
    /// Attaches a deterministic annotation to the span's end event.
    pub fn field(&mut self, key: &str, value: Value) {
        if let Some(active) = &mut self.active {
            active.fields.push((key.to_owned(), value));
        }
    }

    /// Attaches an unsigned-integer annotation.
    pub fn u64_field(&mut self, key: &str, value: u64) {
        self.field(key, value.to_value());
    }

    /// Attaches a float annotation.
    pub fn f64_field(&mut self, key: &str, value: f64) {
        self.field(key, value.to_value());
    }

    /// Attaches a string annotation.
    pub fn str_field(&mut self, key: &str, value: &str) {
        self.field(key, Value::String(value.to_owned()));
    }

    /// Attaches a boolean annotation.
    pub fn bool_field(&mut self, key: &str, value: bool) {
        self.field(key, Value::Bool(value));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        ACTIVE.with(|scope_cell| {
            let mut borrow = scope_cell.borrow_mut();
            let Some(scope) = borrow.as_mut() else {
                return; // The owning scope already ended; drop silently.
            };
            if let Some(position) = scope.span_stack.iter().rposition(|&id| id == active.id) {
                scope.span_stack.truncate(position);
            }
            let now = scope.instrument.now_ns();
            let event = Event {
                v: SCHEMA_VERSION,
                run: None,
                kind: EventKind::SpanEnd,
                name: active.name,
                span: Some(active.id),
                parent: active.parent,
                t_ns: now,
                dur_ns: Some(now.saturating_sub(active.start_ns)),
                fields: if active.fields.is_empty() {
                    Value::Null
                } else {
                    Value::Object(active.fields)
                },
            };
            scope.instrument.record(event);
        });
    }
}

/// Opens a traced span named `name`, returning its RAII guard.
///
/// The span nests under whichever span is currently open on this thread
/// (its `parent` field records that id). Outside an event-collecting
/// [`with_instrument`] scope this is a no-op returning an inert guard.
pub fn span(name: &str) -> SpanGuard {
    let active = ACTIVE.with(|scope_cell| {
        let mut borrow = scope_cell.borrow_mut();
        let scope = borrow.as_mut()?;
        if !scope.instrument.wants_events() {
            return None;
        }
        let id = scope.next_span;
        scope.next_span += 1;
        let parent = scope.span_stack.last().copied();
        let start_ns = scope.instrument.now_ns();
        let mut start = Event::new(EventKind::SpanStart, name, start_ns);
        start.span = Some(id);
        start.parent = parent;
        scope.instrument.record(start);
        scope.span_stack.push(id);
        Some(SpanActive {
            name: name.to_owned(),
            id,
            parent,
            start_ns,
            fields: Vec::new(),
        })
    });
    SpanGuard { active }
}

/// Emits a one-off [`EventKind::Point`] event named `name` with the given
/// deterministic fields. No-op outside an event-collecting scope.
pub fn point(name: &str, fields: Vec<(String, Value)>) {
    ACTIVE.with(|scope_cell| {
        let borrow = scope_cell.borrow();
        let Some(scope) = borrow.as_ref() else {
            return;
        };
        if !scope.instrument.wants_events() {
            return;
        }
        let mut event = Event::new(EventKind::Point, name, scope.instrument.now_ns());
        event.parent = scope.span_stack.last().copied();
        event.fields = if fields.is_empty() {
            Value::Null
        } else {
            Value::Object(fields)
        };
        scope.instrument.record(event);
    });
}

/// The built-in [`Instrument`]: buffers events in memory and owns a
/// [`MetricsRegistry`], with timestamps anchored to its creation instant.
///
/// The campaign engine installs one `Collector` per run (on the worker
/// thread executing that run), which is why per-run metrics and event
/// streams never interleave across `--jobs` workers.
pub struct Collector {
    clock: Instant,
    collect_events: bool,
    events: Mutex<Vec<Event>>,
    metrics: MetricsRegistry,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("collect_events", &self.collect_events)
            .field("events", &self.events.lock().len())
            .finish_non_exhaustive()
    }
}

impl Collector {
    /// A metrics-only collector: spans are free, no events are buffered.
    pub fn new() -> Arc<Collector> {
        Collector::build(false)
    }

    /// A collector that additionally buffers every span/point event.
    pub fn with_events() -> Arc<Collector> {
        Collector::build(true)
    }

    fn build(collect_events: bool) -> Arc<Collector> {
        Arc::new(Collector {
            clock: Instant::now(),
            collect_events,
            events: Mutex::new(Vec::new()),
            metrics: MetricsRegistry::new(),
        })
    }

    /// A deterministic snapshot of every metric recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Takes the buffered events, leaving the buffer empty.
    pub fn drain_events(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock())
    }

    /// Renders the metrics recorded so far as one [`EventKind::Metrics`]
    /// event (its `fields` hold the snapshot), or `None` when no metric has
    /// been touched. Useful as the closing line of a trace file.
    pub fn metrics_event(&self) -> Option<Event> {
        let snapshot = self.metrics.snapshot();
        if snapshot.is_empty() {
            return None;
        }
        let mut event = Event::new(EventKind::Metrics, "metrics", self.now_ns());
        event.fields = snapshot.to_value();
        Some(event)
    }
}

impl Instrument for Collector {
    fn wants_events(&self) -> bool {
        self.collect_events
    }

    fn record(&self, event: Event) {
        self.events.lock().push(event);
    }

    fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    fn now_ns(&self) -> u64 {
        let elapsed = self.clock.elapsed().as_nanos();
        u64::try_from(elapsed).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_functions_are_no_ops_without_a_scope() {
        assert!(!active());
        count("orphan", 1);
        observe("orphan", 1);
        let mut guard = span("orphan");
        guard.u64_field("ignored", 1);
        drop(guard); // Nothing panics, nothing is recorded anywhere.
    }

    #[test]
    fn metrics_flow_to_the_installed_collector() {
        let collector = Collector::new();
        with_instrument(collector.clone(), || {
            count("demo.launches", 2);
            count("demo.launches", 3);
            gauge("demo.spend", 1.25);
            observe("demo.latency", 128);
        });
        let snapshot = collector.snapshot();
        assert_eq!(snapshot.counters["demo.launches"], 5);
        assert!((snapshot.gauges["demo.spend"] - 1.25).abs() < 1e-12);
        assert_eq!(snapshot.histograms["demo.latency"].count, 1);
        // Metrics-only collectors never buffer events.
        with_instrument(collector.clone(), || drop(span("demo.span")));
        assert!(collector.drain_events().is_empty());
    }

    #[test]
    fn spans_nest_and_carry_durations() {
        let collector = Collector::with_events();
        with_instrument(collector.clone(), || {
            let mut outer = span("outer");
            outer.u64_field("n", 7);
            {
                let _inner = span("inner");
            }
            drop(outer);
        });
        let events = collector.drain_events();
        let names: Vec<(&str, EventKind)> =
            events.iter().map(|e| (e.name.as_str(), e.kind)).collect();
        assert_eq!(
            names,
            vec![
                ("outer", EventKind::SpanStart),
                ("inner", EventKind::SpanStart),
                ("inner", EventKind::SpanEnd),
                ("outer", EventKind::SpanEnd),
            ]
        );
        let inner_start = &events[1];
        assert_eq!(inner_start.parent, events[0].span);
        let outer_end = &events[3];
        assert!(outer_end.dur_ns.is_some());
        assert_eq!(outer_end.fields.get("n").and_then(Value::as_u64), Some(7));
        // Timestamps are non-decreasing in emission order.
        for pair in events.windows(2) {
            assert!(pair[0].t_ns <= pair[1].t_ns);
        }
    }

    #[test]
    fn scopes_restore_the_previous_instrument() {
        let outer = Collector::new();
        let inner = Collector::new();
        with_instrument(outer.clone(), || {
            count("depth", 1);
            with_instrument(inner.clone(), || count("depth", 10));
            count("depth", 1);
        });
        assert_eq!(outer.snapshot().counters["depth"], 2);
        assert_eq!(inner.snapshot().counters["depth"], 10);
    }

    #[test]
    fn a_panic_does_not_leak_the_scope() {
        let collector = Collector::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_instrument(collector.clone(), || panic!("boom"));
        }));
        assert!(result.is_err());
        assert!(!active());
    }

    #[test]
    fn point_events_attach_to_the_open_span() {
        let collector = Collector::with_events();
        with_instrument(collector.clone(), || {
            let _guard = span("stage");
            point("decision", vec![("surplus".to_owned(), Value::I64(3))]);
        });
        let events = collector.drain_events();
        assert_eq!(events[1].kind, EventKind::Point);
        assert_eq!(events[1].parent, events[0].span);
    }
}
