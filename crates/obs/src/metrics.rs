//! A deterministic metrics registry: counters, gauges, and log-scale
//! histograms.
//!
//! Determinism contract: every update is an atomic operation on a
//! pre-registered handle (name lookup takes a short registry lock; the
//! hot-path update itself is a single wait-free atomic op), histograms
//! use **fixed** power-of-two buckets, and snapshots iterate `BTreeMap`s
//! — so a snapshot's serialized form depends only on the values fed in,
//! never on thread interleaving or registration order. Feed metrics only
//! deterministic quantities (simulated time, counts, simulated spend) and
//! campaign output stays byte-identical across `--jobs` values; wall-clock
//! durations belong in trace events (see [`crate::event`]), never here.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Number of histogram buckets: one for zero plus one per power of two up
/// to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket index recording `value`: bucket 0 holds exactly zero, and
/// bucket `i >= 1` holds `2^(i-1) ..= 2^i - 1`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The largest value falling in bucket `index` (inclusive upper bound).
///
/// # Panics
///
/// Panics if `index >= HISTOGRAM_BUCKETS`.
pub fn bucket_bound(index: usize) -> u64 {
    assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
    match index {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point level (e.g. total simulated spend).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// Sets the gauge to `value`.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket log-scale histogram of `u64` samples.
///
/// The bucket layout is [`bucket_index`]'s: bucket 0 for zero, then one
/// bucket per power of two. Fixed buckets make the serialized snapshot —
/// including the derived p50/p95/p99 — a pure function of the recorded
/// multiset, independent of recording order.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    // tidy:allow(panic-reachability) -- `bucket_index` returns at most 64 and `buckets` has 65 entries (one per leading-zero class plus the zero bucket).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// An immutable copy of the histogram's current state, with quantiles
    /// precomputed.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(index, bucket)| {
                let count = bucket.load(Ordering::Relaxed);
                (count > 0).then(|| (bucket_bound(index), count))
            })
            .collect();
        let count: u64 = buckets.iter().map(|&(_, n)| n).sum();
        let max = self.max.load(Ordering::Relaxed);
        let mut snapshot = HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max,
            p50: 0,
            p95: 0,
            p99: 0,
            buckets,
        };
        snapshot.recompute_quantiles();
        snapshot
    }
}

/// Serializable state of a [`Histogram`], with derived quantiles.
///
/// `buckets` is sparse: `(inclusive upper bound, sample count)` pairs for
/// every non-empty bucket, in ascending bound order. Quantiles are bucket
/// upper bounds clamped to the observed maximum, so a single-valued
/// histogram reports that exact value at every percentile.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Sparse `(upper bound, count)` pairs, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The value at quantile `q` (in `0.0..=1.0`), estimated as the upper
    /// bound of the bucket containing the target rank, clamped to the
    /// observed maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for &(bound, n) in &self.buckets {
            cumulative += n;
            if cumulative >= target {
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// Folds `other`'s samples into this snapshot, bucket-wise, and
    /// recomputes the quantiles. Merging is commutative and associative,
    /// so campaign aggregation is order-independent.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut merged: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        for &(bound, n) in &other.buckets {
            *merged.entry(bound).or_insert(0) += n;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.buckets = merged.into_iter().collect();
        self.recompute_quantiles();
    }

    fn recompute_quantiles(&mut self) {
        self.p50 = self.quantile(0.50);
        self.p95 = self.quantile(0.95);
        self.p99 = self.quantile(0.99);
    }
}

/// A named collection of [`Counter`]s, [`Gauge`]s, and [`Histogram`]s.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(self.counters.lock().entry(name.to_owned()).or_default())
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(self.gauges.lock().entry(name.to_owned()).or_default())
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(self.histograms.lock().entry(name.to_owned()).or_default())
    }

    /// A deterministic, serializable copy of every registered metric,
    /// keyed by name in lexicographic order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(name, counter)| (name.clone(), counter.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(name, gauge)| (name.clone(), gauge.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(name, histogram)| (name.clone(), histogram.snapshot()))
                .collect(),
        }
    }
}

/// A serializable point-in-time copy of a [`MetricsRegistry`].
///
/// This is the `metrics` block embedded in every campaign
/// [`RunRecord`](https://docs.rs/eaao-campaign) and folded, via
/// [`MetricsSnapshot::merge`], into the campaign-level aggregate.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Whether no metric was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into this snapshot: counters add, gauges take the
    /// maximum (the campaign-aggregate reading of "peak level"), and
    /// histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            let entry = self.gauges.entry(name.clone()).or_insert(*value);
            *entry = entry.max(*value);
        }
        for (name, histogram) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge(histogram);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lands_in_the_zero_bucket() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_bound(0), 0);
        let histogram = Histogram::default();
        histogram.record(0);
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.buckets, vec![(0, 1)]);
        assert_eq!((snapshot.min, snapshot.max), (0, 0));
        assert_eq!((snapshot.p50, snapshot.p99), (0, 0));
    }

    #[test]
    fn u64_max_lands_in_the_top_bucket() {
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bound(64), u64::MAX);
        let histogram = Histogram::default();
        histogram.record(u64::MAX);
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.buckets, vec![(u64::MAX, 1)]);
        assert_eq!(snapshot.p50, u64::MAX);
        assert_eq!(snapshot.sum, u64::MAX);
    }

    #[test]
    fn bucket_boundaries_split_on_powers_of_two() {
        // Bucket i >= 1 holds 2^(i-1) ..= 2^i - 1.
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
        for index in 1..HISTOGRAM_BUCKETS {
            let bound = bucket_bound(index);
            assert_eq!(bucket_index(bound), index, "upper bound of bucket {index}");
            if index < 64 {
                assert_eq!(bucket_index(bound + 1), index + 1);
            }
        }
    }

    #[test]
    fn quantiles_clamp_to_the_observed_maximum() {
        let histogram = Histogram::default();
        for value in [5, 5, 5, 5] {
            histogram.record(value);
        }
        let snapshot = histogram.snapshot();
        // Bucket bound is 7, but no sample exceeds 5.
        assert_eq!(snapshot.p50, 5);
        assert_eq!(snapshot.p99, 5);
    }

    #[test]
    fn quantiles_walk_the_cumulative_distribution() {
        let histogram = Histogram::default();
        for value in 1..=100u64 {
            histogram.record(value);
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, 100);
        assert!(
            snapshot.p50 >= 50 && snapshot.p50 <= 63,
            "p50 = {}",
            snapshot.p50
        );
        assert!(
            snapshot.p95 >= 95 && snapshot.p95 <= 100,
            "p95 = {}",
            snapshot.p95
        );
        assert_eq!(snapshot.max, 100);
        assert_eq!(snapshot.sum, 5050);
    }

    #[test]
    fn snapshots_are_recording_order_independent() {
        let forward = Histogram::default();
        let backward = Histogram::default();
        let values = [0u64, 1, 7, 8, 1023, 1024, u64::MAX];
        for &v in &values {
            forward.record(v);
        }
        for &v in values.iter().rev() {
            backward.record(v);
        }
        assert_eq!(forward.snapshot(), backward.snapshot());
    }

    #[test]
    fn empty_histogram_snapshot_is_all_zero() {
        let snapshot = Histogram::default().snapshot();
        assert_eq!(snapshot, HistogramSnapshot::default());
        assert_eq!(snapshot.quantile(0.99), 0);
    }

    #[test]
    fn merge_equals_recording_into_one_histogram() {
        let left = Histogram::default();
        let right = Histogram::default();
        let combined = Histogram::default();
        for v in [3u64, 9, 1024] {
            left.record(v);
            combined.record(v);
        }
        for v in [0u64, 9, u64::MAX] {
            right.record(v);
            combined.record(v);
        }
        let mut merged = left.snapshot();
        merged.merge(&right.snapshot());
        assert_eq!(merged, combined.snapshot());
    }

    #[test]
    fn snapshot_merge_adds_counters_and_merges_histograms() {
        let a = MetricsRegistry::new();
        a.counter("runs").add(2);
        a.gauge("spend_usd").set(1.5);
        a.histogram("latency").record(10);
        let b = MetricsRegistry::new();
        b.counter("runs").add(3);
        b.gauge("spend_usd").set(0.5);
        b.histogram("latency").record(1000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counters["runs"], 5);
        assert!((merged.gauges["spend_usd"] - 1.5).abs() < 1e-12);
        assert_eq!(merged.histograms["latency"].count, 2);
        assert_eq!(merged.histograms["latency"].max, 1000);
    }

    #[test]
    fn snapshots_round_trip_through_json() {
        let registry = MetricsRegistry::new();
        registry.counter("world.ctests").add(7);
        registry.gauge("world.billed_usd").set(12.25);
        registry.histogram("verify.sim_ns").record(1_670_000);
        let snapshot = registry.snapshot();
        let line = serde_json::to_string(&snapshot).expect("serializes");
        let back: MetricsSnapshot = serde_json::from_str(&line).expect("parses");
        assert_eq!(back, snapshot);
    }
}
