//! Clustering accuracy metrics (Section 4.4.1).
//!
//! Fingerprint accuracy is evaluated over all unique *pairs* of instances:
//! a pair with matching fingerprints that is truly co-located is a true
//! positive, and so on. The headline metric is the Fowlkes–Mallows index,
//! `FMI = sqrt(precision · recall)`.

// tidy:allow(determinism) -- every map below is a counter summed commutatively; see the `from_assignments` notes
use std::collections::HashMap;
use std::hash::Hash;

use serde::{Deserialize, Serialize};

/// Pairwise confusion counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PairConfusion {
    /// Matching fingerprints, truly co-located.
    pub true_positives: u64,
    /// Matching fingerprints, different hosts.
    pub false_positives: u64,
    /// Different fingerprints, different hosts.
    pub true_negatives: u64,
    /// Different fingerprints, truly co-located.
    pub false_negatives: u64,
}

impl PairConfusion {
    /// Computes the confusion over all unique pairs of `n` items, where
    /// `predicted[i]` is item `i`'s fingerprint label and `truth[i]` its
    /// true host label.
    ///
    /// Runs in O(n + groups) using pair-counting identities rather than
    /// enumerating the O(n²) pairs.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_assignments<P, T>(predicted: &[P], truth: &[T]) -> Self
    where
        P: Eq + Hash + Clone,
        T: Eq + Hash + Clone,
    {
        assert_eq!(predicted.len(), truth.len(), "mismatched label lengths");
        let n = predicted.len() as u64;
        let total_pairs = n * n.saturating_sub(1) / 2;

        fn pairs_within<K: Eq + Hash + Clone>(labels: &[K]) -> u64 {
            // tidy:allow(determinism) -- counts summed over values(); addition commutes, order never observed
            let mut counts: HashMap<K, u64> = HashMap::new();
            for l in labels {
                *counts.entry(l.clone()).or_default() += 1;
            }
            counts.values().map(|&c| c * (c - 1) / 2).sum()
        }

        // Pairs sharing both labels: count joint groups.
        // tidy:allow(determinism) -- group sizes summed commutatively; label bounds are `Hash` (public API)
        let mut joint: HashMap<(u64, u64), u64> = HashMap::new();
        {
            // tidy:allow(determinism) -- keyed interning only, never iterated
            let mut pred_ids: HashMap<P, u64> = HashMap::new();
            // tidy:allow(determinism) -- keyed interning only, never iterated
            let mut truth_ids: HashMap<T, u64> = HashMap::new();
            for (p, t) in predicted.iter().zip(truth) {
                let np = pred_ids.len() as u64;
                let pid = *pred_ids.entry(p.clone()).or_insert(np);
                let nt = truth_ids.len() as u64;
                let tid = *truth_ids.entry(t.clone()).or_insert(nt);
                *joint.entry((pid, tid)).or_default() += 1;
            }
        }
        let true_positives: u64 = joint.values().map(|&c| c * (c - 1) / 2).sum();
        let predicted_pairs = pairs_within(predicted);
        let truth_pairs = pairs_within(truth);
        let false_positives = predicted_pairs - true_positives;
        let false_negatives = truth_pairs - true_positives;
        let true_negatives = total_pairs - true_positives - false_positives - false_negatives;
        PairConfusion {
            true_positives,
            false_positives,
            true_negatives,
            false_negatives,
        }
    }

    /// Precision: `TP / (TP + FP)`. Defined as 1 when no positive pairs
    /// were predicted (nothing claimed, nothing wrong).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall: `TP / (TP + FN)`. Defined as 1 when no true pairs exist.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// The Fowlkes–Mallows index: `sqrt(precision · recall)`.
    pub fn fmi(&self) -> f64 {
        (self.precision() * self.recall()).sqrt()
    }

    /// Whether the clustering is perfect (no false pairs at all).
    pub fn is_perfect(&self) -> bool {
        self.false_positives == 0 && self.false_negatives == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering() {
        let predicted = ["a", "a", "b", "b", "c"];
        let truth = [1, 1, 2, 2, 3];
        let c = PairConfusion::from_assignments(&predicted, &truth);
        assert_eq!(c.true_positives, 2);
        assert_eq!(c.false_positives, 0);
        assert_eq!(c.false_negatives, 0);
        assert_eq!(c.true_negatives, 8);
        assert_eq!(c.fmi(), 1.0);
        assert!(c.is_perfect());
    }

    #[test]
    fn false_positive_from_merged_groups() {
        // Two different hosts share a fingerprint.
        let predicted = ["x", "x"];
        let truth = [1, 2];
        let c = PairConfusion::from_assignments(&predicted, &truth);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 1.0); // no true pairs missed (there are none)
        assert_eq!(c.fmi(), 0.0);
        assert!(!c.is_perfect());
    }

    #[test]
    fn false_negative_from_split_groups() {
        // One host produced two fingerprints.
        let predicted = ["x", "y"];
        let truth = [1, 1];
        let c = PairConfusion::from_assignments(&predicted, &truth);
        assert_eq!(c.false_negatives, 1);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.precision(), 1.0);
    }

    #[test]
    fn mixed_case_counts_are_consistent() {
        let predicted = ["a", "a", "a", "b", "b", "c"];
        let truth = [1, 1, 2, 2, 3, 3];
        let c = PairConfusion::from_assignments(&predicted, &truth);
        let n = 6u64;
        assert_eq!(
            c.true_positives + c.false_positives + c.true_negatives + c.false_negatives,
            n * (n - 1) / 2
        );
        // Cross-check against brute force.
        let mut brute = PairConfusion::default();
        for i in 0..6 {
            for j in (i + 1)..6 {
                match (predicted[i] == predicted[j], truth[i] == truth[j]) {
                    (true, true) => brute.true_positives += 1,
                    (true, false) => brute.false_positives += 1,
                    (false, false) => brute.true_negatives += 1,
                    (false, true) => brute.false_negatives += 1,
                }
            }
        }
        assert_eq!(c, brute);
    }

    #[test]
    fn empty_and_singleton() {
        let c = PairConfusion::from_assignments::<u8, u8>(&[], &[]);
        assert_eq!(c.fmi(), 1.0);
        let c = PairConfusion::from_assignments(&["a"], &[1]);
        assert_eq!(c.fmi(), 1.0);
        assert!(c.is_perfect());
    }

    #[test]
    #[should_panic(expected = "mismatched label lengths")]
    fn rejects_length_mismatch() {
        PairConfusion::from_assignments(&["a"], &[1, 2]);
    }

    #[test]
    fn fmi_is_geometric_mean() {
        let predicted = ["a", "a", "a", "b"];
        let truth = [1, 1, 2, 2];
        let c = PairConfusion::from_assignments(&predicted, &truth);
        assert!((c.fmi() - (c.precision() * c.recall()).sqrt()).abs() < 1e-15);
        assert!(c.fmi() > 0.0 && c.fmi() < 1.0);
    }
}
