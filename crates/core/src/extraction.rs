//! Victim-activity detection — step 2 of the threat model.
//!
//! The paper's threat model (Section 3) assumes that "once co-located with
//! the victim, the attacker can detect when the victim program is running
//! and exfiltrate the said sensitive information through techniques
//! discussed in prior work". This module demonstrates the *detection*
//! half on the same RNG covert medium the verification uses: a co-located
//! attacker instance passively watches its host's RNG unit and sees the
//! victim's secret-dependent bursts; a non-co-located one sees only the
//! <1% background.
//!
//! (Actual data exfiltration — the cache/TLB/directory attacks of the
//! citations — is out of scope for the paper and for this reproduction.)

use eaao_cloudsim::ids::InstanceId;
use eaao_orchestrator::error::GuestError;
use eaao_orchestrator::world::World;
use serde::{Deserialize, Serialize};

/// Configuration of the activity monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Observation rounds per window.
    pub rounds_per_window: usize,
    /// Rounds with observed contention required to flag a window as
    /// "victim active". Background noise sits below 1% per round, so a
    /// handful of positive rounds separates the classes cleanly.
    pub detection_rounds: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            rounds_per_window: 60,
            detection_rounds: 10,
        }
    }
}

/// The detected activity timeline: one flag per observed window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityTrace {
    detected: Vec<bool>,
}

impl ActivityTrace {
    /// Per-window detection flags.
    pub fn windows(&self) -> &[bool] {
        &self.detected
    }

    /// Fraction of windows flagged active.
    pub fn duty_cycle(&self) -> f64 {
        if self.detected.is_empty() {
            return 0.0;
        }
        self.detected.iter().filter(|&&d| d).count() as f64 / self.detected.len() as f64
    }

    /// Detection accuracy against a ground-truth schedule.
    ///
    /// # Panics
    ///
    /// Panics if the schedule length differs from the trace length.
    pub fn accuracy_against(&self, schedule: &[bool]) -> f64 {
        assert_eq!(
            schedule.len(),
            self.detected.len(),
            "schedule length mismatch"
        );
        if schedule.is_empty() {
            return 1.0;
        }
        let agree = self
            .detected
            .iter()
            .zip(schedule)
            .filter(|(d, s)| d == s)
            .count();
        agree as f64 / schedule.len() as f64
    }
}

/// Watches the host RNG unit from `observer` across `schedule.len()`
/// windows; in window `w` the `victims` are busy iff `schedule[w]` (the
/// ground truth driven by the experiment — e.g. login requests arriving).
///
/// Returns what the attacker detected.
///
/// # Errors
///
/// Returns a [`GuestError`] if the observer dies mid-campaign.
pub fn monitor_victim_activity(
    world: &mut World,
    observer: InstanceId,
    victims: &[InstanceId],
    schedule: &[bool],
    config: &MonitorConfig,
) -> Result<ActivityTrace, GuestError> {
    let mut detected = Vec::with_capacity(schedule.len());
    for &victim_active in schedule {
        let active: &[InstanceId] = if victim_active { victims } else { &[] };
        let observations =
            world.rng_activity_observation(observer, active, config.rounds_per_window)?;
        let positive_rounds = observations.iter().filter(|&&u| u >= 1).count();
        detected.push(positive_rounds >= config.detection_rounds);
    }
    Ok(ActivityTrace { detected })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eaao_cloudsim::service::ServiceSpec;
    use eaao_orchestrator::config::RegionConfig;

    /// A world with a victim fleet and one attacker instance per victim
    /// host plus one on a different host.
    fn setup(seed: u64) -> (World, Vec<InstanceId>, InstanceId, InstanceId) {
        let mut world = World::new(RegionConfig::us_west1().with_hosts(30), seed);
        let victim_account = world.create_account();
        let victim_service = world.deploy_service(victim_account, ServiceSpec::default());
        let victims = world
            .launch(victim_service, 30)
            .expect("fits")
            .instances()
            .to_vec();
        // Attacker fleet big enough to land on the victim's hosts.
        let attacker_account = world.create_account();
        let attacker_service = world.deploy_service(
            attacker_account,
            ServiceSpec::default().with_max_instances(1_000),
        );
        let attackers = world
            .launch(attacker_service, 200)
            .expect("fits")
            .instances()
            .to_vec();
        let co_located = attackers
            .iter()
            .copied()
            .find(|&a| victims.iter().any(|&v| world.co_located(a, v)))
            .expect("dense fleets overlap");
        let elsewhere = attackers
            .iter()
            .copied()
            .find(|&a| victims.iter().all(|&v| !world.co_located(a, v)))
            .expect("some attacker missed the victims");
        (world, victims, co_located, elsewhere)
    }

    fn alternating_schedule(n: usize) -> Vec<bool> {
        (0..n).map(|w| w % 3 == 0).collect()
    }

    #[test]
    fn co_located_observer_recovers_the_victim_schedule() {
        let (mut world, victims, observer, _) = setup(1);
        let schedule = alternating_schedule(30);
        let trace = monitor_victim_activity(
            &mut world,
            observer,
            &victims,
            &schedule,
            &MonitorConfig::default(),
        )
        .expect("observer alive");
        let accuracy = trace.accuracy_against(&schedule);
        assert!(accuracy > 0.95, "detection accuracy {accuracy}");
    }

    #[test]
    fn distant_observer_sees_only_background() {
        let (mut world, victims, _, observer) = setup(2);
        let schedule = alternating_schedule(30);
        let trace = monitor_victim_activity(
            &mut world,
            observer,
            &victims,
            &schedule,
            &MonitorConfig::default(),
        )
        .expect("observer alive");
        assert!(
            trace.duty_cycle() < 0.1,
            "non-co-located observer detected {}",
            trace.duty_cycle()
        );
    }

    #[test]
    fn terminated_victims_make_no_noise() {
        let (mut world, victims, observer, _) = setup(3);
        let victim_service = world.instance(victims[0]).service();
        world.kill_all(victim_service);
        let schedule = vec![true; 10];
        let trace = monitor_victim_activity(
            &mut world,
            observer,
            &victims,
            &schedule,
            &MonitorConfig::default(),
        )
        .expect("observer alive");
        assert!(trace.duty_cycle() < 0.2, "dead victims detected");
    }

    #[test]
    fn dead_observer_errors() {
        let (mut world, victims, observer, _) = setup(4);
        let attacker_service = world.instance(observer).service();
        world.kill_all(attacker_service);
        let err = monitor_victim_activity(
            &mut world,
            observer,
            &victims,
            &[true],
            &MonitorConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, GuestError::Terminated(observer));
    }

    #[test]
    fn trace_accessors_and_accuracy_edges() {
        let trace = ActivityTrace {
            detected: vec![true, false, true],
        };
        assert_eq!(trace.windows(), &[true, false, true]);
        assert!((trace.duty_cycle() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(trace.accuracy_against(&[true, false, true]), 1.0);
        assert_eq!(trace.accuracy_against(&[false, true, false]), 0.0);
        let empty = ActivityTrace { detected: vec![] };
        assert_eq!(empty.duty_cycle(), 0.0);
        assert_eq!(empty.accuracy_against(&[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "schedule length mismatch")]
    fn accuracy_rejects_mismatched_schedule() {
        let trace = ActivityTrace {
            detected: vec![true],
        };
        trace.accuracy_against(&[true, false]);
    }
}
