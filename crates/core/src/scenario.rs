//! Scenario builder: the attacker-vs-victim setup every experiment starts
//! from, as a one-liner.
//!
//! Most drivers, tests, and examples begin the same way: build a region,
//! create an attacker account and a victim account, deploy the victim's
//! service, and keep `N` victim instances connected. [`Scenario`] packages
//! that (non-consuming builder per the Rust API guidelines) and returns an
//! [`Arena`] holding the world and the cast.
//!
//! # Examples
//!
//! ```
//! use eaao_core::scenario::Scenario;
//! use eaao_core::strategy::OptimizedLaunch;
//! use eaao_core::coverage::measure_coverage;
//!
//! let mut arena = Scenario::in_region("us-west1")
//!     .seed(7)
//!     .victims(40)
//!     .build();
//! let report = OptimizedLaunch {
//!     services: 2,
//!     launches_per_service: 3,
//!     instances_per_launch: 300,
//!     ..OptimizedLaunch::default()
//! }
//! .run(&mut arena.world, arena.attacker)
//! .expect("fits");
//! let coverage = measure_coverage(&arena.world, &report.live_instances, &arena.victims);
//! assert!(coverage.at_least_one());
//! ```

use eaao_cloudsim::ids::{AccountId, InstanceId, ServiceId};
use eaao_cloudsim::mitigation::TscMitigation;
use eaao_cloudsim::service::{ContainerSize, Generation, ServiceSpec};
use eaao_orchestrator::config::RegionConfig;
use eaao_orchestrator::platform::PlatformKind;
use eaao_orchestrator::world::World;

use crate::experiment::fig04::region_config;

/// Builder for an attacker-vs-victim world.
#[derive(Debug, Clone)]
pub struct Scenario {
    region: RegionConfig,
    seed: u64,
    victim_count: usize,
    victim_size: ContainerSize,
    generation: Generation,
}

impl Scenario {
    /// Starts from one of the paper's region presets (`"us-east1"`,
    /// `"us-central1"`, `"us-west1"`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown region name.
    pub fn in_region(name: &str) -> Self {
        Scenario::with_config(region_config(name))
    }

    /// Starts from an explicit region configuration.
    pub fn with_config(region: RegionConfig) -> Self {
        Scenario {
            region,
            seed: 0,
            victim_count: 100,
            victim_size: ContainerSize::Small,
            generation: Generation::Gen1,
        }
    }

    /// Sets the determinism seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the number of connected victim instances (default 100, the
    /// paper's default configuration).
    pub fn victims(&mut self, count: usize) -> &mut Self {
        self.victim_count = count;
        self
    }

    /// Sets the victim container size (default Small).
    pub fn victim_size(&mut self, size: ContainerSize) -> &mut Self {
        self.victim_size = size;
        self
    }

    /// Uses the Gen 2 execution environment for both parties.
    pub fn generation(&mut self, generation: Generation) -> &mut Self {
        self.generation = generation;
        self
    }

    /// Scales the region's host pool (for quick tests).
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is zero.
    pub fn hosts(&mut self, hosts: usize) -> &mut Self {
        self.region = self.region.clone().with_hosts(hosts);
        self
    }

    /// Deploys a platform-side TSC mitigation (Section 6).
    pub fn tsc_mitigation(&mut self, mitigation: TscMitigation) -> &mut Self {
        self.region = self.region.clone().with_tsc_mitigation(mitigation);
        self
    }

    /// Runs the scenario on a different placement-policy family (the
    /// campaign `platform` axis; default CloudRun).
    pub fn platform(&mut self, platform: PlatformKind) -> &mut Self {
        self.region = self.region.clone().with_platform(platform);
        self
    }

    /// Builds the world and launches the victim fleet.
    ///
    /// # Panics
    ///
    /// Panics if the victim fleet does not fit the region (scale the pool
    /// or the victim count).
    pub fn build(&self) -> Arena {
        let mut world = World::new(self.region.clone(), self.seed);
        let attacker = world.create_account();
        let victim_account = world.create_account();
        let victim_service = world.deploy_service(
            victim_account,
            ServiceSpec::default()
                .with_size(self.victim_size)
                .with_generation(self.generation)
                .with_max_instances(self.victim_count.clamp(1, 1_000).max(100)),
        );
        let victims = world
            .launch(victim_service, self.victim_count)
            .expect("victim fleet fits the region")
            .instances()
            .to_vec();
        Arena {
            world,
            attacker,
            victim_account,
            victim_service,
            victims,
        }
    }
}

/// A built scenario: the world plus its cast.
#[derive(Debug, Clone)]
pub struct Arena {
    /// The simulated region.
    pub world: World,
    /// The attacker's (established) account.
    pub attacker: AccountId,
    /// The victim's account.
    pub victim_account: AccountId,
    /// The victim's deployed service.
    pub victim_service: ServiceId,
    /// The victim's connected instances.
    pub victims: Vec<InstanceId>,
}

impl Arena {
    /// Forks the arena copy-on-write: the returned arena shares the
    /// built world's materialized state with this one until either side
    /// writes (see [`World::branch`]), and replays exactly as this arena
    /// would from here. The cast handles (accounts, services, victims)
    /// are valid in both worlds — ids are stable across a branch.
    ///
    /// This is what lets an experiment grid pay the world build + victim
    /// launch once per distinct scenario and hand every trial its own
    /// isolated fork.
    pub fn branch(&self) -> Arena {
        Arena {
            world: self.world.branch(),
            attacker: self.attacker,
            victim_account: self.victim_account,
            victim_service: self.victim_service,
            victims: self.victims.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::measure_coverage;
    use crate::strategy::NaiveLaunch;

    #[test]
    fn builder_defaults_match_the_paper() {
        let arena = Scenario::in_region("us-west1").build();
        assert_eq!(arena.victims.len(), 100);
        assert_ne!(arena.attacker, arena.victim_account);
        assert_eq!(arena.world.region().name, "us-west1");
    }

    #[test]
    fn builder_options_chain() {
        let mut arena = Scenario::in_region("us-east1")
            .seed(5)
            .victims(30)
            .victim_size(ContainerSize::Large)
            .generation(Generation::Gen2)
            .hosts(150)
            .build();
        assert_eq!(arena.victims.len(), 30);
        assert_eq!(arena.world.data_center().len(), 150);
        let instance = arena.world.instance(arena.victims[0]);
        assert_eq!(instance.size(), ContainerSize::Large);
        assert_eq!(instance.generation(), Generation::Gen2);
        // The arena is immediately usable for an attack.
        let report = NaiveLaunch {
            services: 1,
            instances_per_service: 100,
            ..NaiveLaunch::default()
        }
        .run(&mut arena.world, arena.attacker)
        .expect("fits");
        let coverage = measure_coverage(&arena.world, &report.live_instances, &arena.victims);
        assert!(coverage.victim_instances == 30);
    }

    #[test]
    fn platform_axis_builds() {
        let arena = Scenario::in_region("us-west1")
            .platform(PlatformKind::LambdaLike)
            .victims(10)
            .hosts(60)
            .build();
        assert_eq!(arena.world.region().platform, PlatformKind::LambdaLike);
        assert_eq!(arena.victims.len(), 10);
    }

    #[test]
    fn mitigated_scenarios_build() {
        let arena = Scenario::in_region("us-west1")
            .tsc_mitigation(TscMitigation::TrapAndEmulate)
            .victims(10)
            .build();
        assert_eq!(
            arena.world.region().tsc_mitigation,
            TscMitigation::TrapAndEmulate
        );
    }

    #[test]
    #[should_panic(expected = "unknown region")]
    fn unknown_region_panics() {
        Scenario::in_region("mars-north1");
    }
}
