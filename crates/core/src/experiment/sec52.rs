//! Section 5.2, Strategy 1 — naive instance launching.
//!
//! The naive attacker launches 4800 instances from six cold services. All
//! of them land on the attacker's base hosts, so victim coverage is
//! bimodal: zero when attacker and victim use different base hosts, high
//! when they happen to share them (the paper saw 100% for Account 2 in
//! us-west1 and 81% for Account 3 in us-central1, zero elsewhere).

use eaao_cloudsim::service::ServiceSpec;
use eaao_orchestrator::world::World;
use serde::{Deserialize, Serialize};

use crate::coverage::measure_coverage;
use crate::experiment::fig04::region_config;
use crate::strategy::NaiveLaunch;

/// One (region, victim) cell of the Strategy 1 evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sec52Cell {
    /// Region name.
    pub region: String,
    /// Victim account index.
    pub victim: usize,
    /// Victim instance coverage.
    pub coverage: f64,
    /// Attack cost in USD.
    pub cost_usd: f64,
}

/// Configuration for the Strategy 1 evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sec52Config {
    /// Regions to evaluate.
    pub regions: Vec<String>,
    /// Victim accounts per region.
    pub victims: usize,
    /// Victim instances (the default configuration of Figure 11).
    pub victim_count: usize,
    /// The naive strategy parameters.
    pub attacker: NaiveLaunch,
}

impl Default for Sec52Config {
    fn default() -> Self {
        Sec52Config {
            regions: vec![
                "us-east1".to_owned(),
                "us-central1".to_owned(),
                "us-west1".to_owned(),
            ],
            victims: 2,
            victim_count: 100,
            attacker: NaiveLaunch::default(),
        }
    }
}

impl Sec52Config {
    /// A scaled-down configuration for tests and benches.
    pub fn quick() -> Self {
        Sec52Config {
            regions: vec!["us-east1".to_owned(), "us-west1".to_owned()],
            victims: 2,
            victim_count: 50,
            attacker: NaiveLaunch {
                services: 3,
                instances_per_service: 400,
                ..NaiveLaunch::default()
            },
        }
    }

    /// Runs the evaluation.
    ///
    /// # Panics
    ///
    /// Panics if a launch fails.
    pub fn run(&self, seed: u64) -> Sec52Result {
        let mut cells = Vec::new();
        for (r, region) in self.regions.iter().enumerate() {
            for victim in 0..self.victims {
                let run_seed = seed
                    .wrapping_add(r as u64 * 7_919)
                    .wrapping_add((victim as u64) << 20);
                let mut world = World::new(region_config(region), run_seed);
                let attacker_account = world.create_account();
                let victim_accounts = [world.create_account(), world.create_account()];
                let victim_account = victim_accounts[victim.min(1)];

                let victim_service = world.deploy_service(victim_account, ServiceSpec::default());
                let victim_instances = world
                    .launch(victim_service, self.victim_count)
                    .expect("victim fits")
                    .instances()
                    .to_vec();

                let report = self
                    .attacker
                    .run(&mut world, attacker_account)
                    .expect("attacker fits");
                let coverage = measure_coverage(&world, &report.live_instances, &victim_instances);
                cells.push(Sec52Cell {
                    region: region.clone(),
                    victim,
                    coverage: coverage.victim_instance_coverage(),
                    cost_usd: report.cost.as_usd(),
                });
            }
        }
        Sec52Result { cells }
    }
}

/// The Strategy 1 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sec52Result {
    /// One cell per (region, victim).
    pub cells: Vec<Sec52Cell>,
}

impl Sec52Result {
    /// Cells with essentially zero coverage.
    pub fn zero_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.coverage < 0.05).count()
    }

    /// Cells with high coverage (shared base hosts).
    pub fn high_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.coverage > 0.5).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_coverage_is_bimodal_across_seeds() {
        // Aggregate over several seeds: most cells are ~zero, some are
        // high, and intermediate values are rare — the paper's bimodality.
        let mut zero = 0;
        let mut high = 0;
        let mut total = 0;
        for seed in 0..6 {
            let result = Sec52Config::quick().run(seed * 1_000 + 121);
            zero += result.zero_cells();
            high += result.high_cells();
            total += result.cells.len();
        }
        assert!(zero > total / 3, "zero cells {zero}/{total}");
        assert!(
            zero + high >= total * 3 / 4,
            "coverage not bimodal: zero {zero}, high {high}, total {total}"
        );
        assert!(high >= 1, "no lucky base-host overlap in {total} cells");
    }

    #[test]
    fn naive_attack_is_cheap_but_useless_on_average() {
        let result = Sec52Config::quick().run(131);
        for cell in &result.cells {
            assert!(cell.cost_usd < 50.0, "cost ${}", cell.cost_usd);
        }
    }
}
