//! Figure 9 — helper hosts under short launch intervals (Experiment 4,
//! Observation 5).
//!
//! Repeating the 800-instance launch every 10 minutes keeps the service
//! inside the ~30-minute demand window, so the load balancer spreads
//! instances onto helper hosts: both the per-launch and the cumulative
//! apparent-host counts grow sharply before saturating. With a 2-minute
//! interval almost every instance is reused warm and only a dozen new
//! hosts appear; with 45-minute gaps (Figure 7) no helpers appear at all.

use std::collections::BTreeSet;

use eaao_cloudsim::service::ServiceSpec;
use eaao_orchestrator::world::World;
use eaao_simcore::series::Series;
use eaao_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::experiment::apparent_hosts;
use crate::experiment::fig04::region_config;
use crate::fingerprint::{Gen1Fingerprint, Gen1Fingerprinter};

/// Configuration for the Figure 9 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig09Config {
    /// Region to measure.
    pub region: String,
    /// Launches of the service.
    pub launches: usize,
    /// Instances per launch.
    pub instances: usize,
    /// Gap between launches.
    pub interval: SimDuration,
}

impl Default for Fig09Config {
    fn default() -> Self {
        Fig09Config {
            region: "us-east1".to_owned(),
            launches: 6,
            instances: 800,
            interval: SimDuration::from_mins(10),
        }
    }
}

impl Fig09Config {
    /// A scaled-down configuration for tests and benches.
    pub fn quick() -> Self {
        Fig09Config {
            region: "us-west1".to_owned(),
            instances: 300,
            ..Fig09Config::default()
        }
    }

    /// Runs the experiment.
    ///
    /// # Panics
    ///
    /// Panics if a launch fails.
    pub fn run(&self, seed: u64) -> Fig09Result {
        let mut world = World::new(region_config(&self.region), seed);
        let account = world.create_account();
        let service =
            world.deploy_service(account, ServiceSpec::default().with_max_instances(1_000));
        let fingerprinter = Gen1Fingerprinter::default();

        let mut per_launch = Series::new("apparent hosts");
        let mut cumulative = Series::new("cumulative apparent hosts");
        let mut seen: BTreeSet<Gen1Fingerprint> = BTreeSet::new();
        for launch_id in 1..=self.launches {
            let launch = world.launch(service, self.instances).expect("within caps");
            let hosts = apparent_hosts(&mut world, launch.instances(), &fingerprinter);
            per_launch.push(launch_id as f64, hosts.len() as f64);
            seen.extend(hosts);
            cumulative.push(launch_id as f64, seen.len() as f64);
            world.disconnect_all(service);
            world.advance(self.interval);
        }
        Fig09Result {
            region: self.region.clone(),
            interval: self.interval,
            per_launch,
            cumulative,
        }
    }
}

/// The Figure 9 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig09Result {
    /// Region measured.
    pub region: String,
    /// Launch interval used.
    pub interval: SimDuration,
    /// Apparent hosts per launch.
    pub per_launch: Series,
    /// Cumulative apparent hosts.
    pub cumulative: Series,
}

impl Fig09Result {
    /// Apparent hosts gained after the first launch (the paper reports
    /// 177 more at 10-minute intervals, ~12 at 2-minute intervals).
    ///
    /// # Panics
    ///
    /// Panics if the experiment ran zero launches.
    pub fn extra_hosts(&self) -> f64 {
        let ys = self.cumulative.ys();
        ys.last().expect("non-empty") - ys.first().expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_minute_interval_grows_the_footprint() {
        let result = Fig09Config::quick().run(51);
        let first = result.per_launch.ys()[0];
        // Drastic growth relative to the base footprint.
        assert!(
            result.extra_hosts() > first,
            "extra {} on a {first}-host base",
            result.extra_hosts()
        );
        // Per-launch footprint tracks the cumulative curve (the load
        // balancer spreads each hot launch across base + helpers).
        let last_per_launch = *result.per_launch.ys().last().unwrap();
        let last_cumulative = *result.cumulative.ys().last().unwrap();
        assert!(
            last_per_launch > 0.7 * last_cumulative,
            "per-launch {last_per_launch} vs cumulative {last_cumulative}"
        );
    }

    #[test]
    fn growth_saturates() {
        let result = Fig09Config::quick().run(52);
        let ys = result.cumulative.ys();
        let early = ys[2] - ys[0];
        let late = ys[5] - ys[3];
        assert!(
            late < early,
            "helper exploration should decay: early {early}, late {late}"
        );
    }

    #[test]
    fn two_minute_interval_barely_explores() {
        let slow = Fig09Config::quick().run(53);
        let fast = Fig09Config {
            interval: SimDuration::from_mins(2),
            ..Fig09Config::quick()
        }
        .run(53);
        assert!(
            fast.extra_hosts() < slow.extra_hosts() / 3.0,
            "2-min interval grew {} vs {} at 10 min",
            fast.extra_hosts(),
            slow.extra_hosts()
        );
    }
}
