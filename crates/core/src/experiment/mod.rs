//! Experiment drivers: one module per table/figure of the paper.
//!
//! Every driver is a config struct with paper-scale defaults, a `quick()`
//! constructor for fast test/bench runs, and a `run(seed)` method returning
//! a serializable result — the same rows/series the paper reports. Tests,
//! examples, Criterion benches, and the `repro` binary all share these.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`fig04`] | Fig. 4 — Gen 1 fingerprint accuracy vs `p_boot` |
//! | [`fig05`] | Fig. 5 — fingerprint expiration CDF |
//! | [`fig06`] | Fig. 6 — idle-instance termination curve |
//! | [`fig07`] | Fig. 7 — base hosts across 45-minute launches |
//! | [`fig08`] | Fig. 8 — base hosts across accounts (step pattern) |
//! | [`fig09`] | Fig. 9 — helper hosts at 10-minute intervals |
//! | [`fig10`] | Fig. 10 — helper-host footprint across episodes |
//! | [`fig11`] | Fig. 11 — victim instance coverage (Strategy 2) |
//! | [`fig12`] | Fig. 12 — cluster-size estimation |
//! | [`sec42`] | §4.2 — measured-TSC-frequency scatter |
//! | [`sec43`] | §4.3 — verification cost: pairwise vs hierarchical |
//! | [`sec45`] | §4.5 — Gen 2 fingerprint accuracy |
//! | [`sec52`] | §5.2 — Strategy 1 (naive) coverage and attack cost |
//! | [`sec6`] | §6 — mitigations: fingerprint kill rate, overheads, scheduler defense |
//! | [`opt52`] | §5.2 — attack optimizations: multi-account, repeated attacks |
//! | [`other_factors`] | §5.1 "Other factors" — time-of-day, sizes, generations |
//! | [`calib`] | related work — `/lock`–`/check` threshold calibration (ROC sweep) |

pub mod calib;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod opt52;
pub mod other_factors;
pub mod sec42;
pub mod sec43;
pub mod sec45;
pub mod sec52;
pub mod sec6;

use std::collections::BTreeSet;

use eaao_cloudsim::ids::InstanceId;
use eaao_orchestrator::world::World;
use eaao_simcore::time::SimDuration;

use crate::fingerprint::{Gen1Fingerprint, Gen1Fingerprinter};
use crate::probe::probe_fleet;

/// Gap between successive instance probes in a measurement sweep.
pub(crate) const PROBE_GAP: SimDuration = SimDuration::from_millis(10);

/// Probes a fleet and returns its distinct Gen 1 fingerprints — the
/// *apparent hosts* of Section 5 ("when we rely on fingerprints to identify
/// hosts without verifying them ... we refer to these hosts as the apparent
/// hosts").
pub(crate) fn apparent_hosts(
    world: &mut World,
    instances: &[InstanceId],
    fingerprinter: &Gen1Fingerprinter,
) -> BTreeSet<Gen1Fingerprint> {
    probe_fleet(world, instances, PROBE_GAP)
        .iter()
        .filter_map(|r| fingerprinter.fingerprint(r))
        .collect()
}
