//! Figure 12 — cluster-size estimation (Section 5.2).
//!
//! Three accounts deploy eight services each; every service is primed with
//! four 800-instance launches. The cumulative number of unique apparent
//! hosts flattens out; its final value estimates the region's serving-pool
//! size (paper: 474 in us-east1, 1702 in us-central1, 199 in us-west1).

use eaao_orchestrator::world::World;
use serde::{Deserialize, Serialize};

use crate::experiment::fig04::region_config;
use crate::strategy::{ClusterExplorer, ExplorationReport};

/// Configuration for the Figure 12 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12Config {
    /// Regions to explore.
    pub regions: Vec<String>,
    /// The exploration campaign parameters.
    pub explorer: ClusterExplorer,
}

impl Default for Fig12Config {
    fn default() -> Self {
        Fig12Config {
            regions: vec![
                "us-east1".to_owned(),
                "us-central1".to_owned(),
                "us-west1".to_owned(),
            ],
            explorer: ClusterExplorer::default(),
        }
    }
}

impl Fig12Config {
    /// A scaled-down configuration for tests and benches.
    pub fn quick() -> Self {
        Fig12Config {
            regions: vec!["us-west1".to_owned()],
            explorer: ClusterExplorer {
                accounts: 2,
                services_per_account: 3,
                launches_per_service: 3,
                instances_per_launch: 400,
                ..ClusterExplorer::default()
            },
        }
    }

    /// Runs the exploration in every configured region.
    ///
    /// # Panics
    ///
    /// Panics if a launch fails.
    pub fn run(&self, seed: u64) -> Fig12Result {
        let per_region = self
            .regions
            .iter()
            .enumerate()
            .map(|(i, region)| {
                let mut world =
                    World::new(region_config(region), seed.wrapping_add(i as u64 * 101));
                let report = self.explorer.run(&mut world).expect("within caps");
                (region.clone(), report)
            })
            .collect();
        Fig12Result { per_region }
    }
}

/// The Figure 12 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig12Result {
    /// Exploration report per region.
    pub per_region: Vec<(String, ExplorationReport)>,
}

impl Fig12Result {
    /// The estimated pool size for a region, if it was explored.
    pub fn estimate_for(&self, region: &str) -> Option<usize> {
        self.per_region
            .iter()
            .find(|(name, _)| name == region)
            .map(|(_, r)| r.estimated_hosts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_track_region_sizes() {
        let result = Fig12Config::quick().run(81);
        let west = result.estimate_for("us-west1").expect("explored");
        // us-west1 is a ~205-host pool; exploration finds most of it.
        assert!((150..=215).contains(&west), "estimate {west}");
        assert!(result.estimate_for("us-east1").is_none());
    }

    #[test]
    fn growth_flattens_in_every_region() {
        let result = Fig12Config::quick().run(82);
        for (region, report) in &result.per_region {
            let ys = report.cumulative.ys();
            let n = ys.len();
            let early = ys[n / 2] - ys[0];
            let late = ys[n - 1] - ys[n / 2];
            assert!(late <= early, "{region}: early {early}, late {late}");
        }
    }
}
