//! Figure 7 — base hosts across launches (Experiment 2, Observation 3).
//!
//! Launch 800 instances of one service six times with 45-minute gaps (so
//! every launch starts from a cold service). Each launch occupies a similar
//! number of *apparent hosts* and the cumulative footprint barely grows:
//! the orchestrator prefers a per-account set of base hosts.

use std::collections::BTreeSet;

use eaao_cloudsim::service::ServiceSpec;
use eaao_orchestrator::world::World;
use eaao_simcore::series::Series;
use eaao_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::experiment::apparent_hosts;
use crate::experiment::fig04::region_config;
use crate::fingerprint::{Gen1Fingerprint, Gen1Fingerprinter};

/// Configuration for the Figure 7 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig07Config {
    /// Region to measure.
    pub region: String,
    /// Launches of the service.
    pub launches: usize,
    /// Instances per launch.
    pub instances: usize,
    /// Gap between launches (45 min ⇒ cold service each time).
    pub interval: SimDuration,
    /// Use a freshly built service (new image) for every launch — the
    /// paper's test of the image-locality hypothesis.
    pub fresh_service_per_launch: bool,
}

impl Default for Fig07Config {
    fn default() -> Self {
        Fig07Config {
            region: "us-east1".to_owned(),
            launches: 6,
            instances: 800,
            interval: SimDuration::from_mins(45),
            fresh_service_per_launch: false,
        }
    }
}

impl Fig07Config {
    /// A scaled-down configuration for tests and benches.
    pub fn quick() -> Self {
        Fig07Config {
            region: "us-west1".to_owned(),
            instances: 200,
            ..Fig07Config::default()
        }
    }

    /// Runs the experiment.
    ///
    /// # Panics
    ///
    /// Panics if a launch fails.
    pub fn run(&self, seed: u64) -> Fig07Result {
        let mut world = World::new(region_config(&self.region), seed);
        let account = world.create_account();
        let spec = ServiceSpec::default().with_max_instances(1_000);
        let fingerprinter = Gen1Fingerprinter::default();
        let mut service = world.deploy_service(account, spec);

        let mut per_launch = Series::new("apparent hosts");
        let mut cumulative = Series::new("cumulative apparent hosts");
        let mut seen: BTreeSet<Gen1Fingerprint> = BTreeSet::new();
        for launch_id in 1..=self.launches {
            if self.fresh_service_per_launch && launch_id > 1 {
                service = world.deploy_service(account, spec);
                world.rebuild_image(service);
            }
            let launch = world.launch(service, self.instances).expect("within caps");
            let hosts = apparent_hosts(&mut world, launch.instances(), &fingerprinter);
            per_launch.push(launch_id as f64, hosts.len() as f64);
            seen.extend(hosts);
            cumulative.push(launch_id as f64, seen.len() as f64);
            world.disconnect_all(service);
            world.advance(self.interval);
        }
        Fig07Result {
            region: self.region.clone(),
            per_launch,
            cumulative,
        }
    }
}

/// The Figure 7 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig07Result {
    /// Region measured.
    pub region: String,
    /// Apparent hosts per launch.
    pub per_launch: Series,
    /// Cumulative apparent hosts.
    pub cumulative: Series,
}

impl Fig07Result {
    /// Growth of the cumulative footprint beyond the first launch.
    ///
    /// # Panics
    ///
    /// Panics if the experiment ran zero launches.
    pub fn footprint_growth(&self) -> f64 {
        let ys = self.cumulative.ys();
        ys.last().expect("non-empty") - ys.first().expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_launches_reuse_base_hosts() {
        let result = Fig07Config::quick().run(31);
        let first = result.per_launch.ys()[0];
        // Growth is minimal relative to a single launch's footprint.
        assert!(
            result.footprint_growth() < first * 0.5,
            "cumulative grew by {} on a {}-host launch",
            result.footprint_growth(),
            first
        );
        // Each launch occupies a similar number of hosts.
        for &y in result.per_launch.ys().iter() {
            assert!(
                (y - first).abs() <= first * 0.2,
                "launch size {y} vs {first}"
            );
        }
    }

    #[test]
    fn fresh_services_show_the_same_pattern() {
        // The paper rebuilds images to rule out image-locality; the pattern
        // persists because base hosts are account-level.
        let mut config = Fig07Config::quick();
        config.fresh_service_per_launch = true;
        let result = config.run(32);
        let first = result.per_launch.ys()[0];
        assert!(
            result.footprint_growth() < first * 0.5,
            "fresh services grew the footprint by {}",
            result.footprint_growth()
        );
    }
}
