//! Figure 6 — idle-instance termination (Experiment 1, Observation 2).
//!
//! Launch 800 instances, disconnect, and count surviving idle instances
//! over time. Cloud Run preserves them for ~2 minutes, then terminates
//! gradually; practically all are gone ~12 minutes after disconnecting,
//! within the documented 15-minute cap.

use eaao_cloudsim::service::ServiceSpec;
use eaao_orchestrator::world::World;
use eaao_simcore::series::Series;
use eaao_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::experiment::fig04::region_config;

/// Configuration for the Figure 6 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig06Config {
    /// Region to measure.
    pub region: String,
    /// Instances to launch and abandon.
    pub instances: usize,
    /// Observation window after disconnecting.
    pub watch: SimDuration,
    /// Sampling period.
    pub sample_every: SimDuration,
}

impl Default for Fig06Config {
    fn default() -> Self {
        Fig06Config {
            region: "us-east1".to_owned(),
            instances: 800,
            watch: SimDuration::from_mins(16),
            sample_every: SimDuration::from_secs(15),
        }
    }
}

impl Fig06Config {
    /// A scaled-down configuration for tests and benches.
    pub fn quick() -> Self {
        Fig06Config {
            region: "us-west1".to_owned(),
            instances: 120,
            ..Fig06Config::default()
        }
    }

    /// Runs the experiment.
    ///
    /// # Panics
    ///
    /// Panics if the launch fails.
    pub fn run(&self, seed: u64) -> Fig06Result {
        let mut world = World::new(region_config(&self.region), seed);
        let account = world.create_account();
        let service =
            world.deploy_service(account, ServiceSpec::default().with_max_instances(1_000));
        world.launch(service, self.instances).expect("within caps");
        world.advance(SimDuration::from_secs(30));
        world.disconnect_all(service);

        let mut idle = Series::new("idle instances");
        let steps = self.watch.div_duration(self.sample_every);
        for step in 0..=steps {
            let minutes = (step * self.sample_every.as_nanos()) as f64 / 60e9;
            idle.push(minutes, world.alive_count(service) as f64);
            world.advance(self.sample_every);
        }
        Fig06Result {
            region: self.region.clone(),
            launched: self.instances,
            idle_over_time: idle,
        }
    }
}

/// The Figure 6 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig06Result {
    /// Region measured.
    pub region: String,
    /// Instances launched.
    pub launched: usize,
    /// Surviving idle instances vs minutes since disconnecting.
    pub idle_over_time: Series,
}

impl Fig06Result {
    /// Surviving instances at (the sample nearest to) `minutes`.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty.
    pub fn survivors_at(&self, minutes: f64) -> f64 {
        self.idle_over_time
            .points()
            .iter()
            .min_by(|a, b| {
                (a.0 - minutes)
                    .abs()
                    .partial_cmp(&(b.0 - minutes).abs())
                    .expect("finite")
            })
            .expect("non-empty series")
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_termination_shape() {
        let result = Fig06Config::quick().run(21);
        let n = result.launched as f64;
        // Preserved through (approximately) the first two minutes.
        assert_eq!(result.survivors_at(0.0), n);
        assert_eq!(result.survivors_at(1.5), n);
        assert!(result.survivors_at(2.0) >= 0.93 * n);
        // Gradual decline in between.
        let mid = result.survivors_at(7.0);
        assert!(mid > 0.0 && mid < n, "midpoint {mid}");
        // Practically all gone by ~12 minutes.
        assert_eq!(result.survivors_at(12.5), 0.0);
    }

    #[test]
    fn series_is_monotone_decreasing() {
        let result = Fig06Config::quick().run(22);
        let ys = result.idle_over_time.ys();
        assert!(ys.windows(2).all(|w| w[1] <= w[0]));
    }
}
