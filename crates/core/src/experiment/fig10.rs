//! Figure 10 — helper-host footprints across services (Observation 6).
//!
//! Six episodes, each priming a *different* service with six 800-instance
//! launches at 10-minute intervals. An episode's helper footprint is the
//! set of apparent hosts gained after its first launch. The cumulative
//! helper footprint grows with every episode — different services receive
//! different helper sets — but by less than each episode's own footprint:
//! the sets overlap.

use std::collections::BTreeSet;

use eaao_cloudsim::service::ServiceSpec;
use eaao_orchestrator::world::World;
use eaao_simcore::series::Series;
use eaao_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::experiment::apparent_hosts;
use crate::experiment::fig04::region_config;
use crate::fingerprint::{Gen1Fingerprint, Gen1Fingerprinter};

/// Configuration for the Figure 10 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Config {
    /// Region to measure.
    pub region: String,
    /// Episodes (distinct services).
    pub episodes: usize,
    /// Launches per episode.
    pub launches_per_episode: usize,
    /// Instances per launch.
    pub instances: usize,
    /// Gap between launches.
    pub interval: SimDuration,
    /// Cool-down between episodes (lets the previous service go cold).
    pub episode_gap: SimDuration,
}

impl Default for Fig10Config {
    fn default() -> Self {
        Fig10Config {
            region: "us-east1".to_owned(),
            episodes: 6,
            launches_per_episode: 6,
            instances: 800,
            interval: SimDuration::from_mins(10),
            episode_gap: SimDuration::from_mins(45),
        }
    }
}

impl Fig10Config {
    /// A scaled-down configuration for tests and benches.
    pub fn quick() -> Self {
        Fig10Config {
            region: "us-west1".to_owned(),
            episodes: 4,
            launches_per_episode: 4,
            instances: 300,
            ..Fig10Config::default()
        }
    }

    /// Runs the experiment.
    ///
    /// # Panics
    ///
    /// Panics if a launch fails.
    pub fn run(&self, seed: u64) -> Fig10Result {
        let mut world = World::new(region_config(&self.region), seed);
        let account = world.create_account();
        let spec = ServiceSpec::default().with_max_instances(1_000);
        let fingerprinter = Gen1Fingerprinter::default();

        let mut per_episode = Series::new("apparent helper hosts");
        let mut cumulative = Series::new("cumulative apparent helper hosts");
        let mut all_helpers: BTreeSet<Gen1Fingerprint> = BTreeSet::new();
        for episode in 1..=self.episodes {
            let service = world.deploy_service(account, spec);
            let mut first_footprint: BTreeSet<Gen1Fingerprint> = BTreeSet::new();
            let mut final_footprint: BTreeSet<Gen1Fingerprint> = BTreeSet::new();
            for launch_id in 1..=self.launches_per_episode {
                let launch = world.launch(service, self.instances).expect("within caps");
                let hosts = apparent_hosts(&mut world, launch.instances(), &fingerprinter);
                if launch_id == 1 {
                    first_footprint = hosts.clone();
                }
                final_footprint.extend(hosts);
                world.disconnect_all(service);
                world.advance(self.interval);
            }
            // Helper footprint: hosts beyond the episode's first (cold)
            // launch.
            let helpers: BTreeSet<Gen1Fingerprint> = final_footprint
                .difference(&first_footprint)
                .cloned()
                .collect();
            per_episode.push(episode as f64, helpers.len() as f64);
            all_helpers.extend(helpers);
            cumulative.push(episode as f64, all_helpers.len() as f64);
            world.advance(self.episode_gap);
        }
        Fig10Result {
            region: self.region.clone(),
            per_episode,
            cumulative,
        }
    }
}

/// The Figure 10 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Result {
    /// Region measured.
    pub region: String,
    /// Apparent helper hosts per episode.
    pub per_episode: Series,
    /// Cumulative apparent helper-host footprint.
    pub cumulative: Series,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_episode_expands_the_cumulative_footprint() {
        let result = Fig10Config::quick().run(61);
        let ys = result.cumulative.ys();
        assert!(
            ys.windows(2).all(|w| w[1] > w[0]),
            "cumulative helper footprint must keep growing: {ys:?}"
        );
    }

    #[test]
    fn helper_sets_overlap_across_services() {
        let result = Fig10Config::quick().run(62);
        let per = result.per_episode.ys();
        let cum = result.cumulative.ys();
        // After the first episode, an episode's contribution to the
        // cumulative set is smaller than its own footprint ⇒ overlap.
        let mut overlapped = false;
        for i in 1..per.len() {
            let contribution = cum[i] - cum[i - 1];
            if contribution < per[i] {
                overlapped = true;
            }
        }
        assert!(
            overlapped,
            "no overlap between helper sets: {per:?} {cum:?}"
        );
    }
}
