//! Figure 8 — base hosts across accounts (Experiment 3, Observation 4).
//!
//! Six launches of 800 instances, with launches 1–2 owned by Account 1,
//! 3–4 by Account 2, and 5–6 by Account 3. The cumulative apparent-host
//! count forms a step pattern: it jumps when a *new account* launches and
//! barely moves when the same account launches again — different accounts
//! use different base hosts.

use std::collections::BTreeSet;

use eaao_cloudsim::ids::AccountId;
use eaao_cloudsim::service::ServiceSpec;
use eaao_orchestrator::world::World;
use eaao_simcore::series::Series;
use eaao_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::experiment::apparent_hosts;
use crate::experiment::fig04::region_config;
use crate::fingerprint::{Gen1Fingerprint, Gen1Fingerprinter};

/// Configuration for the Figure 8 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig08Config {
    /// Region to measure.
    pub region: String,
    /// Accounts to alternate between.
    pub accounts: usize,
    /// Consecutive launches per account.
    pub launches_per_account: usize,
    /// Instances per launch.
    pub instances: usize,
    /// Gap between launches (cold each time).
    pub interval: SimDuration,
}

impl Default for Fig08Config {
    fn default() -> Self {
        Fig08Config {
            region: "us-east1".to_owned(),
            accounts: 3,
            launches_per_account: 2,
            instances: 800,
            interval: SimDuration::from_mins(45),
        }
    }
}

impl Fig08Config {
    /// A scaled-down configuration for tests and benches.
    pub fn quick() -> Self {
        Fig08Config {
            instances: 200,
            ..Fig08Config::default()
        }
    }

    /// Runs the experiment. Account ids are re-drawn from `seed`, so
    /// repeated runs sample different cell assignments.
    ///
    /// # Panics
    ///
    /// Panics if a launch fails.
    pub fn run(&self, seed: u64) -> Fig08Result {
        let mut world = World::new(region_config(&self.region), seed);
        let accounts: Vec<AccountId> = (0..self.accounts).map(|_| world.create_account()).collect();
        let spec = ServiceSpec::default().with_max_instances(1_000);
        let fingerprinter = Gen1Fingerprinter::default();

        let mut per_launch = Series::new("apparent hosts");
        let mut cumulative = Series::new("cumulative apparent hosts");
        let mut owners = Vec::new();
        let mut seen: BTreeSet<Gen1Fingerprint> = BTreeSet::new();
        let mut launch_id = 0;
        for &account in &accounts {
            let service = world.deploy_service(account, spec);
            for _ in 0..self.launches_per_account {
                launch_id += 1;
                let launch = world.launch(service, self.instances).expect("within caps");
                let hosts = apparent_hosts(&mut world, launch.instances(), &fingerprinter);
                per_launch.push(launch_id as f64, hosts.len() as f64);
                seen.extend(hosts);
                cumulative.push(launch_id as f64, seen.len() as f64);
                owners.push(account);
                world.disconnect_all(service);
                world.advance(self.interval);
            }
        }
        Fig08Result {
            region: self.region.clone(),
            owners,
            per_launch,
            cumulative,
        }
    }
}

/// The Figure 8 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig08Result {
    /// Region measured.
    pub region: String,
    /// The account that issued each launch.
    pub owners: Vec<AccountId>,
    /// Apparent hosts per launch.
    pub per_launch: Series,
    /// Cumulative apparent hosts.
    pub cumulative: Series,
}

impl Fig08Result {
    /// Cumulative growth contributed by each launch (first launch counts
    /// from zero).
    pub fn steps(&self) -> Vec<f64> {
        let ys = self.cumulative.ys();
        let mut steps = Vec::with_capacity(ys.len());
        let mut prev = 0.0;
        for &y in &ys {
            steps.push(y - prev);
            prev = y;
        }
        steps
    }

    /// Mean cumulative growth on launches where the *account changed* vs
    /// launches repeating the previous account.
    ///
    /// # Panics
    ///
    /// Panics if `owners` is shorter than the cumulative series — the two
    /// are parallel per-launch vectors, and a hand-built result that
    /// violates that has no meaningful contrast to report.
    pub fn step_contrast(&self) -> (f64, f64) {
        let steps = self.steps();
        let mut new_acct = Vec::new();
        let mut same_acct = Vec::new();
        for (i, &step) in steps.iter().enumerate() {
            if i == 0 || self.owners[i] != self.owners[i - 1] {
                new_acct.push(step);
            } else {
                same_acct.push(step);
            }
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        (mean(&new_acct), mean(&same_acct))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accounts_create_steps() {
        // Average over a few seeds: individual seeds can land two accounts
        // in the same scheduling cell (the paper's own bimodality).
        let mut contrasts = Vec::new();
        for seed in 41..44 {
            let result = Fig08Config::quick().run(seed);
            assert_eq!(result.owners.len(), 6);
            contrasts.push(result.step_contrast());
        }
        let new_mean: f64 = contrasts.iter().map(|c| c.0).sum::<f64>() / contrasts.len() as f64;
        let same_mean: f64 = contrasts.iter().map(|c| c.1).sum::<f64>() / contrasts.len() as f64;
        assert!(
            new_mean > 5.0 * same_mean.max(1.0),
            "step pattern absent: new {new_mean:.1} vs same {same_mean:.1}"
        );
    }

    #[test]
    fn steps_sum_to_cumulative_total() {
        let result = Fig08Config::quick().run(45);
        let total: f64 = result.steps().iter().sum();
        assert_eq!(total, *result.cumulative.ys().last().unwrap());
    }
}
