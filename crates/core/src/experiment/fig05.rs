//! Figure 5 — CDF of the estimated fingerprint expiration time
//! (Section 4.4.2).
//!
//! Keep ~50 long-running instances connected for a week, fingerprint their
//! hosts hourly, and fit each host's derived boot time against measurement
//! time. Instances that the platform churns onto new hosts end their
//! history (conservatively treated as a different host); histories under
//! 24 h are filtered out. The fit is extrapolated to the next rounding
//! boundary: the fingerprint's expiration time.

use eaao_cloudsim::ids::{InstanceId, ServiceId};
use eaao_cloudsim::service::ServiceSpec;
use eaao_orchestrator::world::World;
use eaao_simcore::stats::Ecdf;
use eaao_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::experiment::fig04::region_config;
use crate::expiry::{DriftStudy, FingerprintHistory};
use crate::fingerprint::Gen1Fingerprinter;
use crate::probe::probe_instance;

/// Configuration for the Figure 5 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig05Config {
    /// Region to measure.
    pub region: String,
    /// Accounts to spread the tracked instances over. One account's
    /// instances concentrate on a handful of base hosts; several accounts
    /// widen the host sample the CDF is built from.
    pub accounts: usize,
    /// Long-running instances to track (split across the accounts).
    pub instances: usize,
    /// Campaign length.
    pub duration: SimDuration,
    /// Sampling period.
    pub sample_every: SimDuration,
    /// Minimum history span to keep (the paper: 24 h).
    pub min_span: SimDuration,
    /// Rounding precision whose boundary defines expiration.
    pub p_boot: SimDuration,
}

impl Default for Fig05Config {
    fn default() -> Self {
        Fig05Config {
            region: "us-east1".to_owned(),
            accounts: 5,
            instances: 50,
            duration: SimDuration::from_days(7),
            sample_every: SimDuration::from_hours(1),
            min_span: SimDuration::from_hours(24),
            p_boot: SimDuration::from_secs(1),
        }
    }
}

impl Fig05Config {
    /// A scaled-down configuration for tests and benches.
    pub fn quick() -> Self {
        Fig05Config {
            region: "us-west1".to_owned(),
            accounts: 4,
            instances: 40,
            duration: SimDuration::from_days(3),
            sample_every: SimDuration::from_hours(2),
            min_span: SimDuration::from_hours(24),
            p_boot: SimDuration::from_secs(1),
        }
    }

    /// Runs the experiment.
    ///
    /// # Panics
    ///
    /// Panics if the launch fails.
    pub fn run(&self, seed: u64) -> Fig05Result {
        let mut world = World::new(region_config(&self.region), seed);
        world.enable_instance_churn(true);
        let fingerprinter = Gen1Fingerprinter::new(self.p_boot);

        // One tracked "connection slot" per requested instance, spread
        // across several accounts (and thus base-host sets). Expiration
        // times cluster per host, so each account launches a full fleet
        // and one instance per distinct host is tracked. When the platform
        // churns an instance, its slot reconnects to a fresh one and
        // starts a new history.
        let mut slots: Vec<(ServiceId, InstanceId, FingerprintHistory)> = Vec::new();
        let mut seen_hosts = std::collections::BTreeSet::new();
        for _ in 0..self.accounts.max(1) {
            let account = world.create_account();
            let service =
                world.deploy_service(account, ServiceSpec::default().with_max_instances(1_000));
            let launch = world.launch(service, self.instances).expect("within caps");
            for &id in launch.instances() {
                if slots.len() < self.instances && seen_hosts.insert(world.host_of(id)) {
                    slots.push((service, id, FingerprintHistory::new()));
                }
            }
        }
        let mut finished: Vec<FingerprintHistory> = Vec::new();

        let steps = self.duration.div_duration(self.sample_every);
        for _ in 0..steps {
            for (service, id, history) in &mut slots {
                match probe_instance(&mut world, *id) {
                    Ok(reading) => {
                        if let Some(boot) = fingerprinter.raw_boot_time(&reading) {
                            history.record(world.now(), boot);
                        }
                    }
                    Err(_) => {
                        // Churned: close the history, reconnect.
                        finished.push(std::mem::take(history));
                        if let Ok(relaunch) = world.launch(*service, 1) {
                            *id = relaunch.instances()[0];
                        }
                    }
                }
            }
            world.advance(self.sample_every);
        }
        finished.extend(slots.into_iter().map(|(_, _, h)| h));

        let study = DriftStudy::from_histories(finished, self.min_span);
        let min_abs_r = study.min_abs_r().unwrap_or(0.0);
        let expiration_days = study.expiration_days(self.p_boot);
        let histories_kept = study.histories.len();
        let filtered_out = study.filtered_out;
        Fig05Result {
            region: self.region.clone(),
            histories_kept,
            filtered_out,
            min_abs_r,
            expiration_days,
        }
    }
}

/// The Figure 5 result for one region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig05Result {
    /// Region measured.
    pub region: String,
    /// Histories spanning at least the filter (paper: 66/67/79).
    pub histories_kept: usize,
    /// Histories discarded as too short.
    pub filtered_out: usize,
    /// Minimum |r| across the linear fits (paper: 0.9997).
    pub min_abs_r: f64,
    /// Estimated expiration time per history, in days.
    pub expiration_days: Vec<f64>,
}

impl Fig05Result {
    /// The empirical CDF of expiration times. Histories whose fingerprint
    /// never expires are excluded (they would sit at +∞).
    pub fn cdf(&self) -> Ecdf {
        Ecdf::new(self.expiration_days.clone())
    }

    /// Fraction of *kept histories* whose fingerprint expires within
    /// `days`.
    pub fn fraction_expired_by(&self, days: f64) -> f64 {
        if self.histories_kept == 0 {
            return 0.0;
        }
        let expired = self.expiration_days.iter().filter(|&&d| d <= days).count();
        expired as f64 / self.histories_kept as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_is_linear_and_expirations_span_days() {
        // Pool several seeds: a quick run only touches a handful of hosts,
        // and expiration times cluster per host.
        let mut kept = 0;
        let mut expired_first_day = 0.0;
        for seed in [11, 12, 13, 14, 15] {
            let result = Fig05Config::quick().run(seed);
            assert!(
                result.min_abs_r > 0.99,
                "drift not linear: min |r| = {}",
                result.min_abs_r
            );
            expired_first_day += result.fraction_expired_by(1.0) * result.histories_kept as f64;
            kept += result.histories_kept;
        }
        assert!(kept > 25, "kept {kept}");
        // Most fingerprints last beyond a single day.
        let early = expired_first_day / kept as f64;
        assert!(early < 0.4, "{:.0}% expired within a day", early * 100.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let result = Fig05Config::quick().run(12);
        let cdf = result.cdf();
        if !cdf.is_empty() {
            let f2 = cdf.fraction_at_or_below(2.0);
            let f7 = cdf.fraction_at_or_below(7.0);
            assert!(f7 >= f2);
        }
        assert!(result.fraction_expired_by(0.0) <= result.fraction_expired_by(100.0));
    }
}
