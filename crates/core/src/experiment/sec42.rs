//! Section 4.2 — the measured-TSC-frequency experiment.
//!
//! Measuring the actual TSC frequency (Δtsc/ΔT_w with ΔT_w ≈ 100 ms) works
//! on most hosts: the standard deviation after 10 repetitions stays below
//! ~100 Hz. But on ~10% of hosts (58 of the 586 the paper evaluated) it
//! scatters by 10 kHz to a few MHz, so two co-located instances can derive
//! incompatible boot times — which is why the paper adopts the *reported*
//! frequency instead, accepting drift (Figure 5) as the price.

use eaao_cloudsim::ids::InstanceId;
use eaao_cloudsim::service::ServiceSpec;
use eaao_orchestrator::world::World;
use eaao_simcore::time::SimDuration;
use eaao_tsc::boot::TscSample;
use eaao_tsc::measure::{measure_frequency, TimeSampler, PROBLEMATIC_STD_DEV_HZ};
use serde::{Deserialize, Serialize};

use crate::experiment::fig04::region_config;

/// Adapts a live instance to the [`TimeSampler`] interface so the
/// frequency-measurement procedure can run "inside" it.
#[derive(Debug)]
pub struct GuestSampler<'w> {
    world: &'w mut World,
    instance: InstanceId,
}

impl<'w> GuestSampler<'w> {
    /// Wraps a live instance.
    pub fn new(world: &'w mut World, instance: InstanceId) -> Self {
        GuestSampler { world, instance }
    }
}

impl TimeSampler for GuestSampler<'_> {
    fn sample(&mut self) -> TscSample {
        self.world
            .with_guest(self.instance, |sandbox, now| {
                use eaao_cloudsim::sandbox::GuestEnv;
                sandbox.sample(now)
            })
            .expect("instance alive during measurement")
    }

    fn wait(&mut self, d: SimDuration) {
        self.world.advance(d);
    }
}

/// Configuration for the Section 4.2 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sec42Config {
    /// Region to measure.
    pub region: String,
    /// Accounts to launch from (different accounts reach different base
    /// hosts, widening the evaluated host population — the paper evaluated
    /// 586 hosts).
    pub accounts: usize,
    /// Instances launched per account.
    pub instances_per_account: usize,
    /// Wait between the two reads of one repetition (paper: ~100 ms).
    pub wait: SimDuration,
    /// Repetitions per host (paper: 10, with 100 retried on problematic
    /// hosts).
    pub repetitions: usize,
}

impl Default for Sec42Config {
    fn default() -> Self {
        Sec42Config {
            region: "us-east1".to_owned(),
            accounts: 6,
            instances_per_account: 800,
            wait: SimDuration::from_millis(100),
            repetitions: 10,
        }
    }
}

impl Sec42Config {
    /// A scaled-down configuration for tests and benches.
    pub fn quick() -> Self {
        Sec42Config {
            accounts: 4,
            instances_per_account: 300,
            ..Sec42Config::default()
        }
    }

    /// Runs the experiment: one frequency measurement per distinct host.
    ///
    /// # Panics
    ///
    /// Panics if a launch fails.
    pub fn run(&self, seed: u64) -> Sec42Result {
        let mut world = World::new(region_config(&self.region), seed);
        // One representative instance per host (ground truth used only to
        // avoid measuring a host twice — the paper counts per host too).
        let mut seen_hosts = std::collections::BTreeSet::new();
        let mut reps = Vec::new();
        for _ in 0..self.accounts {
            let account = world.create_account();
            let service =
                world.deploy_service(account, ServiceSpec::default().with_max_instances(1_000));
            let launch = world
                .launch(service, self.instances_per_account)
                .expect("within caps");
            for &id in launch.instances() {
                if seen_hosts.insert(world.host_of(id)) {
                    reps.push(id);
                }
            }
        }

        let mut std_devs_hz = Vec::with_capacity(reps.len());
        for id in reps {
            let mut sampler = GuestSampler::new(&mut world, id);
            let m = measure_frequency(&mut sampler, self.wait, self.repetitions);
            std_devs_hz.push(m.std_dev_hz());
        }
        Sec42Result {
            region: self.region.clone(),
            std_devs_hz,
        }
    }
}

/// The Section 4.2 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sec42Result {
    /// Region measured.
    pub region: String,
    /// Measured-frequency standard deviation per evaluated host, in Hz.
    pub std_devs_hz: Vec<f64>,
}

impl Sec42Result {
    /// Hosts evaluated.
    pub fn hosts(&self) -> usize {
        self.std_devs_hz.len()
    }

    /// Hosts whose scatter exceeds the 10 kHz problematic threshold.
    pub fn problematic_hosts(&self) -> usize {
        self.std_devs_hz
            .iter()
            .filter(|&&s| s >= PROBLEMATIC_STD_DEV_HZ)
            .count()
    }

    /// The problematic fraction (paper: 58/586 ≈ 10%).
    pub fn problematic_fraction(&self) -> f64 {
        if self.std_devs_hz.is_empty() {
            0.0
        } else {
            self.problematic_hosts() as f64 / self.hosts() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn about_ten_percent_of_hosts_are_problematic() {
        let result = Sec42Config::quick().run(91);
        assert!(
            result.hosts() > 20,
            "only {} hosts measured",
            result.hosts()
        );
        let fraction = result.problematic_fraction();
        assert!(
            (0.02..=0.25).contains(&fraction),
            "problematic fraction {fraction}"
        );
    }

    #[test]
    fn problematic_hosts_scatter_in_the_papers_range() {
        let result = Sec42Config::quick().run(92);
        for &s in &result.std_devs_hz {
            if s >= PROBLEMATIC_STD_DEV_HZ {
                assert!(s < 10e6, "scatter {s} beyond a few MHz");
            }
        }
    }

    #[test]
    fn normal_hosts_stay_tight() {
        let result = Sec42Config::quick().run(93);
        let tight = result.std_devs_hz.iter().filter(|&&s| s < 1_000.0).count();
        assert!(
            tight as f64 / result.hosts() as f64 > 0.7,
            "only {tight}/{} hosts below 1 kHz",
            result.hosts()
        );
    }
}
