//! Section 5.1, "Other factors" — the four side observations.
//!
//! 1. Placement behaves the same on different dates and times of day.
//! 2. Instances with different resource specifications share the same
//!    base hosts.
//! 3. All nine US data centers behave alike except us-central1 (modeled by
//!    the dynamic-placement preset; checked elsewhere).
//! 4. Gen 2 placement behaves like Gen 1, and Gen 2 instances share hosts
//!    with Gen 1 instances.

use std::collections::BTreeSet;

use eaao_cloudsim::ids::HostId;
use eaao_cloudsim::service::{ContainerSize, Generation, ServiceSpec};
use eaao_orchestrator::world::World;
use eaao_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::experiment::fig04::region_config;

/// Configuration for the side-observation checks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OtherFactorsConfig {
    /// Region to measure.
    pub region: String,
    /// Instances per launch.
    pub instances: usize,
}

impl Default for OtherFactorsConfig {
    fn default() -> Self {
        OtherFactorsConfig {
            region: "us-east1".to_owned(),
            instances: 800,
        }
    }
}

impl OtherFactorsConfig {
    /// A scaled-down configuration for tests and benches.
    pub fn quick() -> Self {
        OtherFactorsConfig {
            region: "us-west1".to_owned(),
            instances: 200,
        }
    }

    /// Runs all the checks.
    ///
    /// # Panics
    ///
    /// Panics if a launch fails.
    pub fn run(&self, seed: u64) -> OtherFactorsResult {
        let mut world = World::new(region_config(&self.region), seed);
        let account = world.create_account();

        let footprint = |world: &mut World, spec: ServiceSpec, n: usize| -> BTreeSet<HostId> {
            let service = world.deploy_service(account, spec);
            let launch = world.launch(service, n).expect("within caps");
            let hosts = launch
                .instances()
                .iter()
                .map(|&i| world.host_of(i))
                .collect();
            world.kill_all(service);
            // Let the service go cold so the next launch is unaffected.
            world.advance(SimDuration::from_mins(45));
            hosts
        };
        let overlap = |a: &BTreeSet<HostId>, b: &BTreeSet<HostId>| -> f64 {
            let inter = a.intersection(b).count() as f64;
            inter / a.len().min(b.len()).max(1) as f64
        };

        let base_spec = ServiceSpec::default().with_max_instances(1_000);

        // (1) Time of day: same account, launches half a simulated day
        // apart.
        let morning = footprint(&mut world, base_spec, self.instances);
        world.advance(SimDuration::from_hours(12));
        let evening = footprint(&mut world, base_spec, self.instances);
        let time_of_day_overlap = overlap(&morning, &evening);

        // (2) Resource specifications: Pico vs Large services of the same
        // account.
        let pico = footprint(
            &mut world,
            base_spec.with_size(ContainerSize::Pico),
            self.instances,
        );
        let large = footprint(
            &mut world,
            base_spec.with_size(ContainerSize::Large),
            self.instances,
        );
        let size_overlap = overlap(&pico, &large);

        // (4) Generations: Gen 2 services land on the same base hosts, so
        // Gen 2 instances share hosts with Gen 1 instances.
        let gen1 = footprint(&mut world, base_spec, self.instances);
        let gen2 = footprint(
            &mut world,
            base_spec.with_generation(Generation::Gen2),
            self.instances,
        );
        let generation_overlap = overlap(&gen1, &gen2);

        // Direct co-residency check: run both generations concurrently.
        let gen1_svc = world.deploy_service(account, base_spec);
        let gen2_svc = world.deploy_service(account, base_spec.with_generation(Generation::Gen2));
        let gen1_live = world
            .launch(gen1_svc, self.instances / 2)
            .expect("fits")
            .instances()
            .to_vec();
        let gen2_live = world
            .launch(gen2_svc, self.instances / 2)
            .expect("fits")
            .instances()
            .to_vec();
        let gen1_hosts: BTreeSet<HostId> = gen1_live.iter().map(|&i| world.host_of(i)).collect();
        let mixed_hosts = gen2_live
            .iter()
            .filter(|&&i| gen1_hosts.contains(&world.host_of(i)))
            .count();

        OtherFactorsResult {
            time_of_day_overlap,
            size_overlap,
            generation_overlap,
            gen2_instances_on_gen1_hosts: mixed_hosts,
            gen2_instances: gen2_live.len(),
        }
    }
}

/// The side-observation results (all overlaps are fractions of the smaller
/// footprint).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OtherFactorsResult {
    /// Footprint overlap of launches 12 simulated hours apart.
    pub time_of_day_overlap: f64,
    /// Footprint overlap between Pico and Large services.
    pub size_overlap: f64,
    /// Footprint overlap between Gen 1 and Gen 2 services.
    pub generation_overlap: f64,
    /// Gen 2 instances that landed on hosts also carrying Gen 1 instances
    /// in a concurrent launch.
    pub gen2_instances_on_gen1_hosts: usize,
    /// Gen 2 instances launched in the concurrent check.
    pub gen2_instances: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_factors_match_the_paper() {
        let result = OtherFactorsConfig::quick().run(221);
        assert!(
            result.time_of_day_overlap > 0.85,
            "time-of-day overlap {}",
            result.time_of_day_overlap
        );
        assert!(
            result.size_overlap > 0.85,
            "size overlap {}",
            result.size_overlap
        );
        assert!(
            result.generation_overlap > 0.85,
            "generation overlap {}",
            result.generation_overlap
        );
        // Concurrent Gen 1 / Gen 2 fleets mingle on hosts.
        assert!(
            result.gen2_instances_on_gen1_hosts * 2 > result.gen2_instances,
            "only {} of {} Gen 2 instances share hosts with Gen 1",
            result.gen2_instances_on_gen1_hosts,
            result.gen2_instances
        );
    }
}
