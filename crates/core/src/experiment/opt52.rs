//! Section 5.2, "Potential attack optimizations" — evaluated.
//!
//! Two optimizations the paper sketches, measured end to end:
//!
//! * **More accounts**: attacking from several (established) accounts
//!   starts exploration from several base-host cells, widening the
//!   footprint; brand-new accounts hit the 10-instance quota wall.
//! * **Repeated attacks**: recording the victim's host fingerprints during
//!   the first attack lets subsequent attacks focus the extraction fleet
//!   on matching hosts only, cutting the recurring cost.

use eaao_cloudsim::service::ServiceSpec;
use eaao_orchestrator::world::World;
use eaao_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::experiment::fig04::region_config;
use crate::strategy::{MultiAccountLaunch, OptimizedLaunch, RepeatedAttack};

/// Configuration for the optimization evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Opt52Config {
    /// Region to measure.
    pub region: String,
    /// Victim instances.
    pub victim_count: usize,
    /// The per-account priming campaign.
    pub campaign: OptimizedLaunch,
    /// Extraction-phase length for the repeated-attack comparison.
    pub extraction_hold: SimDuration,
}

impl Default for Opt52Config {
    fn default() -> Self {
        Opt52Config {
            region: "us-central1".to_owned(),
            victim_count: 100,
            campaign: OptimizedLaunch::default(),
            extraction_hold: SimDuration::from_hours(1),
        }
    }
}

impl Opt52Config {
    /// A scaled-down configuration for tests and benches.
    pub fn quick() -> Self {
        Opt52Config {
            region: "us-west1".to_owned(),
            victim_count: 40,
            campaign: OptimizedLaunch {
                services: 2,
                launches_per_service: 3,
                instances_per_launch: 300,
                ..OptimizedLaunch::default()
            },
            extraction_hold: SimDuration::from_mins(30),
        }
    }

    /// Runs the evaluation.
    ///
    /// # Panics
    ///
    /// Panics if a launch fails unexpectedly.
    pub fn run(&self, seed: u64) -> Opt52Result {
        // --- multi-account footprint ---
        let footprint = |accounts: usize, seed: u64| {
            let mut world = World::new(region_config(&self.region), seed);
            MultiAccountLaunch {
                accounts,
                established: true,
                per_account: self.campaign,
            }
            .run(&mut world)
            .expect("established accounts fit")
            .hosts_occupied
        };
        let hosts_one_account = footprint(1, seed);
        let hosts_three_accounts = footprint(3, seed);

        // New accounts cannot run the campaign at all.
        let new_accounts_blocked = {
            let mut world = World::new(region_config(&self.region), seed.wrapping_add(1));
            MultiAccountLaunch {
                accounts: 2,
                established: false,
                per_account: self.campaign,
            }
            .run(&mut world)
            .is_err()
        };

        // --- repeated attacks ---
        let mut world = World::new(region_config(&self.region), seed.wrapping_add(2));
        let attacker = world.create_account();
        let victim = world.create_account();
        let victim_service = world.deploy_service(victim, ServiceSpec::default());
        let victims = world
            .launch(victim_service, self.victim_count)
            .expect("victim fits")
            .instances()
            .to_vec();
        let attack = RepeatedAttack {
            campaign: self.campaign,
            extraction_hold: self.extraction_hold,
        };
        let (first, record) = attack
            .first_attack(&mut world, attacker, &victims)
            .expect("attacker fits");
        world.advance(SimDuration::from_mins(45));
        let focused = attack
            .focused_attack(&mut world, attacker, &record, &victims)
            .expect("attacker fits");

        Opt52Result {
            region: self.region.clone(),
            hosts_one_account,
            hosts_three_accounts,
            new_accounts_blocked,
            recorded_victim_hosts: record.len(),
            first_coverage: first.coverage,
            first_cost_usd: first.cost_usd,
            first_fleet: first.retained_instances.len(),
            focused_coverage: focused.coverage,
            focused_cost_usd: focused.cost_usd,
            focused_fleet: focused.retained_instances.len(),
        }
    }
}

/// The optimization-evaluation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Opt52Result {
    /// Region measured.
    pub region: String,
    /// Hosts occupied attacking from one account.
    pub hosts_one_account: usize,
    /// Hosts occupied attacking from three accounts.
    pub hosts_three_accounts: usize,
    /// Whether fresh (quota-capped) accounts were rejected.
    pub new_accounts_blocked: bool,
    /// Victim hosts recorded during the first attack.
    pub recorded_victim_hosts: usize,
    /// First attack: victim coverage.
    pub first_coverage: f64,
    /// First attack: cost (priming + full-fleet extraction), USD.
    pub first_cost_usd: f64,
    /// First attack: extraction fleet size.
    pub first_fleet: usize,
    /// Focused repeat attack: victim coverage.
    pub focused_coverage: f64,
    /// Focused repeat attack: cost, USD.
    pub focused_cost_usd: f64,
    /// Focused repeat attack: extraction fleet size.
    pub focused_fleet: usize,
}

impl Opt52Result {
    /// Cost saving of the focused repeat attack versus the first.
    pub fn cost_saving(&self) -> f64 {
        1.0 - self.focused_cost_usd / self.first_cost_usd.max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimizations_pay_off() {
        let result = Opt52Config::quick().run(211);
        assert!(
            result.hosts_three_accounts >= result.hosts_one_account,
            "3 accounts {} < 1 account {}",
            result.hosts_three_accounts,
            result.hosts_one_account
        );
        assert!(result.new_accounts_blocked, "quota wall missing");
        assert!(result.recorded_victim_hosts > 0);
        assert!(
            result.focused_fleet < result.first_fleet / 2,
            "focused fleet {} vs first {}",
            result.focused_fleet,
            result.first_fleet
        );
        assert!(
            result.cost_saving() > 0.3,
            "saving {}",
            result.cost_saving()
        );
        assert!(
            result.focused_coverage > result.first_coverage * 0.7,
            "focused {} vs first {}",
            result.focused_coverage,
            result.first_coverage
        );
    }
}
