//! Figure 4 — Gen 1 fingerprint accuracy vs the rounding precision
//! `p_boot` (Section 4.4.1).
//!
//! Launch 800 concurrent instances, read each one's fingerprint inputs,
//! establish the co-location ground truth with the scalable covert-channel
//! methodology, and score the fingerprint clustering at every `p_boot` from
//! 0.1 ms to 1000 s. The paper finds a sweet spot between 100 ms and 1 s
//! with FMI ≈ 0.9999.

use eaao_cloudsim::service::ServiceSpec;
use eaao_orchestrator::config::RegionConfig;
use eaao_orchestrator::world::World;
use eaao_simcore::stats::Summary;
use eaao_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::experiment::PROBE_GAP;
use crate::fingerprint::{group_by_fingerprint, Gen1Fingerprinter};
use crate::metrics::PairConfusion;
use crate::probe::probe_fleet;
use crate::verify::hierarchical::HierarchicalVerifier;

/// How the co-location ground truth is established.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GroundTruth {
    /// The paper's workflow: the scalable covert-channel verification of
    /// Section 4.3 (costs simulated time and money).
    #[default]
    CovertChannel,
    /// The simulator's oracle (free; for fast benches).
    Oracle,
}

/// Configuration for the Figure 4 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig04Config {
    /// Regions to measure (averaged, as in the paper).
    pub regions: Vec<String>,
    /// Concurrent instances per run.
    pub instances: usize,
    /// Repetitions per region.
    pub repeats: usize,
    /// The `p_boot` sweep, in seconds.
    pub p_boots_s: Vec<f64>,
    /// Ground-truth source.
    pub ground_truth: GroundTruth,
}

impl Default for Fig04Config {
    fn default() -> Self {
        Fig04Config {
            regions: vec![
                "us-east1".to_owned(),
                "us-central1".to_owned(),
                "us-west1".to_owned(),
            ],
            instances: 800,
            repeats: 5,
            // Half-decade steps across the paper's 1e-4..1e3 s x-axis.
            p_boots_s: (-8..=6).map(|k| 10f64.powf(k as f64 / 2.0)).collect(),
            ground_truth: GroundTruth::CovertChannel,
        }
    }
}

impl Fig04Config {
    /// A scaled-down configuration for tests and benches.
    pub fn quick() -> Self {
        Fig04Config {
            regions: vec!["us-east1".to_owned()],
            instances: 400,
            repeats: 1,
            p_boots_s: vec![1e-4, 1e-2, 1.0, 1e2, 1e3],
            ground_truth: GroundTruth::Oracle,
        }
    }

    /// Runs the experiment.
    ///
    /// # Panics
    ///
    /// Panics if a region name is unknown or a launch fails (the
    /// configuration exceeds the platform caps).
    pub fn run(&self, seed: u64) -> Fig04Result {
        let mut per_p: Vec<Vec<[f64; 3]>> = vec![Vec::new(); self.p_boots_s.len()];
        let mut perfect_runs = 0;
        let mut total_runs = 0;
        for (r, region_name) in self.regions.iter().enumerate() {
            for repeat in 0..self.repeats {
                let run_seed = seed
                    .wrapping_add(r as u64)
                    .wrapping_mul(1_000_003)
                    .wrapping_add(repeat as u64);
                let accuracies = self.run_once(region_name, run_seed);
                total_runs += 1;
                // "Perfect" at the paper's default precision (1 s).
                if let Some(idx) = self.p_boots_s.iter().position(|&p| (p - 1.0).abs() < 1e-9) {
                    if accuracies[idx][0] == 1.0 {
                        perfect_runs += 1;
                    }
                }
                for (idx, acc) in accuracies.into_iter().enumerate() {
                    per_p[idx].push(acc);
                }
            }
        }
        let points = self
            .p_boots_s
            .iter()
            .zip(per_p)
            .map(|(&p_boot_s, samples)| {
                let fmi: Vec<f64> = samples.iter().map(|a| a[0]).collect();
                let precision: Vec<f64> = samples.iter().map(|a| a[1]).collect();
                let recall: Vec<f64> = samples.iter().map(|a| a[2]).collect();
                Fig04Point {
                    p_boot_s,
                    fmi: Summary::of(&fmi),
                    precision: Summary::of(&precision),
                    recall: Summary::of(&recall),
                }
            })
            .collect();
        Fig04Result {
            points,
            perfect_runs,
            total_runs,
        }
    }

    /// One region, one repeat: returns `[fmi, precision, recall]` per
    /// `p_boot`.
    fn run_once(&self, region_name: &str, seed: u64) -> Vec<[f64; 3]> {
        let region = region_config(region_name);
        let mut world = World::new(region, seed);
        let account = world.create_account();
        let service =
            world.deploy_service(account, ServiceSpec::default().with_max_instances(1_000));
        let launch = world.launch(service, self.instances).expect("within caps");
        let instances = launch.instances().to_vec();

        // One measurement sweep; every p_boot re-derives from the same
        // readings, exactly as the paper evaluates one data set at many
        // precisions.
        let readings = probe_fleet(&mut world, &instances, PROBE_GAP);

        // Ground-truth host label per reading.
        let truth: Vec<u64> = match self.ground_truth {
            GroundTruth::Oracle => readings
                .iter()
                .map(|r| u64::from(world.host_of(r.instance).as_raw()))
                .collect(),
            GroundTruth::CovertChannel => {
                // Group by the default fingerprint, verify with the scalable
                // methodology, and use the verified clusters as truth.
                let default_fp = Gen1Fingerprinter::default();
                let (groups, _) = group_by_fingerprint(&readings, |r| default_fp.fingerprint(r));
                let groups: Vec<_> = groups
                    .into_iter()
                    .map(|(_, members)| {
                        members
                            .iter()
                            .map(|&i| readings[i].instance)
                            .collect::<Vec<_>>()
                    })
                    .collect();
                let outcome = HierarchicalVerifier::new()
                    .verify(&mut world, &groups)
                    .expect("instances stay alive during verification");
                let ids: Vec<_> = readings.iter().map(|r| r.instance).collect();
                outcome
                    .labels_for(&ids)
                    .into_iter()
                    .map(|l| l as u64)
                    .collect()
            }
        };

        self.p_boots_s
            .iter()
            .map(|&p| {
                let fingerprinter = Gen1Fingerprinter::new(SimDuration::from_secs_f64(p));
                let predicted: Vec<String> = readings
                    .iter()
                    .enumerate()
                    .map(|(i, r)| match fingerprinter.fingerprint(r) {
                        Some(f) => f.to_string(),
                        // Unfingerprintable readings must not collide with
                        // each other: give each a unique label.
                        None => format!("unparseable-{i}"),
                    })
                    .collect();
                let confusion = PairConfusion::from_assignments(&predicted, &truth);
                [confusion.fmi(), confusion.precision(), confusion.recall()]
            })
            .collect()
    }
}

/// Resolves a paper region name to its preset.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn region_config(name: &str) -> RegionConfig {
    match name {
        "us-east1" => RegionConfig::us_east1(),
        "us-central1" => RegionConfig::us_central1(),
        "us-west1" => RegionConfig::us_west1(),
        // tidy:allow(panic-policy) -- documented `# Panics` contract: CLI-facing preset lookup, names are closed-set
        other => panic!("unknown region {other:?}"),
    }
}

/// One x-axis point of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig04Point {
    /// Rounding precision in seconds.
    pub p_boot_s: f64,
    /// FMI across runs.
    pub fmi: Summary,
    /// Precision across runs.
    pub precision: Summary,
    /// Recall across runs.
    pub recall: Summary,
}

/// The Figure 4 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig04Result {
    /// One point per `p_boot`.
    pub points: Vec<Fig04Point>,
    /// Runs with a perfect clustering at `p_boot` = 1 s (the paper: 14 of
    /// 15).
    pub perfect_runs: usize,
    /// Total runs.
    pub total_runs: usize,
}

impl Fig04Result {
    /// The point closest to a given precision.
    ///
    /// # Panics
    ///
    /// Panics if the result is empty.
    pub fn point_near(&self, p_boot_s: f64) -> &Fig04Point {
        self.points
            .iter()
            .min_by(|a, b| {
                let da = (a.p_boot_s.ln() - p_boot_s.ln()).abs();
                let db = (b.p_boot_s.ln() - p_boot_s.ln()).abs();
                da.partial_cmp(&db).expect("finite")
            })
            .expect("non-empty sweep")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_the_sweet_spot() {
        let result = Fig04Config::quick().run(7);
        assert_eq!(result.points.len(), 5);
        let sweet = result.point_near(1.0);
        assert!(sweet.fmi.mean() > 0.99, "FMI at 1 s: {}", sweet.fmi.mean());
        // Tiny precision: recall collapses (noise splits hosts).
        let tiny = result.point_near(1e-4);
        assert!(
            tiny.recall.mean() < sweet.recall.mean(),
            "recall should degrade at 0.1 ms: {} vs {}",
            tiny.recall.mean(),
            sweet.recall.mean()
        );
        // Huge precision: precision collapses (hosts collide).
        let huge = result.point_near(1e3);
        assert!(
            huge.precision.mean() < 0.99,
            "precision should degrade at 1000 s: {}",
            huge.precision.mean()
        );
        assert!(huge.recall.mean() > 0.99, "recall stays high at 1000 s");
    }

    #[test]
    fn covert_ground_truth_agrees_with_oracle() {
        let mut config = Fig04Config::quick();
        config.instances = 60;
        config.ground_truth = GroundTruth::CovertChannel;
        let covert = config.run(3);
        config.ground_truth = GroundTruth::Oracle;
        let oracle = config.run(3);
        let c = covert.point_near(1.0).fmi.mean();
        let o = oracle.point_near(1.0).fmi.mean();
        assert!((c - o).abs() < 0.02, "covert {c} vs oracle {o}");
    }

    #[test]
    fn region_lookup() {
        assert_eq!(region_config("us-east1").name, "us-east1");
        assert_eq!(region_config("us-central1").host_count, 2_000);
    }

    #[test]
    #[should_panic(expected = "unknown region")]
    fn region_lookup_rejects_unknown() {
        region_config("mars-north1");
    }
}
