//! Section 4.3 — verification cost: hierarchical vs pairwise.
//!
//! Verifying the co-location of 800 instances pairwise needs 319,600
//! serialized tests — about 8.9 hours and $645 at an optimistic 100 ms per
//! test. The paper's hierarchical methodology finishes in ~1–2 minutes for
//! ~$1–3. This driver runs both campaigns on the same fleet and reports
//! the side-by-side rows.

use eaao_cloudsim::service::ServiceSpec;
use eaao_orchestrator::world::World;
use serde::{Deserialize, Serialize};

use crate::experiment::fig04::region_config;
use crate::experiment::PROBE_GAP;
use crate::fingerprint::{group_by_fingerprint, Gen1Fingerprinter};
use crate::probe::probe_fleet;
use crate::verify::hierarchical::HierarchicalVerifier;
use crate::verify::pairwise::{pair_count, pairwise_verify, PairwiseChannel};

/// One method's campaign summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodRow {
    /// Method name.
    pub method: String,
    /// Covert-channel tests executed.
    pub tests: usize,
    /// Wall time, in seconds.
    pub wall_s: f64,
    /// Cost, in USD.
    pub cost_usd: f64,
    /// Clusters found.
    pub clusters: usize,
}

/// Configuration for the Section 4.3 comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sec43Config {
    /// Region to measure.
    pub region: String,
    /// Instances to verify (paper: 800 ⇒ 319,600 pairs).
    pub instances: usize,
    /// Whether to actually execute the pairwise campaign (`false` computes
    /// its cost analytically — the full campaign is hours of simulated
    /// time but also millions of RNG draws).
    pub execute_pairwise: bool,
}

impl Default for Sec43Config {
    fn default() -> Self {
        Sec43Config {
            region: "us-east1".to_owned(),
            instances: 800,
            execute_pairwise: true,
        }
    }
}

impl Sec43Config {
    /// A scaled-down configuration for tests and benches.
    pub fn quick() -> Self {
        Sec43Config {
            region: "us-west1".to_owned(),
            instances: 80,
            execute_pairwise: true,
        }
    }

    /// Runs the comparison.
    ///
    /// # Panics
    ///
    /// Panics if the launch fails.
    pub fn run(&self, seed: u64) -> Sec43Result {
        // Hierarchical campaign on a fresh fleet.
        let hierarchical = {
            let mut world = World::new(region_config(&self.region), seed);
            let account = world.create_account();
            let service =
                world.deploy_service(account, ServiceSpec::default().with_max_instances(1_000));
            let launch = world.launch(service, self.instances).expect("within caps");
            let instances = launch.instances().to_vec();
            let readings = probe_fleet(&mut world, &instances, PROBE_GAP);
            let fingerprinter = Gen1Fingerprinter::default();
            let (groups, _) = group_by_fingerprint(&readings, |r| fingerprinter.fingerprint(r));
            let groups: Vec<Vec<_>> = groups
                .into_iter()
                .map(|(_, members)| members.iter().map(|&i| readings[i].instance).collect())
                .collect();
            let outcome = HierarchicalVerifier::new()
                .verify(&mut world, &groups)
                .expect("instances alive");
            MethodRow {
                method: "hierarchical (this paper)".to_owned(),
                tests: outcome.stats.ctests + outcome.stats.pairwise_fallback_tests,
                wall_s: outcome.stats.wall.as_secs_f64(),
                cost_usd: outcome.stats.cost.as_usd(),
                clusters: outcome.clusters.len(),
            }
        };

        // Pairwise campaign on an identically seeded fleet.
        let pairwise = if self.execute_pairwise {
            let mut world = World::new(region_config(&self.region), seed);
            let account = world.create_account();
            let service =
                world.deploy_service(account, ServiceSpec::default().with_max_instances(1_000));
            let launch = world.launch(service, self.instances).expect("within caps");
            let instances = launch.instances().to_vec();
            let outcome = pairwise_verify(&mut world, &instances, PairwiseChannel::RngUnit)
                .expect("instances alive");
            MethodRow {
                method: "pairwise (conventional)".to_owned(),
                tests: outcome.stats.tests,
                wall_s: outcome.stats.wall.as_secs_f64(),
                cost_usd: outcome.stats.cost.as_usd(),
                clusters: outcome.clusters.len(),
            }
        } else {
            // Analytic projection with the paper's optimistic 100 ms/test.
            let tests = pair_count(self.instances);
            let wall_s = tests as f64 * 0.1;
            let rates = eaao_cloudsim::pricing::Rates::us_tier1();
            let cost = rates.fleet_cost(
                self.instances,
                eaao_cloudsim::service::ContainerSize::Small,
                eaao_simcore::time::SimDuration::from_secs_f64(wall_s),
            );
            MethodRow {
                method: "pairwise (projected)".to_owned(),
                tests,
                wall_s,
                cost_usd: cost.as_usd(),
                clusters: 0,
            }
        };

        Sec43Result {
            region: self.region.clone(),
            instances: self.instances,
            hierarchical,
            pairwise,
        }
    }
}

/// The Section 4.3 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sec43Result {
    /// Region measured.
    pub region: String,
    /// Fleet size verified.
    pub instances: usize,
    /// The hierarchical campaign.
    pub hierarchical: MethodRow,
    /// The pairwise campaign (executed or projected).
    pub pairwise: MethodRow,
}

impl Sec43Result {
    /// Wall-time speedup of hierarchical over pairwise.
    pub fn speedup(&self) -> f64 {
        self.pairwise.wall_s / self.hierarchical.wall_s.max(1e-9)
    }

    /// Cost ratio of pairwise over hierarchical.
    pub fn cost_ratio(&self) -> f64 {
        self.pairwise.cost_usd / self.hierarchical.cost_usd.max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchical_wins_by_an_order_of_magnitude_even_small() {
        let result = Sec43Config::quick().run(101);
        assert_eq!(result.pairwise.tests, pair_count(80));
        assert!(result.hierarchical.tests < result.pairwise.tests / 10);
        assert!(result.speedup() > 10.0, "speedup {}", result.speedup());
        assert!(
            result.cost_ratio() > 10.0,
            "cost ratio {}",
            result.cost_ratio()
        );
        // Both find the same clustering.
        assert_eq!(result.hierarchical.clusters, result.pairwise.clusters);
    }

    #[test]
    fn projected_pairwise_matches_the_papers_numbers() {
        let config = Sec43Config {
            execute_pairwise: false,
            ..Sec43Config::default()
        };
        let result = config.run(102);
        assert_eq!(result.pairwise.tests, 319_600);
        // ~8.9 hours.
        assert!((result.pairwise.wall_s / 3_600.0 - 8.88).abs() < 0.02);
        // ~$645.
        assert!(
            (result.pairwise.cost_usd - 645.0).abs() < 15.0,
            "projected ${}",
            result.pairwise.cost_usd
        );
        // Hierarchical: ~1–2 minutes, ~$1–3.
        assert!(
            result.hierarchical.wall_s < 240.0,
            "hierarchical wall {}s",
            result.hierarchical.wall_s
        );
        assert!(
            result.hierarchical.cost_usd < 5.0,
            "hierarchical cost ${}",
            result.hierarchical.cost_usd
        );
    }
}
