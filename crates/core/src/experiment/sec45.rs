//! Section 4.5 — Gen 2 fingerprint accuracy.
//!
//! In the Gen 2 environment, TSC offsetting hides the host boot time, but
//! the guest kernel's `tsc_khz` exposes the refined host frequency. The
//! resulting fingerprint is coarse — the paper measures FMI ≈ 0.66,
//! precision ≈ 0.48, and on average 2.0 hosts per fingerprint — but it can
//! never produce a false negative, because refinement happens once per
//! host boot.

use std::collections::BTreeMap;

use eaao_cloudsim::service::{Generation, ServiceSpec};
use eaao_orchestrator::world::World;
use eaao_simcore::stats::Summary;
use serde::{Deserialize, Serialize};

use crate::experiment::fig04::region_config;
use crate::experiment::PROBE_GAP;
use crate::fingerprint::Gen2Fingerprint;
use crate::metrics::PairConfusion;
use crate::probe::probe_fleet;

/// Configuration for the Section 4.5 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sec45Config {
    /// Regions to measure (averaged).
    pub regions: Vec<String>,
    /// Concurrent Gen 2 instances per run.
    pub instances: usize,
    /// Repetitions per region.
    pub repeats: usize,
}

impl Default for Sec45Config {
    fn default() -> Self {
        Sec45Config {
            regions: vec![
                "us-east1".to_owned(),
                "us-central1".to_owned(),
                "us-west1".to_owned(),
            ],
            instances: 800,
            repeats: 5,
        }
    }
}

impl Sec45Config {
    /// A scaled-down configuration for tests and benches.
    pub fn quick() -> Self {
        Sec45Config {
            regions: vec!["us-east1".to_owned()],
            instances: 800,
            repeats: 1,
        }
    }

    /// Runs the experiment.
    ///
    /// # Panics
    ///
    /// Panics if a launch fails.
    pub fn run(&self, seed: u64) -> Sec45Result {
        let mut fmis = Vec::new();
        let mut precisions = Vec::new();
        let mut recalls = Vec::new();
        let mut hosts_per_fp = Vec::new();
        let mut false_negatives_total = 0u64;
        for (r, region) in self.regions.iter().enumerate() {
            for repeat in 0..self.repeats {
                let run_seed = seed
                    .wrapping_add(r as u64 * 7_919)
                    .wrapping_add(repeat as u64);
                let mut world = World::new(region_config(region), run_seed);
                let account = world.create_account();
                let service = world.deploy_service(
                    account,
                    ServiceSpec::default()
                        .with_generation(Generation::Gen2)
                        .with_max_instances(1_000),
                );
                let launch = world.launch(service, self.instances).expect("within caps");
                let instances = launch.instances().to_vec();
                let readings = probe_fleet(&mut world, &instances, PROBE_GAP);

                let predicted: Vec<u64> = readings
                    .iter()
                    .map(|r| {
                        Gen2Fingerprint::from_reading(r)
                            .expect("gen2 exposes tsc_khz")
                            .refined()
                            .as_khz()
                    })
                    .collect();
                let truth: Vec<u32> = readings
                    .iter()
                    .map(|r| world.host_of(r.instance).as_raw())
                    .collect();
                let confusion = PairConfusion::from_assignments(&predicted, &truth);
                fmis.push(confusion.fmi());
                precisions.push(confusion.precision());
                recalls.push(confusion.recall());
                false_negatives_total += confusion.false_negatives;

                // Distinct hosts per fingerprint value.
                let mut hosts_by_fp: BTreeMap<u64, std::collections::BTreeSet<u32>> =
                    BTreeMap::new();
                for (fp, host) in predicted.iter().zip(&truth) {
                    hosts_by_fp.entry(*fp).or_default().insert(*host);
                }
                let mean_hosts = hosts_by_fp.values().map(|h| h.len() as f64).sum::<f64>()
                    / hosts_by_fp.len().max(1) as f64;
                hosts_per_fp.push(mean_hosts);
            }
        }
        Sec45Result {
            fmi: Summary::of(&fmis),
            precision: Summary::of(&precisions),
            recall: Summary::of(&recalls),
            hosts_per_fingerprint: Summary::of(&hosts_per_fp),
            false_negatives_total,
        }
    }
}

/// The Section 4.5 result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sec45Result {
    /// FMI across runs (paper: ≈ 0.66).
    pub fmi: Summary,
    /// Precision across runs (paper: ≈ 0.48).
    pub precision: Summary,
    /// Recall across runs (paper: 1.0 — no false negatives possible).
    pub recall: Summary,
    /// Hosts sharing one fingerprint, on average (paper: ≈ 2.0).
    pub hosts_per_fingerprint: Summary,
    /// Total false-negative pairs across all runs (must be zero).
    pub false_negatives_total: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen2_fingerprints_have_no_false_negatives() {
        let result = Sec45Config::quick().run(111);
        assert_eq!(result.false_negatives_total, 0);
        assert_eq!(result.recall.mean(), 1.0);
    }

    #[test]
    fn gen2_fingerprints_are_coarse() {
        let result = Sec45Config::quick().run(112);
        // Well below the near-perfect Gen 1 values.
        assert!(
            result.precision.mean() < 0.9,
            "precision {}",
            result.precision.mean()
        );
        assert!(result.fmi.mean() < 0.95, "fmi {}", result.fmi.mean());
        // Multiple hosts collide per fingerprint.
        assert!(
            result.hosts_per_fingerprint.mean() > 1.2,
            "hosts/fp {}",
            result.hosts_per_fingerprint.mean()
        );
    }
}
