//! Figure 11 — victim instance coverage under the optimized strategy
//! (Section 5.2, Strategy 2), plus the Gen 2 variant and the attack-cost
//! numbers.
//!
//! For every (data center, victim account) combination, the victim deploys
//! a service and keeps N instances connected; the attacker primes six
//! services with six 800-instance launch rounds at 10-minute intervals and
//! the victim instance coverage is measured. Figure 11a varies the victim
//! instance count {20, 50, 100, 200}; Figure 11b varies the victim size
//! {Pico, Small, Medium, Large}.

use eaao_cloudsim::service::{ContainerSize, Generation, ServiceSpec};
use eaao_orchestrator::world::World;
use eaao_simcore::stats::Summary;
use serde::{Deserialize, Serialize};

use crate::coverage::measure_coverage;
use crate::experiment::fig04::region_config;
use crate::strategy::OptimizedLaunch;

/// One experimental cell: a region, a victim account index, and a victim
/// configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11Cell {
    /// Region name.
    pub region: String,
    /// Victim account index (the paper's Account 2 ↦ 0, Account 3 ↦ 1).
    pub victim: usize,
    /// Victim instances.
    pub victim_count: usize,
    /// Victim container size label.
    pub victim_size: String,
    /// Mean / std of victim instance coverage across repeats.
    pub coverage: Summary,
    /// Mean attacker host coverage of the data center.
    pub attacker_host_coverage: f64,
    /// Mean attack cost in USD.
    pub attack_cost_usd: f64,
    /// Mean number of hosts the attacker occupied at once.
    pub attacker_hosts: f64,
    /// Fraction of repeats achieving co-location with ≥ 1 victim instance.
    pub at_least_one_rate: f64,
}

/// Configuration for the Figure 11 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Config {
    /// Regions to evaluate.
    pub regions: Vec<String>,
    /// Victim accounts per region.
    pub victims: usize,
    /// Repeats per cell.
    pub repeats: usize,
    /// Victim instance counts to sweep (Figure 11a).
    pub victim_counts: Vec<usize>,
    /// Victim sizes to sweep (Figure 11b).
    pub victim_sizes: Vec<ContainerSize>,
    /// The attacker's strategy parameters.
    pub attacker: OptimizedLaunch,
    /// Execution environment for both parties (Gen 2 reproduces the
    /// paper's transferability result).
    pub generation: Generation,
}

impl Default for Fig11Config {
    fn default() -> Self {
        Fig11Config {
            regions: vec![
                "us-east1".to_owned(),
                "us-central1".to_owned(),
                "us-west1".to_owned(),
            ],
            victims: 2,
            repeats: 3,
            victim_counts: vec![20, 50, 100, 200],
            victim_sizes: ContainerSize::TABLE1.to_vec(),
            attacker: OptimizedLaunch::default(),
            generation: Generation::Gen1,
        }
    }
}

impl Fig11Config {
    /// A scaled-down configuration for tests and benches.
    pub fn quick() -> Self {
        Fig11Config {
            regions: vec!["us-west1".to_owned()],
            victims: 1,
            repeats: 1,
            victim_counts: vec![50],
            victim_sizes: vec![ContainerSize::Small],
            attacker: OptimizedLaunch {
                services: 3,
                launches_per_service: 4,
                instances_per_launch: 300,
                ..OptimizedLaunch::default()
            },
            ..Fig11Config::default()
        }
    }

    /// Runs Figure 11a: sweep the victim instance count at the default
    /// size.
    pub fn run_11a(&self, seed: u64) -> Fig11Result {
        let cells = self.sweep(seed, |&count| (count, ContainerSize::Small));
        Fig11Result {
            variant: "11a".to_owned(),
            cells,
        }
    }

    /// Runs Figure 11b: sweep the victim size at 100 instances.
    pub fn run_11b(&self, seed: u64) -> Fig11Result {
        let sizes = self.victim_sizes.clone();
        let cells = self.sweep_over(seed, &sizes, |&size| (100, size));
        Fig11Result {
            variant: "11b".to_owned(),
            cells,
        }
    }

    fn sweep(
        &self,
        seed: u64,
        to_victim: impl Fn(&usize) -> (usize, ContainerSize),
    ) -> Vec<Fig11Cell> {
        let counts = self.victim_counts.clone();
        self.sweep_over(seed, &counts, to_victim)
    }

    fn sweep_over<T>(
        &self,
        seed: u64,
        variants: &[T],
        to_victim: impl Fn(&T) -> (usize, ContainerSize),
    ) -> Vec<Fig11Cell> {
        let mut cells = Vec::new();
        for region in &self.regions {
            for victim in 0..self.victims {
                for variant in variants {
                    let (victim_count, victim_size) = to_victim(variant);
                    cells.push(self.run_cell(region, victim, victim_count, victim_size, seed));
                }
            }
        }
        cells
    }

    // tidy:allow(panic-reachability) -- the only non-literal index is `victim.min(1)` into a 2-element array, always in bounds.
    fn run_cell(
        &self,
        region: &str,
        victim: usize,
        victim_count: usize,
        victim_size: ContainerSize,
        seed: u64,
    ) -> Fig11Cell {
        let mut coverages = Vec::new();
        let mut host_coverages = Vec::new();
        let mut costs = Vec::new();
        let mut attacker_hosts = Vec::new();
        let mut at_least_one = 0usize;
        for repeat in 0..self.repeats {
            let run_seed = seed
                .wrapping_mul(1_000_003)
                .wrapping_add((victim as u64) << 32)
                .wrapping_add(repeat as u64)
                .wrapping_add(region.len() as u64 * 7_919);
            let mut world = World::new(region_config(region), run_seed);

            // The paper's account layout: Account 1 attacks, Accounts 2–3
            // are victims. Create all three so the victim index selects a
            // distinct account (and thus a distinct scheduling cell draw).
            let attacker_account = world.create_account();
            let victim_accounts = [world.create_account(), world.create_account()];
            let victim_account = victim_accounts[victim.min(1)];

            // The victim is a live web service: its instances stay
            // connected throughout.
            let victim_service = world.deploy_service(
                victim_account,
                ServiceSpec::default()
                    .with_size(victim_size)
                    .with_generation(self.generation)
                    .with_max_instances(victim_count.max(100)),
            );
            let victim_launch = world
                .launch(victim_service, victim_count)
                .expect("victim fits");
            let victim_instances = victim_launch.instances().to_vec();

            let mut attacker = self.attacker;
            attacker.hold = self.attacker.hold;
            let report =
                attack_with_generation(&mut world, attacker_account, &attacker, self.generation);

            let coverage = measure_coverage(&world, &report.live_instances, &victim_instances);
            coverages.push(coverage.victim_instance_coverage());
            host_coverages.push(coverage.attacker_host_coverage());
            costs.push(report.cost.as_usd());
            attacker_hosts.push(report.hosts_occupied as f64);
            if coverage.at_least_one() {
                at_least_one += 1;
            }
        }
        Fig11Cell {
            region: region.to_owned(),
            victim,
            victim_count,
            victim_size: victim_size.label().to_owned(),
            coverage: Summary::of(&coverages),
            attacker_host_coverage: Summary::of(&host_coverages).mean(),
            attack_cost_usd: Summary::of(&costs).mean(),
            attacker_hosts: Summary::of(&attacker_hosts).mean(),
            at_least_one_rate: at_least_one as f64 / self.repeats.max(1) as f64,
        }
    }
}

/// Runs the optimized strategy with the configured execution environment.
fn attack_with_generation(
    world: &mut World,
    account: eaao_cloudsim::ids::AccountId,
    attacker: &OptimizedLaunch,
    generation: Generation,
) -> crate::strategy::StrategyReport {
    match generation {
        Generation::Gen1 => attacker.run(world, account).expect("attacker fits"),
        Generation::Gen2 => {
            // Same strategy, Gen 2 services: clone the launcher loop with a
            // Gen 2 spec by deploying through a shim service spec. The
            // OptimizedLaunch strategy always uses Gen 1 specs, so for
            // Gen 2 we inline the equivalent loop.
            run_gen2_strategy(world, account, attacker)
        }
    }
}

/// The optimized strategy with Gen 2 service specs.
fn run_gen2_strategy(
    world: &mut World,
    account: eaao_cloudsim::ids::AccountId,
    config: &OptimizedLaunch,
) -> crate::strategy::StrategyReport {
    use std::collections::BTreeSet;
    let wall_start = world.now();
    let cost_start = world.billed_for(account);
    let spec = ServiceSpec::default()
        .with_generation(Generation::Gen2)
        .with_max_instances(1_000);
    let services: Vec<_> = (0..config.services)
        .map(|_| world.deploy_service(account, spec))
        .collect();
    let mut live = Vec::new();
    let mut launches = 0;
    for k in 0..config.launches_per_service {
        let last = k + 1 == config.launches_per_service;
        for &service in &services {
            let launch = world
                .launch(service, config.instances_per_launch)
                .expect("attacker fits");
            launches += 1;
            if last {
                live.extend_from_slice(launch.instances());
            }
        }
        world.advance(config.hold);
        if !last {
            for &service in &services {
                world.kill_all(service);
            }
            let rest = config.interval - config.hold;
            if !rest.is_negative() {
                world.advance(rest);
            }
        }
    }
    live.retain(|&id| world.instance(id).is_alive());
    let hosts: BTreeSet<_> = live.iter().map(|&i| world.host_of(i)).collect();
    crate::strategy::StrategyReport {
        services,
        hosts_occupied: hosts.len(),
        live_instances: live,
        launches,
        cost: world.billed_for(account) - cost_start,
        wall: world.now() - wall_start,
    }
}

/// The Figure 11 result: one cell per (region, victim, variant).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11Result {
    /// `"11a"` or `"11b"`.
    pub variant: String,
    /// The measured cells.
    pub cells: Vec<Fig11Cell>,
}

impl Fig11Result {
    /// Mean coverage across all cells.
    pub fn mean_coverage(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells.iter().map(|c| c.coverage.mean()).sum::<f64>() / self.cells.len() as f64
    }

    /// Fraction of all runs that co-located with at least one victim
    /// instance (the paper: 100%).
    pub fn at_least_one_rate(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells.iter().map(|c| c.at_least_one_rate).sum::<f64>() / self.cells.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_cell_achieves_high_coverage_in_west1() {
        let result = Fig11Config::quick().run_11a(71);
        assert_eq!(result.cells.len(), 1);
        let cell = &result.cells[0];
        assert!(
            cell.coverage.mean() > 0.8,
            "coverage {} in us-west1",
            cell.coverage.mean()
        );
        assert_eq!(result.at_least_one_rate(), 1.0);
        assert!(cell.attack_cost_usd > 0.0);
    }

    #[test]
    fn gen2_strategy_also_co_locates() {
        let mut config = Fig11Config::quick();
        config.generation = Generation::Gen2;
        let result = config.run_11a(72);
        assert!(
            result.mean_coverage() > 0.6,
            "gen2 coverage {}",
            result.mean_coverage()
        );
    }

    #[test]
    fn fig11b_sweeps_sizes() {
        let mut config = Fig11Config::quick();
        config.victim_sizes = vec![ContainerSize::Pico, ContainerSize::Large];
        let result = config.run_11b(73);
        assert_eq!(result.cells.len(), 2);
        assert_eq!(result.cells[0].victim_count, 100);
        assert_eq!(result.cells[0].victim_size, "Pico");
        assert_eq!(result.cells[1].victim_size, "Large");
        // Size does not materially change coverage (the paper's finding).
        let diff = (result.cells[0].coverage.mean() - result.cells[1].coverage.mean()).abs();
        assert!(diff < 0.3, "size sensitivity {diff}");
    }
}
