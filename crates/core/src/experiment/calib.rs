//! Verifier-channel threshold calibration: an ROC-style sweep.
//!
//! The paper fixes the `CTest` decision rule at 30-of-60 positive rounds
//! for the RNG channel (§4.3). The `/lock`–`/check` memory-bus channel
//! (PAPERS.md, arxiv 2512.10361) has a *platform-dependent* noise floor,
//! so the same rule cannot be assumed — a threshold tuned on Cloud Run's
//! quiet bus false-positives on an Azure-like one. This driver measures
//! the trade-off empirically: it launches a fleet on the chosen platform,
//! runs repeated co-location tests over ground-truth co-located pairs
//! (positives) and separated pairs (negatives), and sweeps the
//! minimum-positive-rounds threshold over the recorded observations,
//! reporting a true-positive/false-positive rate per threshold and the
//! Youden-optimal operating point. `docs/PLATFORMS.md` tabulates the
//! calibrated thresholds; campaign grids run this as the `calibration`
//! experiment.

use eaao_cloudsim::ids::InstanceId;
use eaao_cloudsim::rng_unit::is_positive;
use eaao_cloudsim::service::ServiceSpec;
use eaao_orchestrator::platform::PlatformKind;
use eaao_orchestrator::world::World;
use serde::{Deserialize, Serialize};

use crate::experiment::fig04::region_config;
use crate::verify::ctest::VerifierChannel;

/// Configuration of one calibration sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CalibConfig {
    /// Region to measure.
    pub region: String,
    /// Platform policy the fleet is placed under (sets the bus profile).
    pub platform: PlatformKind,
    /// Channel under calibration.
    pub channel: VerifierChannel,
    /// Fleet size to launch when hunting for ground-truth pairs.
    pub instances: usize,
    /// Repeated tests per class (co-located and separated).
    pub trials: usize,
    /// Measurement rounds per test (the paper uses 60).
    pub rounds: usize,
    /// Minimum-positive-rounds thresholds to sweep.
    pub thresholds: Vec<usize>,
}

impl Default for CalibConfig {
    fn default() -> Self {
        CalibConfig {
            region: "us-west1".to_owned(),
            platform: PlatformKind::CloudRun,
            channel: VerifierChannel::MembusLockCheck,
            instances: 200,
            trials: 40,
            rounds: 60,
            thresholds: vec![6, 12, 18, 24, 30, 36, 42, 48, 54],
        }
    }
}

impl CalibConfig {
    /// A scaled-down configuration for tests and benches.
    pub fn quick() -> Self {
        CalibConfig {
            instances: 60,
            trials: 8,
            rounds: 30,
            thresholds: vec![3, 9, 15, 21, 27],
            ..CalibConfig::default()
        }
    }

    /// Runs the sweep.
    ///
    /// # Panics
    ///
    /// Panics if the launch fails, if the fleet yields no ground-truth
    /// co-located pair (scale `instances` up), or if `thresholds` is
    /// empty or exceeds `rounds`.
    pub fn run(&self, seed: u64) -> CalibResult {
        assert!(!self.thresholds.is_empty(), "no thresholds to sweep");
        assert!(
            self.thresholds.iter().all(|&t| t > 0 && t <= self.rounds),
            "thresholds must be within 1..=rounds"
        );
        let mut world = World::new(
            region_config(&self.region).with_platform(self.platform),
            seed,
        );
        let account = world.create_account();
        let service =
            world.deploy_service(account, ServiceSpec::default().with_max_instances(1_000));
        let launch = world.launch(service, self.instances).expect("within caps");
        let instances = launch.instances().to_vec();
        let pair = co_located_pair(&world, &instances);

        // Positive class: the checker sees one co-resident locker.
        // Negative class: a single-participant test — no co-resident
        // locker, which is by construction what a separated pair's
        // checker sees (channel noise only), with no dependence on the
        // platform actually spreading the fleet across hosts.
        let t0 = world.now();
        let positives: Vec<Vec<u32>> = (0..self.trials)
            .map(|_| observe(&mut world, self.channel, &pair, self.rounds))
            .collect();
        let negatives: Vec<Vec<u32>> = (0..self.trials)
            .map(|_| observe(&mut world, self.channel, &pair[..1], self.rounds))
            .collect();
        let wall_s = (world.now() - t0).as_secs_f64();

        // The observer needs m − 1 = 1 unit from others per positive round.
        let points: Vec<CalibPoint> = self
            .thresholds
            .iter()
            .map(|&threshold| {
                let tp = positives
                    .iter()
                    .filter(|o| is_positive(o, 1, threshold))
                    .count();
                let fp = negatives
                    .iter()
                    .filter(|o| is_positive(o, 1, threshold))
                    .count();
                CalibPoint {
                    min_positive_rounds: threshold,
                    tpr: tp as f64 / self.trials as f64,
                    fpr: fp as f64 / self.trials as f64,
                }
            })
            .collect();
        let chosen = points
            .iter()
            .max_by(|a, b| {
                (a.tpr - a.fpr)
                    .partial_cmp(&(b.tpr - b.fpr))
                    .expect("rates are finite")
                    // Prefer the *smaller* threshold on ties: it tolerates
                    // more dropout at the same separation.
                    .then(b.min_positive_rounds.cmp(&a.min_positive_rounds))
            })
            .expect("at least one threshold")
            .min_positive_rounds;

        CalibResult {
            region: self.region.clone(),
            platform: self.platform.name().to_owned(),
            channel: self.channel.name().to_owned(),
            rounds: self.rounds,
            trials: self.trials,
            wall_s,
            points,
            chosen_min_positive_rounds: chosen,
        }
    }
}

/// Finds a ground-truth co-located pair in a fleet.
///
/// # Panics
///
/// Panics if no two instances share a host (scale the fleet up).
fn co_located_pair(world: &World, instances: &[InstanceId]) -> [InstanceId; 2] {
    instances
        .iter()
        .enumerate()
        .find_map(|(i, &a)| {
            instances[i + 1..]
                .iter()
                .find(|&&b| world.host_of(a) == world.host_of(b))
                .map(|&b| [a, b])
        })
        .expect("fleet has a ground-truth co-located pair")
}

/// One observation of `participants[0]`'s view over the channel under
/// test.
fn observe(
    world: &mut World,
    channel: VerifierChannel,
    participants: &[InstanceId],
    rounds: usize,
) -> Vec<u32> {
    let mut obs = match channel {
        VerifierChannel::RngCtest => world.rng_covert_observations(participants, rounds),
        VerifierChannel::MembusLockCheck => world.membus_lock_observations(participants, rounds),
    }
    .expect("participants alive");
    obs.swap_remove(0)
}

/// One operating point of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibPoint {
    /// The decision rule: rounds that must meet the contention threshold.
    pub min_positive_rounds: usize,
    /// True-positive rate over the co-located trials.
    pub tpr: f64,
    /// False-positive rate over the separated trials.
    pub fpr: f64,
}

/// The calibration result: an ROC curve plus the chosen operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibResult {
    /// Region measured.
    pub region: String,
    /// Platform name (canonical grid-axis form).
    pub platform: String,
    /// Channel name (canonical grid-axis form).
    pub channel: String,
    /// Rounds per test.
    pub rounds: usize,
    /// Trials per class.
    pub trials: usize,
    /// Simulated wall time the whole sweep's tests occupied, in seconds.
    pub wall_s: f64,
    /// One point per swept threshold, in sweep order.
    pub points: Vec<CalibPoint>,
    /// The Youden-optimal threshold (max `tpr − fpr`, smallest on ties).
    pub chosen_min_positive_rounds: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic() {
        let config = CalibConfig::quick();
        let a = config.run(7);
        let b = config.run(7);
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).expect("serializes"),
            serde_json::to_string(&b).expect("serializes")
        );
    }

    #[test]
    fn chosen_threshold_separates_the_classes() {
        let result = CalibConfig::quick().run(11);
        let chosen = result
            .points
            .iter()
            .find(|p| p.min_positive_rounds == result.chosen_min_positive_rounds)
            .expect("chosen point is in the sweep");
        assert!(chosen.tpr > 0.9, "tpr {}", chosen.tpr);
        assert!(chosen.fpr < 0.1, "fpr {}", chosen.fpr);
    }

    #[test]
    fn extreme_thresholds_degenerate() {
        // A 1-round bar false-positives on background noise eventually; a
        // rounds-length bar false-negatives on dropout. The sweep exists
        // because the middle is where the classes separate.
        let config = CalibConfig {
            thresholds: vec![1, 15, 30],
            trials: 30,
            rounds: 30,
            ..CalibConfig::quick()
        };
        let result = config.run(13);
        let j: Vec<f64> = result.points.iter().map(|p| p.tpr - p.fpr).collect();
        assert!(result.points[0].fpr > result.points[1].fpr);
        assert!(result.points[1].tpr > result.points[2].tpr);
        assert!(j[1] > j[0] && j[1] > j[2], "J sweep {j:?}");
        assert_eq!(result.chosen_min_positive_rounds, 15);
    }

    #[test]
    fn rng_channel_calibrates_faster_than_bus() {
        let rng = CalibConfig {
            channel: VerifierChannel::RngCtest,
            ..CalibConfig::quick()
        }
        .run(17);
        let bus = CalibConfig::quick().run(17);
        assert!(
            bus.wall_s > rng.wall_s * 50.0,
            "bus {} rng {}",
            bus.wall_s,
            rng.wall_s
        );
    }

    #[test]
    fn platform_profiles_produce_distinct_curves() {
        // Same seed, same sweep — only the platform (and so the bus noise
        // floor) differs. The curves must not be byte-identical.
        let cloudrun = CalibConfig::quick().run(19);
        let azure = CalibConfig {
            platform: PlatformKind::AzureLike,
            ..CalibConfig::quick()
        }
        .run(19);
        assert_ne!(cloudrun.points, azure.points);
        assert_eq!(cloudrun.platform, "cloudrun");
        assert_eq!(azure.platform, "azure-like");
    }
}
