//! Section 6 — potential mitigations, evaluated.
//!
//! The paper proposes masking the TSC value and rate (trap-and-emulate for
//! Gen 1, hardware offsetting + scaling for Gen 2) and scheduler-side
//! defenses. This driver quantifies what the paper argues qualitatively:
//!
//! * both TSC mitigations destroy the corresponding fingerprint,
//! * trap-and-emulate costs timer-heavy applications tens of percent of
//!   latency (the Cassandra observation), while offsetting + scaling is
//!   free,
//! * co-location-resistant scheduling reduces the optimized strategy's
//!   victim coverage (at the price of giving up locality-driven placement).

use eaao_cloudsim::mitigation::{TimerWorkload, TscMitigation};
use eaao_cloudsim::service::{Generation, ServiceSpec};
use eaao_orchestrator::world::World;
use serde::{Deserialize, Serialize};

use crate::coverage::measure_coverage;
use crate::experiment::fig04::region_config;
use crate::experiment::PROBE_GAP;
use crate::fingerprint::{Gen1Fingerprinter, Gen2Fingerprint};
use crate::metrics::PairConfusion;
use crate::probe::probe_fleet;
use crate::strategy::OptimizedLaunch;

/// Effect of one TSC mitigation on both fingerprints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MitigationRow {
    /// The mitigation evaluated.
    pub mitigation: TscMitigation,
    /// Gen 1 fingerprint FMI under the mitigation (unmitigated: ~0.9999).
    pub gen1_fmi: f64,
    /// Gen 2 fingerprint precision under the mitigation (unmitigated:
    /// ~0.48).
    pub gen2_precision: f64,
    /// Distinct Gen 2 fingerprint values observed (a scaled platform
    /// collapses them to one per CPU model).
    pub gen2_distinct_values: usize,
    /// Latency overhead on a timer-heavy database write path.
    pub database_overhead: f64,
    /// Latency overhead on a lightly instrumented web request.
    pub web_overhead: f64,
}

/// Configuration for the Section 6 evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sec6Config {
    /// Region to measure.
    pub region: String,
    /// Instances per fingerprint evaluation.
    pub instances: usize,
    /// Attacker configuration for the scheduler-mitigation comparison.
    pub attacker: OptimizedLaunch,
    /// Victim instances for the scheduler-mitigation comparison.
    pub victim_count: usize,
}

impl Default for Sec6Config {
    fn default() -> Self {
        Sec6Config {
            region: "us-east1".to_owned(),
            instances: 800,
            attacker: OptimizedLaunch::default(),
            victim_count: 100,
        }
    }
}

impl Sec6Config {
    /// A scaled-down configuration for tests and benches.
    pub fn quick() -> Self {
        Sec6Config {
            region: "us-west1".to_owned(),
            instances: 300,
            attacker: OptimizedLaunch {
                services: 3,
                launches_per_service: 4,
                instances_per_launch: 300,
                ..OptimizedLaunch::default()
            },
            victim_count: 50,
        }
    }

    /// Runs the evaluation.
    ///
    /// # Panics
    ///
    /// Panics if a launch fails.
    pub fn run(&self, seed: u64) -> Sec6Result {
        let rows = [
            TscMitigation::None,
            TscMitigation::TrapAndEmulate,
            TscMitigation::OffsetAndScale,
        ]
        .into_iter()
        .map(|m| self.evaluate_tsc_mitigation(m, seed))
        .collect();
        let (coverage_unmitigated, coverage_resistant) = self.evaluate_scheduler(seed);
        Sec6Result {
            rows,
            coverage_unmitigated,
            coverage_resistant,
        }
    }

    fn evaluate_tsc_mitigation(&self, mitigation: TscMitigation, seed: u64) -> MitigationRow {
        // Gen 1 fingerprint accuracy under the mitigation.
        let gen1_fmi = {
            let region = region_config(&self.region).with_tsc_mitigation(mitigation);
            let mut world = World::new(region, seed);
            let account = world.create_account();
            let service =
                world.deploy_service(account, ServiceSpec::default().with_max_instances(1_000));
            let ids = world
                .launch(service, self.instances)
                .expect("fits")
                .instances()
                .to_vec();
            let readings = probe_fleet(&mut world, &ids, PROBE_GAP);
            let fingerprinter = Gen1Fingerprinter::default();
            let predicted: Vec<String> = readings
                .iter()
                .enumerate()
                .map(|(i, r)| match fingerprinter.fingerprint(r) {
                    Some(f) => f.to_string(),
                    None => format!("none-{i}"),
                })
                .collect();
            let truth: Vec<u32> = readings
                .iter()
                .map(|r| world.host_of(r.instance).as_raw())
                .collect();
            PairConfusion::from_assignments(&predicted, &truth).fmi()
        };

        // Gen 2 fingerprint precision under the mitigation.
        let (gen2_precision, gen2_distinct_values) = {
            let region = region_config(&self.region).with_tsc_mitigation(mitigation);
            let mut world = World::new(region, seed.wrapping_add(1));
            let account = world.create_account();
            let service = world.deploy_service(
                account,
                ServiceSpec::default()
                    .with_generation(Generation::Gen2)
                    .with_max_instances(1_000),
            );
            let ids = world
                .launch(service, self.instances)
                .expect("fits")
                .instances()
                .to_vec();
            let readings = probe_fleet(&mut world, &ids, PROBE_GAP);
            let predicted: Vec<u64> = readings
                .iter()
                .map(|r| {
                    Gen2Fingerprint::from_reading(r)
                        .expect("gen2")
                        .refined()
                        .as_khz()
                })
                .collect();
            let truth: Vec<u32> = readings
                .iter()
                .map(|r| world.host_of(r.instance).as_raw())
                .collect();
            let confusion = PairConfusion::from_assignments(&predicted, &truth);
            let distinct = {
                let mut values = predicted.clone();
                values.sort_unstable();
                values.dedup();
                values.len()
            };
            (confusion.precision(), distinct)
        };

        MitigationRow {
            mitigation,
            gen1_fmi,
            gen2_precision,
            gen2_distinct_values,
            database_overhead: TimerWorkload::database_write().overhead_fraction(mitigation),
            web_overhead: TimerWorkload::web_request().overhead_fraction(mitigation),
        }
    }

    /// The optimized attack with and without co-location-resistant
    /// scheduling; returns the victim coverages.
    fn evaluate_scheduler(&self, seed: u64) -> (f64, f64) {
        let run = |resistant: bool| {
            let mut region = region_config(&self.region);
            region.placement.co_location_resistant = resistant;
            let mut world = World::new(region, seed.wrapping_add(2));
            let attacker = world.create_account();
            let victim = world.create_account();
            let victim_service = world.deploy_service(victim, ServiceSpec::default());
            let victim_instances = world
                .launch(victim_service, self.victim_count)
                .expect("victim fits")
                .instances()
                .to_vec();
            let report = self
                .attacker
                .run(&mut world, attacker)
                .expect("attacker fits");
            measure_coverage(&world, &report.live_instances, &victim_instances)
                .victim_instance_coverage()
        };
        (run(false), run(true))
    }
}

/// The Section 6 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sec6Result {
    /// One row per TSC mitigation.
    pub rows: Vec<MitigationRow>,
    /// Strategy-2 victim coverage under the paper's (unmitigated)
    /// scheduler.
    pub coverage_unmitigated: f64,
    /// Strategy-2 victim coverage under co-location-resistant scheduling.
    pub coverage_resistant: f64,
}

impl Sec6Result {
    /// The row for a given mitigation.
    ///
    /// # Panics
    ///
    /// Panics if the mitigation was not evaluated.
    pub fn row(&self, mitigation: TscMitigation) -> &MitigationRow {
        self.rows
            .iter()
            .find(|r| r.mitigation == mitigation)
            .expect("mitigation evaluated")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsc_mitigations_destroy_the_fingerprints() {
        let result = Sec6Config::quick().run(201);
        let baseline = result.row(TscMitigation::None);
        assert!(
            baseline.gen1_fmi > 0.99,
            "unmitigated Gen 1 {}",
            baseline.gen1_fmi
        );
        assert!(baseline.gen2_precision < 0.95, "unmitigated Gen 2 collides");

        let trapped = result.row(TscMitigation::TrapAndEmulate);
        // The Gen 1 fingerprint degenerates: every host of one model gets
        // (approximately) the same derived boot — FMI collapses.
        assert!(
            trapped.gen1_fmi < baseline.gen1_fmi / 2.0,
            "trap-and-emulate left Gen 1 FMI at {}",
            trapped.gen1_fmi
        );

        let scaled = result.row(TscMitigation::OffsetAndScale);
        // The Gen 2 fingerprint collapses to one value per CPU model.
        assert!(
            scaled.gen2_distinct_values < baseline.gen2_distinct_values / 2,
            "scaling left {} distinct values (baseline {})",
            scaled.gen2_distinct_values,
            baseline.gen2_distinct_values
        );
        assert!(
            scaled.gen2_precision < baseline.gen2_precision,
            "scaling should reduce Gen 2 precision"
        );
    }

    #[test]
    fn overheads_match_the_papers_argument() {
        let result = Sec6Config::quick().run(202);
        let trapped = result.row(TscMitigation::TrapAndEmulate);
        assert!(
            trapped.database_overhead > 0.2,
            "db {}",
            trapped.database_overhead
        );
        assert!(trapped.web_overhead < 0.1, "web {}", trapped.web_overhead);
        let scaled = result.row(TscMitigation::OffsetAndScale);
        assert_eq!(scaled.database_overhead, 0.0);
        assert_eq!(scaled.web_overhead, 0.0);
    }

    #[test]
    fn resistant_scheduling_does_not_help_in_a_small_region() {
        // In a 205-host region the attacker covers everything either way —
        // the scheduler defense needs a large pool to matter (checked at
        // full scale by the repro binary).
        let result = Sec6Config::quick().run(203);
        assert!(result.coverage_unmitigated > 0.8);
        assert!((0.0..=1.0).contains(&result.coverage_resistant));
    }
}
