//! Co-location clusters and the union-find that builds them.
//!
//! Verification (Section 4.3) incrementally merges instances that are
//! proven to share a host. A tiny union-find keeps that bookkeeping exact
//! regardless of the order in which evidence arrives.

use std::collections::BTreeMap;

use eaao_cloudsim::ids::InstanceId;

/// Union-find over a fixed set of instances.
#[derive(Debug, Clone)]
pub struct CoLocationForest {
    ids: Vec<InstanceId>,
    index: BTreeMap<InstanceId, usize>,
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl CoLocationForest {
    /// Creates a forest where every instance is its own cluster.
    ///
    /// # Panics
    ///
    /// Panics if `ids` contains duplicates.
    pub fn new(ids: impl IntoIterator<Item = InstanceId>) -> Self {
        let ids: Vec<InstanceId> = ids.into_iter().collect();
        let mut index = BTreeMap::new();
        for (i, &id) in ids.iter().enumerate() {
            let previous = index.insert(id, i);
            assert!(previous.is_none(), "duplicate instance {id}");
        }
        let parent = (0..ids.len()).collect();
        let rank = vec![0; ids.len()];
        CoLocationForest {
            ids,
            index,
            parent,
            rank,
        }
    }

    /// Number of instances tracked.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the forest tracks no instances.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Index of a tracked instance; the documented `# Panics` contract of
    /// `merge`/`same_cluster`.
    fn index_of(&self, id: InstanceId) -> usize {
        match self.index.get(&id) {
            Some(&i) => i,
            // tidy:allow(panic-policy) -- documented `# Panics` contract: callers must pass tracked ids
            None => panic!("unknown instance {id}"),
        }
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    /// Records evidence that `a` and `b` share a host.
    ///
    /// # Panics
    ///
    /// Panics if either instance is not tracked.
    pub fn merge(&mut self, a: InstanceId, b: InstanceId) {
        let (ia, ib) = (self.index_of(a), self.index_of(b));
        let (ra, rb) = (self.find(ia), self.find(ib));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
    }

    /// Records evidence that all of `members` share one host.
    pub fn merge_all(&mut self, members: &[InstanceId]) {
        for window in members.windows(2) {
            self.merge(window[0], window[1]);
        }
    }

    /// Whether `a` and `b` are currently in the same cluster.
    ///
    /// # Panics
    ///
    /// Panics if either instance is not tracked.
    pub fn same_cluster(&mut self, a: InstanceId, b: InstanceId) -> bool {
        let (ia, ib) = (self.index_of(a), self.index_of(b));
        self.find(ia) == self.find(ib)
    }

    /// Extracts the clusters, each sorted by instance id, ordered by their
    /// smallest member.
    // tidy:allow(panic-reachability) -- `i` ranges over `0..self.ids.len()`.
    pub fn clusters(&mut self) -> Vec<Vec<InstanceId>> {
        let mut by_root: BTreeMap<usize, Vec<InstanceId>> = BTreeMap::new();
        for i in 0..self.ids.len() {
            let root = self.find(i);
            by_root.entry(root).or_default().push(self.ids[i]);
        }
        let mut clusters: Vec<Vec<InstanceId>> = by_root.into_values().collect();
        for c in &mut clusters {
            c.sort_unstable();
        }
        clusters.sort_by_key(|c| c[0]);
        clusters
    }

    /// A cluster label per tracked instance, in the order the instances
    /// were supplied — useful for metric computation.
    pub fn labels(&mut self) -> Vec<usize> {
        (0..self.ids.len()).map(|i| self.find(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> Vec<InstanceId> {
        (0..n).map(InstanceId::from_raw).collect()
    }

    #[test]
    fn starts_fully_disjoint() {
        let mut f = CoLocationForest::new(ids(4));
        assert_eq!(f.len(), 4);
        assert!(!f.is_empty());
        assert_eq!(f.clusters().len(), 4);
        assert!(!f.same_cluster(InstanceId::from_raw(0), InstanceId::from_raw(1)));
    }

    #[test]
    fn merge_is_transitive() {
        let mut f = CoLocationForest::new(ids(5));
        f.merge(InstanceId::from_raw(0), InstanceId::from_raw(1));
        f.merge(InstanceId::from_raw(1), InstanceId::from_raw(2));
        assert!(f.same_cluster(InstanceId::from_raw(0), InstanceId::from_raw(2)));
        let clusters = f.clusters();
        assert_eq!(clusters.len(), 3);
        assert_eq!(clusters[0], ids(3));
    }

    #[test]
    fn merge_all_links_a_group() {
        let mut f = CoLocationForest::new(ids(6));
        f.merge_all(&[
            InstanceId::from_raw(1),
            InstanceId::from_raw(3),
            InstanceId::from_raw(5),
        ]);
        assert!(f.same_cluster(InstanceId::from_raw(1), InstanceId::from_raw(5)));
        assert_eq!(f.clusters().len(), 4);
    }

    #[test]
    fn merge_is_idempotent() {
        let mut f = CoLocationForest::new(ids(2));
        let (a, b) = (InstanceId::from_raw(0), InstanceId::from_raw(1));
        f.merge(a, b);
        f.merge(a, b);
        f.merge(b, a);
        assert_eq!(f.clusters().len(), 1);
    }

    #[test]
    fn labels_align_with_clusters() {
        let mut f = CoLocationForest::new(ids(4));
        f.merge(InstanceId::from_raw(0), InstanceId::from_raw(2));
        let labels = f.labels();
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[1], labels[3]);
    }

    #[test]
    #[should_panic(expected = "duplicate instance")]
    fn rejects_duplicates() {
        CoLocationForest::new(vec![InstanceId::from_raw(1), InstanceId::from_raw(1)]);
    }

    #[test]
    #[should_panic(expected = "unknown instance")]
    fn rejects_unknown_merge() {
        let mut f = CoLocationForest::new(ids(2));
        f.merge(InstanceId::from_raw(0), InstanceId::from_raw(9));
    }
}
