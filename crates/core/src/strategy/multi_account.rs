//! Multi-account attack optimization (Section 5.2, "Potential attack
//! optimizations").
//!
//! To occupy an even larger fraction of a data center, the attacker
//! creates more accounts and deploys more services per account — every
//! account starts exploration from a different base-host cell. The paper
//! notes the catch: providers cap *new* accounts at tiny quotas (e.g. 10
//! instances per service), and earning full quotas takes months of
//! sustained usage — additional time and financial cost the model captures
//! through account standing.

use std::collections::BTreeSet;

use eaao_cloudsim::ids::InstanceId;
use eaao_cloudsim::service::ServiceSpec;
use eaao_orchestrator::error::LaunchError;
use eaao_orchestrator::world::World;
use eaao_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::strategy::{OptimizedLaunch, StrategyReport};

/// Configuration of the multi-account strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiAccountLaunch {
    /// Attacker-controlled accounts.
    pub accounts: usize,
    /// Whether the accounts are established (full quotas) or freshly
    /// created (capped at 10 instances per service — the strategy then
    /// fails to prime anything).
    pub established: bool,
    /// The per-account priming campaign.
    pub per_account: OptimizedLaunch,
}

impl Default for MultiAccountLaunch {
    fn default() -> Self {
        MultiAccountLaunch {
            accounts: 3,
            established: true,
            per_account: OptimizedLaunch::default(),
        }
    }
}

impl MultiAccountLaunch {
    /// Runs the campaign from every account in parallel ticks (accounts
    /// are independent customers; their services prime concurrently).
    ///
    /// # Errors
    ///
    /// Propagates any [`LaunchError`] — notably the quota rejection when
    /// `established` is false and the per-launch instance count exceeds a
    /// new account's cap.
    pub fn run(&self, world: &mut World) -> Result<StrategyReport, LaunchError> {
        let wall_start = world.now();
        let accounts: Vec<_> = (0..self.accounts)
            .map(|_| {
                if self.established {
                    world.create_account()
                } else {
                    world.create_new_account()
                }
            })
            .collect();
        let cost_start: f64 = accounts.iter().map(|&a| world.billed_for(a).as_usd()).sum();

        let spec = ServiceSpec::default().with_max_instances(1_000);
        let mut services = Vec::new();
        for &account in &accounts {
            for _ in 0..self.per_account.services {
                services.push(world.deploy_service(account, spec));
            }
        }

        let mut live: Vec<InstanceId> = Vec::new();
        let mut launches = 0;
        let config = &self.per_account;
        for k in 0..config.launches_per_service {
            let last = k + 1 == config.launches_per_service;
            for &service in &services {
                let launch = world.launch(service, config.instances_per_launch)?;
                launches += 1;
                if last {
                    live.extend_from_slice(launch.instances());
                }
            }
            world.advance(config.hold);
            if !last {
                for &service in &services {
                    world.kill_all(service);
                }
                let rest = config.interval - config.hold;
                if !rest.is_negative() {
                    world.advance(rest);
                }
            }
        }
        live.retain(|&id| world.instance(id).is_alive());
        let hosts: BTreeSet<_> = live.iter().map(|&i| world.host_of(i)).collect();
        let cost_end: f64 = accounts.iter().map(|&a| world.billed_for(a).as_usd()).sum();
        Ok(StrategyReport {
            services,
            hosts_occupied: hosts.len(),
            live_instances: live,
            launches,
            cost: eaao_cloudsim::pricing::Cost::from_usd(cost_end - cost_start),
            wall: world.now() - wall_start,
        })
    }
}

/// Convenience: hold duration shared with the single-account strategy.
pub const DEFAULT_HOLD: SimDuration = SimDuration::from_secs(30);

#[cfg(test)]
mod tests {
    use super::*;
    use eaao_orchestrator::config::RegionConfig;
    use eaao_orchestrator::error::LaunchError;

    fn small_campaign() -> OptimizedLaunch {
        OptimizedLaunch {
            services: 2,
            launches_per_service: 3,
            instances_per_launch: 300,
            ..OptimizedLaunch::default()
        }
    }

    #[test]
    fn more_accounts_cover_more_hosts() {
        let footprint = |accounts: usize| {
            let mut world = World::new(RegionConfig::us_central1(), 71);
            MultiAccountLaunch {
                accounts,
                established: true,
                per_account: small_campaign(),
            }
            .run(&mut world)
            .expect("fits")
            .hosts_occupied
        };
        let one = footprint(1);
        let three = footprint(3);
        assert!(
            three > one + 50,
            "3 accounts ({three} hosts) should beat 1 ({one})"
        );
    }

    #[test]
    fn new_accounts_hit_the_quota_wall() {
        // The paper's caveat: fresh accounts are capped at 10 instances per
        // service — the priming strategy cannot even start.
        let mut world = World::new(RegionConfig::us_west1(), 72);
        let err = MultiAccountLaunch {
            accounts: 2,
            established: false,
            per_account: small_campaign(),
        }
        .run(&mut world)
        .expect_err("capped accounts cannot launch 300 instances");
        assert!(matches!(
            err,
            LaunchError::ExceedsAccountQuota { quota: 10, .. }
        ));
    }

    #[test]
    fn new_accounts_can_run_tiny_campaigns() {
        // Within the cap the strategy works, just uselessly small.
        let mut world = World::new(RegionConfig::us_west1(), 73);
        let report = MultiAccountLaunch {
            accounts: 2,
            established: false,
            per_account: OptimizedLaunch {
                services: 1,
                launches_per_service: 2,
                instances_per_launch: 10,
                ..OptimizedLaunch::default()
            },
        }
        .run(&mut world)
        .expect("within the new-account cap");
        assert_eq!(report.live_instances.len(), 20);
        assert!(report.hosts_occupied <= 10);
    }

    #[test]
    fn cost_scales_with_accounts() {
        let cost = |accounts: usize| {
            let mut world = World::new(RegionConfig::us_east1(), 74);
            MultiAccountLaunch {
                accounts,
                established: true,
                per_account: small_campaign(),
            }
            .run(&mut world)
            .expect("fits")
            .cost
            .as_usd()
        };
        let one = cost(1);
        let two = cost(2);
        assert!(
            (two / one - 2.0).abs() < 0.3,
            "one ${one:.2}, two ${two:.2}"
        );
    }
}
