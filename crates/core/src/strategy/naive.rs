//! Strategy 1: naive instance launching (Section 5.2).
//!
//! The attacker simply launches numerous instances from services in a cold
//! state — no insight into placement. All instances land on the attacker
//! account's base hosts, so co-location succeeds only when the victim
//! happens to share those base hosts (the bimodal overlap of
//! Observations 3–4).

use std::collections::BTreeSet;

use eaao_cloudsim::ids::{AccountId, InstanceId};
use eaao_cloudsim::service::ServiceSpec;
use eaao_orchestrator::error::LaunchError;
use eaao_orchestrator::world::World;
use eaao_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::strategy::{note_strategy_report, StrategyReport};

/// Configuration of the naive strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NaiveLaunch {
    /// Services to deploy (the paper uses 6).
    pub services: usize,
    /// Instances per service (the paper uses 800, totalling 4800).
    pub instances_per_service: usize,
    /// How long the fleet stays connected after launching (drives cost).
    pub hold: SimDuration,
}

impl Default for NaiveLaunch {
    fn default() -> Self {
        NaiveLaunch {
            services: 6,
            instances_per_service: 800,
            hold: SimDuration::from_secs(30),
        }
    }
}

impl NaiveLaunch {
    /// Runs the strategy under `account`, leaving all instances connected.
    ///
    /// # Errors
    ///
    /// Propagates any [`LaunchError`].
    pub fn run(
        &self,
        world: &mut World,
        account: AccountId,
    ) -> Result<StrategyReport, LaunchError> {
        let mut strategy_span = eaao_obs::span("strategy.naive");
        strategy_span.u64_field("services", self.services as u64);
        let wall_start = world.now();
        let cost_start = world.billed_for(account);
        let spec = ServiceSpec::default().with_max_instances(1_000);
        let mut live: Vec<InstanceId> = Vec::new();
        let mut services = Vec::new();
        let mut launches = 0;
        for _ in 0..self.services {
            let service = world.deploy_service(account, spec);
            services.push(service);
            let launch = world.launch(service, self.instances_per_service)?;
            launches += 1;
            live.extend_from_slice(launch.instances());
        }
        world.advance(self.hold);
        let hosts: BTreeSet<_> = live.iter().map(|&i| world.host_of(i)).collect();
        let report = StrategyReport {
            services,
            hosts_occupied: hosts.len(),
            live_instances: live,
            launches,
            cost: world.billed_for(account) - cost_start,
            wall: world.now() - wall_start,
        };
        note_strategy_report(&mut strategy_span, &report);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eaao_orchestrator::config::RegionConfig;

    #[test]
    fn naive_attacker_stays_on_base_hosts() {
        let mut world = World::new(RegionConfig::us_east1(), 1);
        let attacker = world.create_account();
        let strategy = NaiveLaunch {
            services: 3,
            instances_per_service: 400,
            ..NaiveLaunch::default()
        };
        let report = strategy.run(&mut world, attacker).expect("fits");
        assert_eq!(report.live_instances.len(), 1_200);
        assert_eq!(report.launches, 3);
        // Footprint confined to (roughly) the base host set.
        let base = world.base_hosts_of(attacker).len();
        assert!(
            report.hosts_occupied <= base + 10,
            "naive footprint {} exceeds base {base}",
            report.hosts_occupied
        );
        assert!(report.mean_density() > 1.0);
        assert!(report.cost.as_usd() >= 0.0);
    }

    #[test]
    fn services_of_one_account_share_base_hosts() {
        let mut world = World::new(RegionConfig::us_east1(), 2);
        let attacker = world.create_account();
        let a = NaiveLaunch {
            services: 1,
            instances_per_service: 800,
            ..NaiveLaunch::default()
        }
        .run(&mut world, attacker)
        .expect("fits");
        let b = NaiveLaunch {
            services: 1,
            instances_per_service: 800,
            ..NaiveLaunch::default()
        }
        .run(&mut world, attacker)
        .expect("fits");
        let hosts_a: BTreeSet<_> = a.live_instances.iter().map(|&i| world.host_of(i)).collect();
        let hosts_b: BTreeSet<_> = b.live_instances.iter().map(|&i| world.host_of(i)).collect();
        let overlap = hosts_a.intersection(&hosts_b).count();
        assert!(
            overlap * 2 > hosts_a.len(),
            "different services should share base hosts ({overlap} shared)"
        );
    }
}
