//! Instance launching strategies (Section 5.2).
//!
//! * [`naive`] — Strategy 1: launch thousands of instances from cold
//!   services and hope. Fails whenever the attacker's and victim's base
//!   hosts differ.
//! * [`optimized`] — Strategy 2: prime services into a high-demand state
//!   with repeated large launches at a ~10-minute interval, spreading the
//!   attacker across helper hosts.
//! * [`explore`] — the cluster-size estimation campaign (Figure 12):
//!   many services from several accounts, each primed, to enumerate the
//!   data center's serving pool.
//! * [`multi_account`] — the Section 5.2 optimization of attacking from
//!   several accounts (and the new-account quota wall that limits it).
//! * [`repeat`] — fingerprint-guided repeated attacks on the same victim:
//!   record the victim's hosts once, focus the extraction fleet later.

pub mod explore;
pub mod multi_account;
pub mod naive;
pub mod optimized;
pub mod repeat;

use eaao_cloudsim::ids::{InstanceId, ServiceId};
use eaao_cloudsim::pricing::Cost;
use eaao_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

pub use explore::{ClusterExplorer, ExplorationReport};
pub use multi_account::MultiAccountLaunch;
pub use naive::NaiveLaunch;
pub use optimized::OptimizedLaunch;
pub use repeat::{RepeatAttackOutcome, RepeatedAttack, VictimHostRecord};

/// What a strategy run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyReport {
    /// The services the strategy deployed.
    pub services: Vec<ServiceId>,
    /// Attacker instances still alive (connected) at the end of the run.
    pub live_instances: Vec<InstanceId>,
    /// Distinct hosts those instances occupy (ground truth).
    pub hosts_occupied: usize,
    /// Total launches issued.
    pub launches: usize,
    /// Billed cost of the run.
    pub cost: Cost,
    /// Wall time of the run.
    pub wall: SimDuration,
}

impl StrategyReport {
    /// Instances per occupied host, on average.
    pub fn mean_density(&self) -> f64 {
        if self.hosts_occupied == 0 {
            0.0
        } else {
            self.live_instances.len() as f64 / self.hosts_occupied as f64
        }
    }
}

/// Annotates a strategy span with the report's headline numbers and feeds
/// the shared counters every launching strategy reports.
pub(crate) fn note_strategy_report(span: &mut eaao_obs::SpanGuard, report: &StrategyReport) {
    span.u64_field("hosts_occupied", report.hosts_occupied as u64);
    span.u64_field("launches", report.launches as u64);
    span.u64_field("live_instances", report.live_instances.len() as u64);
    eaao_obs::count("strategy.launches", report.launches as u64);
    eaao_obs::count(
        "strategy.spend_microusd",
        (report.cost.as_usd() * 1e6).round() as u64,
    );
    eaao_obs::observe("strategy.hosts_occupied", report.hosts_occupied as u64);
}
