//! Strategy 2: optimized instance launching (Section 5.2).
//!
//! The attacker primes each service into a high-demand state by repeatedly
//! launching many instances at a ~10-minute interval, exploiting the
//! load balancer of Observation 5 to spread onto helper hosts. Several
//! services are primed in sequence — their helper sets differ but overlap
//! (Observation 6), so the union footprint keeps growing. Instances are
//! killed after each launch except the final one, whose instances carry
//! the subsequent side-channel attack.

use std::collections::BTreeSet;

use eaao_cloudsim::ids::{AccountId, InstanceId};
use eaao_cloudsim::service::ServiceSpec;
use eaao_orchestrator::error::LaunchError;
use eaao_orchestrator::world::World;
use eaao_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::strategy::{note_strategy_report, StrategyReport};

/// Configuration of the optimized strategy (paper defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizedLaunch {
    /// Services to prime (the paper uses 6).
    pub services: usize,
    /// Launches per service (the paper uses 6).
    pub launches_per_service: usize,
    /// Instances per launch (the paper uses 800).
    pub instances_per_launch: usize,
    /// Interval between launches of one service.
    pub interval: SimDuration,
    /// How long each launch's instances stay connected (drives cost; ~30 s
    /// reproduces the paper's ~$23–27 per-attack estimates).
    pub hold: SimDuration,
}

impl Default for OptimizedLaunch {
    fn default() -> Self {
        OptimizedLaunch {
            services: 6,
            launches_per_service: 6,
            instances_per_launch: 800,
            interval: SimDuration::from_mins(10),
            hold: SimDuration::from_secs(30),
        }
    }
}

impl OptimizedLaunch {
    /// Runs the strategy under `account`. Services are primed in parallel:
    /// every ~10 minutes all of them launch together, hold briefly, and are
    /// killed — except the final round, whose instances stay connected to
    /// carry the attack. (Priming in parallel is what keeps the campaign
    /// around an hour and its cost in the paper's ~$23–27 range; holding
    /// thousands of instances connected for hours would dominate the bill.)
    ///
    /// # Errors
    ///
    /// Propagates any [`LaunchError`].
    pub fn run(
        &self,
        world: &mut World,
        account: AccountId,
    ) -> Result<StrategyReport, LaunchError> {
        let mut strategy_span = eaao_obs::span("strategy.optimized");
        strategy_span.u64_field("services", self.services as u64);
        strategy_span.u64_field("launches_per_service", self.launches_per_service as u64);
        let wall_start = world.now();
        let cost_start = world.billed_for(account);
        let spec = ServiceSpec::default().with_max_instances(1_000);
        let services: Vec<_> = (0..self.services)
            .map(|_| world.deploy_service(account, spec))
            .collect();
        let mut live: Vec<InstanceId> = Vec::new();
        let mut launches = 0;
        for k in 0..self.launches_per_service {
            let last = k + 1 == self.launches_per_service;
            for &service in &services {
                let launch = world.launch(service, self.instances_per_launch)?;
                launches += 1;
                if last {
                    live.extend_from_slice(launch.instances());
                }
            }
            world.advance(self.hold);
            if !last {
                for &service in &services {
                    world.kill_all(service);
                }
                let rest = self.interval - self.hold;
                if !rest.is_negative() {
                    world.advance(rest);
                }
            }
        }
        // Some held instances may have been churned; keep the survivors.
        live.retain(|&id| world.instance(id).is_alive());
        let hosts: BTreeSet<_> = live.iter().map(|&i| world.host_of(i)).collect();
        let report = StrategyReport {
            services,
            hosts_occupied: hosts.len(),
            live_instances: live,
            launches,
            cost: world.billed_for(account) - cost_start,
            wall: world.now() - wall_start,
        };
        note_strategy_report(&mut strategy_span, &report);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eaao_orchestrator::config::RegionConfig;

    #[test]
    fn priming_spreads_far_beyond_base_hosts() {
        let mut world = World::new(RegionConfig::us_east1(), 1);
        let attacker = world.create_account();
        let report = OptimizedLaunch::default()
            .run(&mut world, attacker)
            .expect("fits");
        let base = world.base_hosts_of(attacker).len();
        assert!(
            report.hosts_occupied > 2 * base,
            "optimized footprint {} should dwarf base {base}",
            report.hosts_occupied
        );
        assert_eq!(report.launches, 36);
        // The final launches stay alive: 6 × 800 instances.
        assert_eq!(report.live_instances.len(), 4_800);
    }

    #[test]
    fn cost_is_tens_of_dollars_not_hundreds() {
        let mut world = World::new(RegionConfig::us_east1(), 2);
        let attacker = world.create_account();
        let report = OptimizedLaunch::default()
            .run(&mut world, attacker)
            .expect("fits");
        // Paper: $24 / $23 / $27 across the three data centers.
        let usd = report.cost.as_usd();
        assert!((10.0..60.0).contains(&usd), "cost ${usd:.2}");
    }

    #[test]
    fn wall_time_is_hours() {
        let mut world = World::new(RegionConfig::us_west1(), 3);
        let attacker = world.create_account();
        let config = OptimizedLaunch {
            services: 2,
            launches_per_service: 3,
            ..OptimizedLaunch::default()
        };
        let report = config.run(&mut world, attacker).expect("fits");
        // Parallel priming: 2 rounds × 10 min + final 30 s hold ≈ 20.5 min.
        let mins = report.wall.as_secs_f64() / 60.0;
        assert!((20.0..=25.0).contains(&mins), "wall {mins:.1} min");
    }

    #[test]
    fn more_services_cover_more_hosts() {
        let mut world = World::new(RegionConfig::us_east1(), 4);
        let attacker = world.create_account();
        let one = OptimizedLaunch {
            services: 1,
            ..OptimizedLaunch::default()
        }
        .run(&mut world, attacker)
        .expect("fits");
        let mut world2 = World::new(RegionConfig::us_east1(), 4);
        let attacker2 = world2.create_account();
        let many = OptimizedLaunch {
            services: 4,
            ..OptimizedLaunch::default()
        }
        .run(&mut world2, attacker2)
        .expect("fits");
        assert!(
            many.hosts_occupied > one.hosts_occupied,
            "4 services {} <= 1 service {}",
            many.hosts_occupied,
            one.hosts_occupied
        );
    }
}
