//! Cluster-size estimation (Section 5.2, "Scale of Cloud Run clusters",
//! Figure 12).
//!
//! The attacker deploys several services from each of several accounts and
//! primes all of them, recording the *apparent host* footprint (distinct
//! fingerprints) of every launch. The cumulative number of unique apparent
//! hosts flattens out, and its limit estimates the size of the serving
//! pool. Starting from different accounts explores different base hosts,
//! reaching new regions of the pool faster.

use std::collections::BTreeSet;

use eaao_cloudsim::ids::AccountId;
use eaao_cloudsim::service::ServiceSpec;
use eaao_orchestrator::error::LaunchError;
use eaao_orchestrator::world::World;
use eaao_simcore::series::Series;
use eaao_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::fingerprint::{Gen1Fingerprint, Gen1Fingerprinter};
use crate::probe::probe_fleet;

/// Configuration of the exploration campaign (paper defaults: 3 accounts ×
/// 8 services × 4 launches = 96 launches).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterExplorer {
    /// Accounts to explore from.
    pub accounts: usize,
    /// Services deployed per account.
    pub services_per_account: usize,
    /// Launches per service.
    pub launches_per_service: usize,
    /// Instances per launch.
    pub instances_per_launch: usize,
    /// Interval between launches of one service (keeps services hot).
    pub interval: SimDuration,
}

impl Default for ClusterExplorer {
    fn default() -> Self {
        ClusterExplorer {
            accounts: 3,
            services_per_account: 8,
            launches_per_service: 4,
            instances_per_launch: 800,
            interval: SimDuration::from_mins(10),
        }
    }
}

/// Result of an exploration campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplorationReport {
    /// Cumulative unique apparent hosts after each launch (x = launch id).
    pub cumulative: Series,
    /// The final estimate: total unique apparent hosts found.
    pub estimated_hosts: usize,
    /// Ground truth: hosts in the data center (simulation-side; the paper
    /// can only lower-bound this).
    pub true_hosts: usize,
}

impl ClusterExplorer {
    /// Runs the campaign. Accounts are created inside the world.
    ///
    /// # Errors
    ///
    /// Propagates any [`LaunchError`].
    pub fn run(&self, world: &mut World) -> Result<ExplorationReport, LaunchError> {
        let fingerprinter = Gen1Fingerprinter::default();
        let mut seen: BTreeSet<Gen1Fingerprint> = BTreeSet::new();
        let mut cumulative = Series::new("cumulative unique apparent hosts");
        let mut launch_id = 0;
        let accounts: Vec<AccountId> = (0..self.accounts).map(|_| world.create_account()).collect();
        let spec = ServiceSpec::default().with_max_instances(1_000);
        for &account in &accounts {
            for _ in 0..self.services_per_account {
                let service = world.deploy_service(account, spec);
                for _ in 0..self.launches_per_service {
                    let launch = world.launch(service, self.instances_per_launch)?;
                    let readings =
                        probe_fleet(world, launch.instances(), SimDuration::from_millis(10));
                    for reading in &readings {
                        if let Some(fp) = fingerprinter.fingerprint(reading) {
                            seen.insert(fp);
                        }
                    }
                    launch_id += 1;
                    cumulative.push(launch_id as f64, seen.len() as f64);
                    world.kill_all(service);
                    world.advance(self.interval);
                }
            }
        }
        Ok(ExplorationReport {
            estimated_hosts: seen.len(),
            true_hosts: world.data_center().len(),
            cumulative,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eaao_orchestrator::config::RegionConfig;

    #[test]
    fn exploration_discovers_most_of_a_small_pool() {
        let mut world = World::new(RegionConfig::us_west1(), 1);
        let explorer = ClusterExplorer {
            accounts: 2,
            services_per_account: 3,
            launches_per_service: 3,
            ..ClusterExplorer::default()
        };
        let report = explorer.run(&mut world).expect("fits");
        assert_eq!(report.cumulative.len(), 18);
        // A small pool (205 hosts) is mostly enumerated.
        assert!(
            report.estimated_hosts as f64 > 0.8 * report.true_hosts as f64,
            "found {} of {}",
            report.estimated_hosts,
            report.true_hosts
        );
        // Estimates exceed reality only by fingerprint drift noise: over a
        // multi-hour campaign a few percent of hosts cross a rounding
        // boundary and appear twice.
        assert!(
            report.estimated_hosts <= report.true_hosts + report.true_hosts / 20,
            "estimate {} too far above truth {}",
            report.estimated_hosts,
            report.true_hosts
        );
    }

    #[test]
    fn cumulative_growth_flattens() {
        let mut world = World::new(RegionConfig::us_west1(), 2);
        let explorer = ClusterExplorer {
            accounts: 2,
            services_per_account: 3,
            launches_per_service: 4,
            ..ClusterExplorer::default()
        };
        let report = explorer.run(&mut world).expect("fits");
        let ys = report.cumulative.ys();
        let n = ys.len();
        let early_growth = ys[n / 2] - ys[0];
        let late_growth = ys[n - 1] - ys[n / 2];
        assert!(
            late_growth < early_growth,
            "growth should flatten: early {early_growth}, late {late_growth}"
        );
        // Monotone non-decreasing.
        assert!(ys.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn more_accounts_explore_faster() {
        let run = |accounts: usize, seed: u64| {
            let mut world = World::new(RegionConfig::us_east1(), seed);
            ClusterExplorer {
                accounts,
                services_per_account: 2,
                launches_per_service: 2,
                ..ClusterExplorer::default()
            }
            .run(&mut world)
            .expect("fits")
            .estimated_hosts
        };
        let one = run(1, 3);
        let three = run(3, 3);
        assert!(three > one, "3 accounts {three} <= 1 account {one}");
    }
}
