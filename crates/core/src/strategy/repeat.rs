//! Repeated attacks against the same victim (Section 5.2, "Potential
//! attack optimizations").
//!
//! "If the attacker intends to repeatedly attack services from the same
//! victim account, an optimization is to record the fingerprints of hosts
//! used by the victim during the first attack. These hosts can be the base
//! hosts preferred by the victim. Therefore, in the subsequent attacks
//! targeting the same victim, the attacker can focus side-channel attack
//! efforts on hosts with fingerprints that match the fingerprints recorded
//! in the first attack."
//!
//! Concretely: after the first attack, the attacker fingerprints its own
//! co-located instances and keeps the fingerprints of every host where a
//! victim instance was confirmed. In a later attack, the attacker runs the
//! same priming campaign but then *retains only* the instances whose host
//! fingerprints match the recorded set, terminating the rest — the
//! extraction phase (the expensive part, where instances must stay busy
//! monitoring the side channel) runs on a fraction of the fleet.

use std::collections::BTreeSet;

use eaao_cloudsim::ids::{AccountId, InstanceId};
use eaao_orchestrator::error::LaunchError;
use eaao_orchestrator::world::World;
use eaao_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::coverage::measure_coverage;
use crate::experiment::PROBE_GAP;
use crate::fingerprint::{Gen1Fingerprint, Gen1Fingerprinter};
use crate::probe::probe_fleet;
use crate::strategy::OptimizedLaunch;
use crate::verify::ctest::{ctest, CTestConfig};

/// Fingerprints of hosts where the victim was confirmed during an attack.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VictimHostRecord {
    fingerprints: BTreeSet<Gen1Fingerprint>,
}

impl VictimHostRecord {
    /// Number of recorded victim hosts.
    pub fn len(&self) -> usize {
        self.fingerprints.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.fingerprints.is_empty()
    }

    /// Whether a fingerprint matches a recorded victim host.
    pub fn matches(&self, fingerprint: &Gen1Fingerprint) -> bool {
        self.fingerprints.contains(fingerprint)
    }
}

/// Outcome of one attack in a repeated campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepeatAttackOutcome {
    /// Instances retained for the extraction phase.
    pub retained_instances: Vec<InstanceId>,
    /// Instances the attacker launched in total.
    pub launched_instances: usize,
    /// Victim instance coverage of the retained fleet (ground truth).
    pub coverage: f64,
    /// Cost of the attack including an extraction phase of the configured
    /// length, in USD.
    pub cost_usd: f64,
}

/// A repeated-attack campaign against one victim account.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepeatedAttack {
    /// The priming campaign used in each attack.
    pub campaign: OptimizedLaunch,
    /// How long the extraction phase keeps instances connected and busy
    /// (this is what focusing makes cheap).
    pub extraction_hold: SimDuration,
}

impl Default for RepeatedAttack {
    fn default() -> Self {
        RepeatedAttack {
            campaign: OptimizedLaunch::default(),
            extraction_hold: SimDuration::from_hours(1),
        }
    }
}

impl RepeatedAttack {
    /// The first attack: prime, confirm co-location with the victim over
    /// the covert channel, record the fingerprints of confirmed victim
    /// hosts, and run the extraction phase on the *full* fleet.
    ///
    /// # Errors
    ///
    /// Propagates any [`LaunchError`].
    pub fn first_attack(
        &self,
        world: &mut World,
        attacker: AccountId,
        victim_instances: &[InstanceId],
    ) -> Result<(RepeatAttackOutcome, VictimHostRecord), LaunchError> {
        let cost_start = world.billed_for(attacker).as_usd();
        let report = self.campaign.run(world, attacker)?;
        let launched = report.live_instances.len();

        // Confirm victim co-location pairwise over the covert channel and
        // record the fingerprints of confirmed hosts.
        let fingerprinter = Gen1Fingerprinter::default();
        let own = probe_fleet(world, &report.live_instances, PROBE_GAP);
        let mut record = VictimHostRecord::default();
        let mut covered = 0usize;
        let config = CTestConfig::default();
        for &victim in victim_instances {
            // Candidate = any own instance on the victim's host; testing
            // one instance per distinct own fingerprint would be the
            // fingerprint-guided path — here (first attack) the attacker
            // has no record yet, so test victim against a sample of its
            // own fleet grouped by host fingerprint.
            let mut confirmed = None;
            let mut seen = BTreeSet::new();
            for reading in &own {
                let Some(fp) = fingerprinter.fingerprint(reading) else {
                    continue;
                };
                if !seen.insert(fp.clone()) {
                    continue;
                }
                if !world.instance(victim).is_alive() {
                    break;
                }
                let verdicts = ctest(world, &[victim, reading.instance], &config)
                    .map_err(|_| LaunchError::UnknownService(world.instance(victim).service()))
                    .unwrap_or_else(|_| vec![false, false]);
                if verdicts[0] && verdicts[1] {
                    confirmed = Some(fp);
                    break;
                }
            }
            if let Some(fp) = confirmed {
                covered += 1;
                record.fingerprints.insert(fp);
            }
        }

        // Extraction phase on the full fleet, then disconnect: the attack
        // is over and idle instances are free (and soon reaped).
        world.advance(self.extraction_hold);
        for service in &report.services {
            world.disconnect_all(*service);
        }
        let cost = world.billed_for(attacker).as_usd() - cost_start;
        Ok((
            RepeatAttackOutcome {
                coverage: covered as f64 / victim_instances.len().max(1) as f64,
                retained_instances: report.live_instances,
                launched_instances: launched,
                cost_usd: cost,
            },
            record,
        ))
    }

    /// A subsequent attack against the same victim: prime as before, but
    /// retain only the instances whose host fingerprints match the
    /// recorded victim hosts; everything else is killed before the
    /// extraction phase.
    ///
    /// # Errors
    ///
    /// Propagates any [`LaunchError`].
    pub fn focused_attack(
        &self,
        world: &mut World,
        attacker: AccountId,
        record: &VictimHostRecord,
        victim_instances: &[InstanceId],
    ) -> Result<RepeatAttackOutcome, LaunchError> {
        let cost_start = world.billed_for(attacker).as_usd();
        let report = self.campaign.run(world, attacker)?;
        let launched = report.live_instances.len();

        // Keep only instances on recorded victim hosts.
        let fingerprinter = Gen1Fingerprinter::default();
        let own = probe_fleet(world, &report.live_instances, PROBE_GAP);
        let retained: Vec<InstanceId> = own
            .iter()
            .filter(|r| {
                fingerprinter
                    .fingerprint(r)
                    .is_some_and(|fp| record.matches(&fp))
            })
            .map(|r| r.instance)
            .collect();
        let retained_set: BTreeSet<InstanceId> = retained.iter().copied().collect();
        for service in &report.services {
            // Kill everything not retained: disconnecting would leave them
            // idle (free) but the attacker wants the capacity released.
            let doomed: Vec<InstanceId> = world
                .alive_instances_of(*service)
                .into_iter()
                .filter(|id| !retained_set.contains(id))
                .collect();
            for id in doomed {
                world.kill_instance(id);
            }
        }

        // Extraction phase on the focused fleet only, then disconnect.
        world.advance(self.extraction_hold);
        for service in &report.services {
            world.disconnect_all(*service);
        }
        let cost = world.billed_for(attacker).as_usd() - cost_start;
        let coverage =
            measure_coverage(world, &retained, victim_instances).victim_instance_coverage();
        Ok(RepeatAttackOutcome {
            retained_instances: retained,
            launched_instances: launched,
            coverage,
            cost_usd: cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eaao_cloudsim::service::ServiceSpec;
    use eaao_orchestrator::config::RegionConfig;

    fn setup(seed: u64) -> (World, AccountId, Vec<InstanceId>) {
        let mut world = World::new(RegionConfig::us_west1(), seed);
        let attacker = world.create_account();
        let victim = world.create_account();
        let victim_service = world.deploy_service(victim, ServiceSpec::default());
        let victims = world
            .launch(victim_service, 40)
            .expect("victim fits")
            .instances()
            .to_vec();
        (world, attacker, victims)
    }

    fn small_attack() -> RepeatedAttack {
        RepeatedAttack {
            campaign: OptimizedLaunch {
                services: 2,
                launches_per_service: 3,
                instances_per_launch: 300,
                ..OptimizedLaunch::default()
            },
            extraction_hold: SimDuration::from_mins(30),
        }
    }

    #[test]
    fn first_attack_records_victim_hosts() {
        let (mut world, attacker, victims) = setup(81);
        let (outcome, record) = small_attack()
            .first_attack(&mut world, attacker, &victims)
            .expect("fits");
        assert!(outcome.coverage > 0.8, "coverage {}", outcome.coverage);
        assert!(!record.is_empty());
        // At most one fingerprint per victim host.
        assert!(record.len() <= 10, "recorded {} hosts", record.len());
    }

    #[test]
    fn focused_attack_is_cheaper_with_comparable_coverage() {
        let (mut world, attacker, victims) = setup(82);
        let attack = small_attack();
        let (first, record) = attack
            .first_attack(&mut world, attacker, &victims)
            .expect("fits");
        // Victim stays up; attacker strikes again later.
        world.advance(SimDuration::from_mins(45));
        let focused = attack
            .focused_attack(&mut world, attacker, &record, &victims)
            .expect("fits");
        assert!(
            focused.retained_instances.len() * 3 < focused.launched_instances,
            "retained {} of {}",
            focused.retained_instances.len(),
            focused.launched_instances
        );
        assert!(
            focused.cost_usd < first.cost_usd * 0.6,
            "focused ${:.2} vs first ${:.2}",
            focused.cost_usd,
            first.cost_usd
        );
        assert!(
            focused.coverage > first.coverage * 0.7,
            "focused coverage {} vs first {}",
            focused.coverage,
            first.coverage
        );
    }

    #[test]
    fn empty_record_retains_nothing() {
        let (mut world, attacker, victims) = setup(83);
        let record = VictimHostRecord::default();
        let outcome = small_attack()
            .focused_attack(&mut world, attacker, &record, &victims)
            .expect("fits");
        assert!(outcome.retained_instances.is_empty());
        assert_eq!(outcome.coverage, 0.0);
    }
}
