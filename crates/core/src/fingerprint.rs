//! Host fingerprints (Sections 4.1, 4.2 and 4.5).
//!
//! * [`Gen1Fingerprint`] — CPU model + derived boot time rounded to
//!   `p_boot`. Nearly perfect (FMI ≈ 0.9999 at `p_boot` between 100 ms and
//!   1 s) but drifts over days because the reported frequency is inexact.
//! * [`Gen2Fingerprint`] — the host's kernel-refined TSC frequency read as
//!   `tsc_khz` in the guest. Coarse (several hosts share a value; the paper
//!   measures ~2.0 hosts per fingerprint and precision 0.48) but free of
//!   false negatives, because refinement happens once per host boot.

// tidy:allow(determinism) -- `group_by_fingerprint` sequences its output by the explicit `order` vec, never by map order
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use eaao_simcore::time::{SimDuration, SimTime};
use eaao_tsc::freq::parse_base_frequency;
use eaao_tsc::refine::RefinedTscFrequency;
use serde::{Deserialize, Serialize};

use crate::probe::ProbeReading;

/// A Gen 1 host fingerprint: `(model, rounded T_boot)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Gen1Fingerprint {
    model: String,
    boot_bucket: SimTime,
}

impl Gen1Fingerprint {
    /// The CPU model component.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// The rounded boot-time component.
    pub fn boot_bucket(&self) -> SimTime {
        self.boot_bucket
    }
}

impl fmt::Display for Gen1Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} | boot {}]", self.model, self.boot_bucket)
    }
}

/// Derives [`Gen1Fingerprint`]s from probe readings at a configurable
/// rounding precision `p_boot`.
///
/// # Examples
///
/// ```
/// use eaao_core::fingerprint::Gen1Fingerprinter;
/// use eaao_simcore::time::SimDuration;
///
/// let fp = Gen1Fingerprinter::new(SimDuration::from_secs(1));
/// assert_eq!(fp.precision(), SimDuration::from_secs(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gen1Fingerprinter {
    p_boot: SimDuration,
}

impl Gen1Fingerprinter {
    /// The paper's default precision: 1 s (Section 4.4.1).
    pub const DEFAULT_PRECISION: SimDuration = SimDuration::from_secs(1);

    /// Creates a fingerprinter with rounding precision `p_boot`.
    ///
    /// # Panics
    ///
    /// Panics if `p_boot` is not positive.
    pub fn new(p_boot: SimDuration) -> Self {
        assert!(p_boot.as_nanos() > 0, "p_boot must be positive");
        Gen1Fingerprinter { p_boot }
    }

    /// The rounding precision in effect.
    pub fn precision(&self) -> SimDuration {
        self.p_boot
    }

    /// Derives the fingerprint from a probe reading.
    ///
    /// Returns `None` when the model name carries no parseable base
    /// frequency — the reported-frequency method cannot run there.
    pub fn fingerprint(&self, reading: &ProbeReading) -> Option<Gen1Fingerprint> {
        let reported = parse_base_frequency(&reading.model)?;
        let boot = reading
            .tsc_sample()
            .derive_rounded_boot_time(reported, self.p_boot);
        Some(Gen1Fingerprint {
            model: reading.model.clone(),
            boot_bucket: boot,
        })
    }

    /// The *unrounded* derived boot time, used for drift tracking
    /// (Section 4.4.2).
    pub fn raw_boot_time(&self, reading: &ProbeReading) -> Option<SimTime> {
        let reported = parse_base_frequency(&reading.model)?;
        Some(reading.tsc_sample().derive_boot_time(reported))
    }
}

impl Default for Gen1Fingerprinter {
    fn default() -> Self {
        Gen1Fingerprinter::new(Self::DEFAULT_PRECISION)
    }
}

/// A Gen 2 host fingerprint: the refined host TSC frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Gen2Fingerprint(RefinedTscFrequency);

impl Gen2Fingerprint {
    /// Derives the fingerprint from a probe reading.
    ///
    /// Returns `None` in environments that do not export `tsc_khz`
    /// (i.e. Gen 1).
    pub fn from_reading(reading: &ProbeReading) -> Option<Gen2Fingerprint> {
        reading.tsc_khz.map(Gen2Fingerprint)
    }

    /// The underlying refined frequency.
    pub fn refined(&self) -> RefinedTscFrequency {
        self.0
    }
}

impl fmt::Display for Gen2Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[tsc_khz {}]", self.0)
    }
}

/// Groups readings by an extracted fingerprint, preserving insertion order
/// of the groups.
///
/// Readings for which `extract` returns `None` are dropped (and counted in
/// the second return value).
pub fn group_by_fingerprint<F, K>(
    readings: &[ProbeReading],
    mut extract: F,
) -> (Vec<(K, Vec<usize>)>, usize)
where
    F: FnMut(&ProbeReading) -> Option<K>,
    K: Eq + Hash + Clone,
{
    let mut order: Vec<K> = Vec::new();
    // tidy:allow(determinism) -- keyed lookups only; output order comes from `order` (first-seen), key bound is `Hash` (public API)
    let mut groups: HashMap<K, Vec<usize>> = HashMap::new();
    let mut dropped = 0;
    for (idx, reading) in readings.iter().enumerate() {
        match extract(reading) {
            Some(key) => {
                let entry = groups.entry(key.clone()).or_default();
                if entry.is_empty() {
                    order.push(key);
                }
                entry.push(idx);
            }
            None => dropped += 1,
        }
    }
    let grouped = order
        .into_iter()
        .map(|k| {
            let members = groups.remove(&k).expect("key recorded");
            (k, members)
        })
        .collect();
    (grouped, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eaao_cloudsim::ids::InstanceId;

    fn reading(model: &str, tsc: u64, wall_s: f64) -> ProbeReading {
        ProbeReading {
            instance: InstanceId::from_raw(0),
            model: model.to_owned(),
            tsc,
            wall: SimTime::from_secs_f64(wall_s),
            tsc_khz: None,
        }
    }

    #[test]
    fn gen1_fingerprint_derives_boot_bucket() {
        let fp = Gen1Fingerprinter::default();
        // 2 GHz, 20 G ticks = 10 s uptime, measured at t = 110 s.
        let r = reading("Intel(R) Xeon(R) CPU @ 2.00GHz", 20_000_000_000, 110.0);
        let f = fp.fingerprint(&r).expect("parseable");
        assert_eq!(f.boot_bucket(), SimTime::from_secs(100));
        assert_eq!(f.model(), "Intel(R) Xeon(R) CPU @ 2.00GHz");
        assert!(f.to_string().contains("boot"));
        assert_eq!(
            fp.raw_boot_time(&r).expect("parseable"),
            SimTime::from_secs(100)
        );
    }

    #[test]
    fn same_host_same_fingerprint_despite_noise() {
        let fp = Gen1Fingerprinter::default();
        let a = reading("Intel Xeon CPU @ 2.00GHz", 20_000_000_000, 110.2);
        let b = reading("Intel Xeon CPU @ 2.00GHz", 20_000_000_000, 109.9);
        assert_eq!(fp.fingerprint(&a), fp.fingerprint(&b));
    }

    #[test]
    fn different_models_never_match() {
        let fp = Gen1Fingerprinter::default();
        let a = reading("Intel Xeon CPU @ 2.00GHz", 20_000_000_000, 110.0);
        let b = reading("Intel Xeon CPU @ 2.20GHz", 22_000_000_000, 110.0);
        // Same derived boot time, different model.
        assert_ne!(fp.fingerprint(&a), fp.fingerprint(&b));
    }

    #[test]
    fn unparseable_model_yields_none() {
        let fp = Gen1Fingerprinter::default();
        let r = reading("AMD EPYC 7B12", 1_000, 1.0);
        assert!(fp.fingerprint(&r).is_none());
        assert!(fp.raw_boot_time(&r).is_none());
    }

    #[test]
    #[should_panic(expected = "p_boot must be positive")]
    fn rejects_zero_precision() {
        Gen1Fingerprinter::new(SimDuration::ZERO);
    }

    #[test]
    fn gen2_fingerprint_from_khz() {
        let mut r = reading("virtualized", 5, 1.0);
        assert!(Gen2Fingerprint::from_reading(&r).is_none());
        r.tsc_khz = Some(RefinedTscFrequency::from_khz(2_000_007));
        let f = Gen2Fingerprint::from_reading(&r).expect("khz present");
        assert_eq!(f.refined().as_khz(), 2_000_007);
        assert!(f.to_string().contains("2000007"));
    }

    #[test]
    fn grouping_preserves_order_and_counts_drops() {
        let fp = Gen1Fingerprinter::default();
        let readings = vec![
            reading("Intel Xeon CPU @ 2.00GHz", 20_000_000_000, 110.0),
            reading("AMD EPYC 7B12", 1, 1.0), // dropped
            reading("Intel Xeon CPU @ 2.00GHz", 20_000_000_000, 110.1),
            reading("Intel Xeon CPU @ 2.20GHz", 22_000_000_000, 110.0),
        ];
        let (groups, dropped) = group_by_fingerprint(&readings, |r| fp.fingerprint(r));
        assert_eq!(dropped, 1);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].1, vec![0, 2]);
        assert_eq!(groups[1].1, vec![3]);
    }
}
