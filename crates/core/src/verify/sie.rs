//! Single Instance Elimination (İnci et al.) — the pairwise-testing
//! speed-up the paper shows is ineffective on FaaS (Section 4.3).
//!
//! SIE tests *all* instances simultaneously and removes those that observe
//! no contention: they cannot be co-located with anyone. On EC2-style VM
//! fleets this prunes most instances. On a FaaS platform the orchestrator
//! deliberately packs many instances of the same service onto shared hosts
//! (Observation 1), so essentially every instance is co-located with some
//! other instance and SIE removes nothing.

use eaao_cloudsim::ids::InstanceId;
use eaao_orchestrator::error::GuestError;
use eaao_orchestrator::world::World;
use serde::{Deserialize, Serialize};

use crate::verify::ctest::{ctest, CTestConfig};
use crate::verify::pairwise::pair_count;

/// Result of one SIE filtering pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SieOutcome {
    /// Instances that survived (tested positive — co-located with someone).
    pub survivors: Vec<InstanceId>,
    /// Instances eliminated (tested negative — alone on their hosts).
    pub eliminated: Vec<InstanceId>,
}

impl SieOutcome {
    /// Fraction of instances eliminated — SIE's effectiveness.
    pub fn elimination_rate(&self) -> f64 {
        let total = self.survivors.len() + self.eliminated.len();
        if total == 0 {
            0.0
        } else {
            self.eliminated.len() as f64 / total as f64
        }
    }

    /// Pairwise tests still required after filtering.
    pub fn remaining_pairwise_tests(&self) -> usize {
        pair_count(self.survivors.len())
    }
}

/// Runs one SIE pass: every instance pressures at once; negatives are
/// eliminated.
///
/// # Errors
///
/// Returns a [`GuestError`] if any instance is unknown or dead.
pub fn single_instance_elimination(
    world: &mut World,
    instances: &[InstanceId],
) -> Result<SieOutcome, GuestError> {
    let config = CTestConfig::default();
    let verdicts = ctest(world, instances, &config)?;
    let mut survivors = Vec::new();
    let mut eliminated = Vec::new();
    for (&id, &positive) in instances.iter().zip(&verdicts) {
        if positive {
            survivors.push(id);
        } else {
            eliminated.push(id);
        }
    }
    Ok(SieOutcome {
        survivors,
        eliminated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eaao_cloudsim::service::ServiceSpec;
    use eaao_orchestrator::config::RegionConfig;

    #[test]
    fn sie_is_ineffective_on_faas() {
        // A FaaS launch packs instances together: SIE removes (almost)
        // nothing and the pairwise campaign stays quadratic.
        let mut world = World::new(RegionConfig::us_west1().with_hosts(30), 1);
        let account = world.create_account();
        let service =
            world.deploy_service(account, ServiceSpec::default().with_max_instances(1_000));
        let launch = world.launch(service, 200).expect("fits");
        let outcome = single_instance_elimination(&mut world, launch.instances()).expect("alive");
        assert!(
            outcome.elimination_rate() < 0.05,
            "SIE eliminated {:.0}%",
            outcome.elimination_rate() * 100.0
        );
        assert!(outcome.remaining_pairwise_tests() > pair_count(190));
    }

    #[test]
    fn sie_prunes_genuinely_solo_instances() {
        // Scatter a handful of instances across a large pool: most land
        // alone and are eliminated.
        let mut world = World::new(RegionConfig::us_east1().with_hosts(400), 2);
        let account = world.create_account();
        let service =
            world.deploy_service(account, ServiceSpec::default().with_max_instances(1_000));
        let launch = world.launch(service, 8).expect("fits");
        // With a ~90-host base set and 8 instances the spread leaves most
        // instances alone (density target keeps 1 host each).
        let outcome = single_instance_elimination(&mut world, launch.instances()).expect("alive");
        // Verify against ground truth: eliminated instances really are solo
        // among the participants.
        for &id in &outcome.eliminated {
            let co = launch
                .instances()
                .iter()
                .filter(|&&other| other != id && world.co_located(id, other))
                .count();
            assert_eq!(co, 0, "eliminated instance {id} was co-located");
        }
    }

    #[test]
    fn empty_input_is_trivial() {
        let mut world = World::new(RegionConfig::us_west1().with_hosts(10), 3);
        let outcome = single_instance_elimination(&mut world, &[]).expect("trivial");
        assert_eq!(outcome.elimination_rate(), 0.0);
        assert_eq!(outcome.remaining_pairwise_tests(), 0);
    }
}
