//! The paper's scalable co-location verification (Section 4.3, Figure 3).
//!
//! Given instances pre-grouped by fingerprint, the verifier
//!
//! 1. splits every group into sub-groups of at most `2m − 1` instances,
//! 2. `CTest`s each sub-group, merging verified co-located members into
//!    clusters, then hierarchically merges sub-group representatives —
//!    falling back to pairwise tests inside a group only when the
//!    hierarchy disagrees (fingerprint false positives),
//! 3. sweeps for false negatives: one representative per cluster, all
//!    tested at once; positives are refined pairwise and their clusters
//!    merged.
//!
//! Best case — accurate fingerprints — the cost is O(number of hosts),
//! versus O(N²) for conventional pairwise testing. The Gen 2 fingerprint
//! cannot produce false negatives, so step 3 can be skipped entirely
//! (Section 4.5).

use eaao_cloudsim::ids::InstanceId;
use eaao_cloudsim::pricing::Cost;
use eaao_orchestrator::error::GuestError;
use eaao_orchestrator::world::World;
use eaao_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::cluster::CoLocationForest;
use crate::verify::ctest::{ctest_via, CTestConfig, VerifierChannel};

/// Accounting for one verification campaign.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VerifierStats {
    /// Multi-instance `CTest` invocations.
    pub ctests: usize,
    /// Pairwise tests issued by the fallback path.
    pub pairwise_fallback_tests: usize,
    /// Wall time consumed (tests are serialized to avoid interference).
    pub wall: SimDuration,
    /// Billed cost of keeping the instances active during the campaign.
    pub cost: Cost,
}

/// The result of verifying a set of instances.
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationOutcome {
    /// Verified co-location clusters (each sorted, ordered by first
    /// member). Every input instance appears exactly once.
    pub clusters: Vec<Vec<InstanceId>>,
    /// Test accounting.
    pub stats: VerifierStats,
}

impl VerificationOutcome {
    /// Cluster labels aligned with `instances` — for metric computation.
    ///
    /// # Panics
    ///
    /// Panics if an instance was not part of the verification.
    pub fn labels_for(&self, instances: &[InstanceId]) -> Vec<usize> {
        instances
            .iter()
            .map(|id| {
                self.clusters
                    .iter()
                    .position(|c| c.contains(id))
                    // tidy:allow(panic-policy) -- documented `# Panics` contract: callers pass verified instances only
                    .unwrap_or_else(|| panic!("instance {id} not verified"))
            })
            .collect()
    }
}

/// The scalable verifier.
#[derive(Debug, Clone, Copy)]
pub struct HierarchicalVerifier {
    config: CTestConfig,
    /// The physical channel every test runs over (default: the paper's
    /// RNG unit; the campaign `verifier` axis selects the bus channel).
    channel: VerifierChannel,
    /// Skip the false-negative sweep (valid for Gen 2 fingerprints, which
    /// cannot split one host across fingerprints).
    skip_false_negative_sweep: bool,
}

impl HierarchicalVerifier {
    /// Creates a verifier with the paper's default test parameters
    /// (`m = 2`, 30-of-60 rounds, RNG channel).
    pub fn new() -> Self {
        HierarchicalVerifier {
            config: CTestConfig::default(),
            channel: VerifierChannel::RngCtest,
            skip_false_negative_sweep: false,
        }
    }

    /// Uses a custom `CTest` configuration.
    pub fn with_config(mut self, config: CTestConfig) -> Self {
        config.validate();
        self.config = config;
        self
    }

    /// Runs every test over an explicit [`VerifierChannel`].
    pub fn with_channel(mut self, channel: VerifierChannel) -> Self {
        self.channel = channel;
        self
    }

    /// Skips step 3 — sound when fingerprints cannot produce false
    /// negatives (Gen 2).
    pub fn without_false_negative_sweep(mut self) -> Self {
        self.skip_false_negative_sweep = true;
        self
    }

    /// Verifies `groups` (instances pre-grouped by fingerprint) and
    /// returns the ground-truth co-location clusters plus accounting.
    ///
    /// # Errors
    ///
    /// Returns a [`GuestError`] if any instance dies mid-campaign.
    ///
    /// # Panics
    ///
    /// Panics if an instance appears in two groups.
    pub fn verify(
        &self,
        world: &mut World,
        groups: &[Vec<InstanceId>],
    ) -> Result<VerificationOutcome, GuestError> {
        let mut verify_span = eaao_obs::span("verify.hierarchical");
        verify_span.u64_field("groups", groups.len() as u64);
        let all: Vec<InstanceId> = groups.iter().flatten().copied().collect();
        verify_span.u64_field("instances", all.len() as u64);
        let mut forest = CoLocationForest::new(all);
        let mut stats = VerifierStats::default();
        let wall_start = world.now();
        let cost_start = world.billed();

        // Step 2: verify each fingerprint group.
        for group in groups {
            self.verify_group(world, group, &mut forest, &mut stats)?;
        }

        // Step 3: false-negative sweep across cluster representatives.
        if !self.skip_false_negative_sweep {
            self.false_negative_sweep(world, &mut forest, &mut stats)?;
        }

        stats.wall = world.now() - wall_start;
        stats.cost = world.billed() - cost_start;
        verify_span.u64_field("ctests", stats.ctests as u64);
        verify_span.u64_field("pairwise_fallback", stats.pairwise_fallback_tests as u64);
        eaao_obs::observe("verify.sim_ns", stats.wall.as_nanos() as u64);
        eaao_obs::count(
            "verify.cost_microusd",
            (stats.cost.as_usd() * 1e6).round() as u64,
        );
        Ok(VerificationOutcome {
            clusters: forest.clusters(),
            stats,
        })
    }

    /// Splits a fingerprint group into `≤ 2m−1` chunks, tests each, and
    /// hierarchically merges the chunk representatives.
    fn verify_group(
        &self,
        world: &mut World,
        group: &[InstanceId],
        forest: &mut CoLocationForest,
        stats: &mut VerifierStats,
    ) -> Result<(), GuestError> {
        if group.len() < 2 {
            return Ok(());
        }
        let max = self.config.max_unambiguous_group();
        for chunk in group.chunks(max) {
            if chunk.len() >= 2 {
                self.test_and_merge(world, chunk, forest, stats)?;
            }
        }
        // Hierarchically merge representatives of the sub-clusters.
        loop {
            let reps = self.representatives(group, forest);
            if reps.len() < 2 {
                return Ok(());
            }
            let mut merged_any = false;
            for chunk in reps.chunks(max) {
                if chunk.len() >= 2 && self.test_and_merge(world, chunk, forest, stats)? {
                    merged_any = true;
                }
            }
            if !merged_any {
                break;
            }
        }
        // The hierarchy saw negatives (a fingerprint false positive split
        // the group across hosts): fall back to pairwise tests inside the
        // group, as the paper does for simplicity.
        let reps = self.representatives(group, forest);
        for i in 0..reps.len() {
            for j in (i + 1)..reps.len() {
                if forest.same_cluster(reps[i], reps[j]) {
                    continue;
                }
                let verdicts = ctest_via(world, &[reps[i], reps[j]], &self.config, self.channel)?;
                stats.pairwise_fallback_tests += 1;
                if verdicts[0] && verdicts[1] {
                    forest.merge(reps[i], reps[j]);
                }
            }
        }
        Ok(())
    }

    /// Runs one `CTest`; merges the verified positives. Returns whether a
    /// merge happened.
    fn test_and_merge(
        &self,
        world: &mut World,
        participants: &[InstanceId],
        forest: &mut CoLocationForest,
        stats: &mut VerifierStats,
    ) -> Result<bool, GuestError> {
        debug_assert!(participants.len() <= self.config.max_unambiguous_group());
        let verdicts = ctest_via(world, participants, &self.config, self.channel)?;
        stats.ctests += 1;
        let positives: Vec<InstanceId> = participants
            .iter()
            .zip(&verdicts)
            .filter_map(|(&id, &v)| v.then_some(id))
            .collect();
        // At least m instances must be co-located for any to test
        // positive; within 2m−1 participants they share one host.
        if positives.len() >= self.config.threshold_m as usize {
            forest.merge_all(&positives);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// One representative (smallest id) per current cluster among
    /// `members`.
    fn representatives(
        &self,
        members: &[InstanceId],
        forest: &mut CoLocationForest,
    ) -> Vec<InstanceId> {
        let mut reps: Vec<InstanceId> = Vec::new();
        let mut seen: Vec<InstanceId> = Vec::new();
        for &m in members {
            if seen.iter().any(|&r| forest.same_cluster(r, m)) {
                continue;
            }
            seen.push(m);
            reps.push(m);
        }
        reps
    }

    /// Step 3: test one representative per cluster, all at once; refine
    /// positives pairwise and merge their clusters.
    fn false_negative_sweep(
        &self,
        world: &mut World,
        forest: &mut CoLocationForest,
        stats: &mut VerifierStats,
    ) -> Result<(), GuestError> {
        let reps: Vec<InstanceId> = forest.clusters().iter().map(|c| c[0]).collect();
        if reps.len() < 2 {
            return Ok(());
        }
        let verdicts = ctest_via(world, &reps, &self.config, self.channel)?;
        stats.ctests += 1;
        let positives: Vec<InstanceId> = reps
            .iter()
            .zip(&verdicts)
            .filter_map(|(&id, &v)| v.then_some(id))
            .collect();
        // Refine: find which positive representatives actually share hosts.
        for i in 0..positives.len() {
            for j in (i + 1)..positives.len() {
                if forest.same_cluster(positives[i], positives[j]) {
                    continue;
                }
                let verdicts = ctest_via(
                    world,
                    &[positives[i], positives[j]],
                    &self.config,
                    self.channel,
                )?;
                stats.ctests += 1;
                if verdicts[0] && verdicts[1] {
                    forest.merge(positives[i], positives[j]);
                }
            }
        }
        Ok(())
    }
}

impl Default for HierarchicalVerifier {
    fn default() -> Self {
        HierarchicalVerifier::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eaao_cloudsim::service::ServiceSpec;
    use eaao_orchestrator::config::RegionConfig;
    use std::collections::HashMap;

    fn launch_world(seed: u64, count: usize) -> (World, Vec<InstanceId>) {
        let mut world = World::new(RegionConfig::us_west1().with_hosts(40), seed);
        let account = world.create_account();
        let service =
            world.deploy_service(account, ServiceSpec::default().with_max_instances(1_000));
        let launch = world.launch(service, count).expect("fits");
        (world, launch.instances().to_vec())
    }

    fn true_groups(world: &World, ids: &[InstanceId]) -> Vec<Vec<InstanceId>> {
        let mut map: HashMap<_, Vec<InstanceId>> = HashMap::new();
        for &id in ids {
            map.entry(world.host_of(id)).or_default().push(id);
        }
        let mut groups: Vec<Vec<InstanceId>> = map.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }

    fn clusters_match_ground_truth(
        world: &World,
        outcome: &VerificationOutcome,
        ids: &[InstanceId],
    ) -> bool {
        let mut truth = true_groups(world, ids);
        let mut got = outcome.clusters.clone();
        truth.sort();
        got.sort();
        truth == got
    }

    #[test]
    fn perfect_groups_verify_in_one_pass() {
        let (mut world, ids) = launch_world(1, 80);
        let groups = true_groups(&world, &ids);
        let verifier = HierarchicalVerifier::new();
        let outcome = verifier.verify(&mut world, &groups).expect("alive");
        assert!(clusters_match_ground_truth(&world, &outcome, &ids));
        assert!(outcome.stats.ctests > 0);
        assert_eq!(outcome.stats.pairwise_fallback_tests, 0);
        assert!(outcome.stats.wall.as_secs_f64() > 0.0);
        assert!(outcome.stats.cost.as_usd() > 0.0);
    }

    #[test]
    fn false_positive_groups_get_split() {
        let (mut world, ids) = launch_world(2, 60);
        // Merge everything into one big bogus "fingerprint group".
        let groups = vec![ids.clone()];
        let verifier = HierarchicalVerifier::new();
        let outcome = verifier.verify(&mut world, &groups).expect("alive");
        assert!(clusters_match_ground_truth(&world, &outcome, &ids));
    }

    #[test]
    fn false_negative_groups_get_merged() {
        let (mut world, ids) = launch_world(3, 60);
        // Every instance its own group: only the step-3 sweep can merge.
        let groups: Vec<Vec<InstanceId>> = ids.iter().map(|&i| vec![i]).collect();
        let verifier = HierarchicalVerifier::new();
        let outcome = verifier.verify(&mut world, &groups).expect("alive");
        assert!(clusters_match_ground_truth(&world, &outcome, &ids));
    }

    #[test]
    fn skipping_sweep_saves_tests_but_keeps_splits() {
        let (mut world, ids) = launch_world(4, 60);
        let groups: Vec<Vec<InstanceId>> = ids.iter().map(|&i| vec![i]).collect();
        let verifier = HierarchicalVerifier::new().without_false_negative_sweep();
        let outcome = verifier.verify(&mut world, &groups).expect("alive");
        // Without the sweep, the bogus all-singleton grouping stays split.
        assert_eq!(outcome.clusters.len(), ids.len());
        assert_eq!(outcome.stats.ctests, 0);
    }

    #[test]
    fn best_case_test_count_scales_with_hosts_not_pairs() {
        let (mut world, ids) = launch_world(5, 100);
        let groups = true_groups(&world, &ids);
        let host_count = groups.len();
        let verifier = HierarchicalVerifier::new();
        let outcome = verifier.verify(&mut world, &groups).expect("alive");
        let pairwise_count = ids.len() * (ids.len() - 1) / 2;
        assert!(
            outcome.stats.ctests < pairwise_count / 10,
            "hierarchical used {} tests vs {} pairwise",
            outcome.stats.ctests,
            pairwise_count
        );
        // Rough O(hosts): each host needs a handful of chunk tests plus
        // the rep hierarchy and one sweep.
        assert!(
            outcome.stats.ctests <= host_count * 8 + 2,
            "{} tests for {} hosts",
            outcome.stats.ctests,
            host_count
        );
    }

    #[test]
    fn labels_align_with_input() {
        let (mut world, ids) = launch_world(6, 30);
        let groups = true_groups(&world, &ids);
        let outcome = HierarchicalVerifier::new()
            .verify(&mut world, &groups)
            .expect("alive");
        let labels = outcome.labels_for(&ids);
        for (i, &a) in ids.iter().enumerate() {
            for (j, &b) in ids.iter().enumerate() {
                assert_eq!(
                    labels[i] == labels[j],
                    world.co_located(a, b),
                    "label mismatch for {a}/{b}"
                );
            }
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let (mut world, ids) = launch_world(7, 1);
        let outcome = HierarchicalVerifier::new()
            .verify(&mut world, &[])
            .expect("trivial");
        assert!(outcome.clusters.is_empty());
        let outcome = HierarchicalVerifier::new()
            .verify(&mut world, &[vec![ids[0]]])
            .expect("trivial");
        assert_eq!(outcome.clusters, vec![vec![ids[0]]]);
        assert_eq!(outcome.stats.ctests, 0);
    }
}
