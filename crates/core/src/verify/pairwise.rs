//! Conventional pairwise co-location testing — the baseline the paper's
//! method replaces (Section 4.3, "Comparison with conventional pairwise
//! covert-channel testing").
//!
//! Every unique pair of instances is tested with a serialized two-party
//! covert-channel test. For 800 instances that is 319,600 tests; at an
//! optimistic 100 ms per test the campaign takes ~8.9 hours and ~$645 of
//! active-instance time, against minutes and single-digit dollars for the
//! hierarchical method.

use eaao_cloudsim::ids::InstanceId;
use eaao_cloudsim::pricing::Cost;
use eaao_orchestrator::error::GuestError;
use eaao_orchestrator::world::World;
use eaao_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::cluster::CoLocationForest;
use crate::verify::ctest::{ctest, CTestConfig};

/// Which two-party covert channel the pairwise baseline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PairwiseChannel {
    /// The RNG-unit channel (~100 ms per test) — the paper's optimistic
    /// assumption.
    #[default]
    RngUnit,
    /// The memory-bus channel of Varadarajan et al. (~seconds per test).
    MemoryBus,
}

/// Accounting for a pairwise campaign.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PairwiseStats {
    /// Pairwise tests executed.
    pub tests: usize,
    /// Wall time consumed (tests are serialized to avoid interference).
    pub wall: SimDuration,
    /// Billed cost of the campaign.
    pub cost: Cost,
}

/// Result of pairwise verification.
#[derive(Debug, Clone, PartialEq)]
pub struct PairwiseOutcome {
    /// Co-location clusters implied by the pairwise verdicts.
    pub clusters: Vec<Vec<InstanceId>>,
    /// Accounting.
    pub stats: PairwiseStats,
}

/// Runs the full O(N²) pairwise campaign over `instances`.
///
/// # Errors
///
/// Returns a [`GuestError`] if any instance dies mid-campaign.
// tidy:allow(panic-reachability) -- `i` and `j` range over 0..instances.len(), and ctest returns one verdict per participant passed in.
pub fn pairwise_verify(
    world: &mut World,
    instances: &[InstanceId],
    channel: PairwiseChannel,
) -> Result<PairwiseOutcome, GuestError> {
    let mut forest = CoLocationForest::new(instances.iter().copied());
    let mut stats = PairwiseStats::default();
    let wall_start = world.now();
    let cost_start = world.billed();
    let config = CTestConfig::default();
    for i in 0..instances.len() {
        for j in (i + 1)..instances.len() {
            let (a, b) = (instances[i], instances[j]);
            stats.tests += 1;
            let positive = match channel {
                PairwiseChannel::RngUnit => {
                    let verdicts = ctest(world, &[a, b], &config)?;
                    verdicts[0] && verdicts[1]
                }
                PairwiseChannel::MemoryBus => world.membus_pairwise_test(a, b)?,
            };
            if positive {
                forest.merge(a, b);
            }
        }
    }
    stats.wall = world.now() - wall_start;
    stats.cost = world.billed() - cost_start;
    Ok(PairwiseOutcome {
        clusters: forest.clusters(),
        stats,
    })
}

/// Number of unique pairs among `n` instances — the campaign length.
pub fn pair_count(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use eaao_cloudsim::service::ServiceSpec;
    use eaao_orchestrator::config::RegionConfig;
    use std::collections::HashMap;

    fn launch_world(seed: u64, count: usize) -> (World, Vec<InstanceId>) {
        let mut world = World::new(RegionConfig::us_west1().with_hosts(30), seed);
        let account = world.create_account();
        let service =
            world.deploy_service(account, ServiceSpec::default().with_max_instances(1_000));
        let launch = world.launch(service, count).expect("fits");
        (world, launch.instances().to_vec())
    }

    #[test]
    fn paper_pair_count() {
        assert_eq!(pair_count(800), 319_600);
        assert_eq!(pair_count(0), 0);
        assert_eq!(pair_count(1), 0);
        assert_eq!(pair_count(2), 1);
    }

    #[test]
    fn recovers_ground_truth_clusters() {
        let (mut world, ids) = launch_world(1, 24);
        let outcome = pairwise_verify(&mut world, &ids, PairwiseChannel::RngUnit).expect("alive");
        let mut truth: HashMap<_, Vec<InstanceId>> = HashMap::new();
        for &id in &ids {
            truth.entry(world.host_of(id)).or_default().push(id);
        }
        let mut truth: Vec<Vec<InstanceId>> = truth.into_values().collect();
        truth.sort();
        let mut got = outcome.clusters.clone();
        got.sort();
        assert_eq!(truth, got);
        assert_eq!(outcome.stats.tests, pair_count(24));
    }

    #[test]
    fn wall_time_scales_quadratically() {
        let (mut world, ids) = launch_world(2, 20);
        let outcome = pairwise_verify(&mut world, &ids, PairwiseChannel::RngUnit).expect("alive");
        // 190 serialized ~100 ms tests ≈ 19 s.
        let expected = 0.1 * pair_count(20) as f64;
        assert!(
            (outcome.stats.wall.as_secs_f64() - expected).abs() / expected < 0.05,
            "wall {}",
            outcome.stats.wall
        );
        assert!(outcome.stats.cost.as_usd() > 0.0);
    }

    #[test]
    fn membus_channel_is_slower() {
        let (mut world, ids) = launch_world(3, 6);
        let outcome = pairwise_verify(&mut world, &ids, PairwiseChannel::MemoryBus).expect("alive");
        // 15 tests × 3 s.
        assert!(outcome.stats.wall >= SimDuration::from_secs(45));
    }
}
