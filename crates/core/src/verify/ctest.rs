//! The `CTest` covert-channel primitive (Section 4.3).
//!
//! `CTest(i₁, …, iₙ) → {b₁, …, bₙ}` instructs all `n` instances to pressure
//! the shared RNG unit simultaneously and reports, per instance, whether it
//! observed contention at or above a threshold of `m` units in enough
//! measurement rounds.
//!
//! Each participant contributes one unit of contention (its own pressure
//! counts towards the total on its host), so with threshold `m` it takes at
//! least `m` co-located participants for any of them to test positive; if
//! between `m` and `2m−1` participants test positive, they are verified to
//! share a single host in one test.
//!
//! The test protocol is channel-agnostic: [`VerifierChannel`] selects the
//! physical medium the contention runs over — the paper's RNG unit, or the
//! Close Talker `/lock`–`/check` memory-bus channel (PAPERS.md, arxiv
//! 2512.10361), whose per-platform noise floors the `calib` experiment
//! sweeps. Campaign grids expose this as the `verifier` axis.

use std::fmt;

use eaao_cloudsim::ids::InstanceId;
use eaao_cloudsim::rng_unit::is_positive;
use eaao_orchestrator::error::GuestError;
use eaao_orchestrator::world::World;
use serde::{Deserialize, Serialize};

/// Configuration of one `CTest` invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CTestConfig {
    /// Contention threshold `m`, in units (participants per host, including
    /// the observer).
    pub threshold_m: u32,
    /// Measurement rounds per test (the paper uses 60).
    pub rounds: usize,
    /// Rounds that must meet the threshold for a positive verdict (the
    /// paper requires 30 of 60).
    pub min_positive_rounds: usize,
}

impl Default for CTestConfig {
    fn default() -> Self {
        CTestConfig {
            threshold_m: 2,
            rounds: 60,
            min_positive_rounds: 30,
        }
    }
}

impl CTestConfig {
    /// The largest group testable without host-count ambiguity: `2m − 1`
    /// (Section 4.3).
    pub fn max_unambiguous_group(&self) -> usize {
        (2 * self.threshold_m - 1) as usize
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2`, `rounds` is zero, or the positive-round bar
    /// exceeds the round count.
    pub fn validate(&self) {
        assert!(self.threshold_m >= 2, "threshold m must be at least 2");
        assert!(self.rounds > 0, "rounds must be positive");
        assert!(
            self.min_positive_rounds <= self.rounds,
            "cannot require more positives than rounds"
        );
    }
}

/// The physical covert channel a multi-party co-location test runs over.
///
/// Both channels produce the same observation shape (contention units per
/// round), so the threshold decision and every verifier built on
/// [`ctest`] work unchanged over either; what differs is the noise floor
/// (per-platform for the bus channel) and the wall-clock cost per round
/// (microseconds vs milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum VerifierChannel {
    /// The paper's RNG-unit contention channel (§4.3) — the default.
    RngCtest,
    /// The Close Talker `/lock`–`/check` memory-bus channel.
    MembusLockCheck,
}

// Serialized as the canonical grid-axis name, by hand — the vendored
// serde derive has no `#[serde(rename)]`.
impl Serialize for VerifierChannel {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.name().to_owned())
    }
}

impl Deserialize for VerifierChannel {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let text = v.as_str().ok_or_else(|| {
            serde::Error::custom(format!("expected verifier name, got {}", v.kind()))
        })?;
        VerifierChannel::parse(text)
            .ok_or_else(|| serde::Error::custom(format!("unknown verifier {text:?}")))
    }
}

impl VerifierChannel {
    /// Every channel, in canonical grid order.
    pub const ALL: [VerifierChannel; 2] =
        [VerifierChannel::RngCtest, VerifierChannel::MembusLockCheck];

    /// The canonical grid-axis name (`rng-ctest`, `membus-lockcheck`).
    pub fn name(self) -> &'static str {
        match self {
            VerifierChannel::RngCtest => "rng-ctest",
            VerifierChannel::MembusLockCheck => "membus-lockcheck",
        }
    }

    /// Parses a canonical name; `None` for anything unknown.
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.name() == name)
    }
}

impl fmt::Display for VerifierChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs one `CTest` over `participants`, returning each participant's
/// verdict.
///
/// Advances the simulation clock by the test duration.
///
/// # Errors
///
/// Returns a [`GuestError`] if any participant is unknown or dead.
///
/// # Panics
///
/// Panics on an invalid `config` (see [`CTestConfig::validate`]).
pub fn ctest(
    world: &mut World,
    participants: &[InstanceId],
    config: &CTestConfig,
) -> Result<Vec<bool>, GuestError> {
    ctest_via(world, participants, config, VerifierChannel::RngCtest)
}

/// Runs one multi-party co-location test over an explicit channel — the
/// generalization of [`ctest`] behind the campaign `verifier` axis.
///
/// Advances the simulation clock by the test duration (channel-dependent:
/// the bus channel's rounds are ~150× slower).
///
/// # Errors
///
/// Returns a [`GuestError`] if any participant is unknown or dead.
///
/// # Panics
///
/// Panics on an invalid `config` (see [`CTestConfig::validate`]).
pub fn ctest_via(
    world: &mut World,
    participants: &[InstanceId],
    config: &CTestConfig,
    channel: VerifierChannel,
) -> Result<Vec<bool>, GuestError> {
    config.validate();
    eaao_obs::count("verify.ctests", 1);
    eaao_obs::count("verify.ctest_participants", participants.len() as u64);
    let observations = match channel {
        VerifierChannel::RngCtest => world.rng_covert_observations(participants, config.rounds)?,
        VerifierChannel::MembusLockCheck => {
            world.membus_lock_observations(participants, config.rounds)?
        }
    };
    Ok(observations
        .iter()
        .map(|obs| {
            // The observer's own unit counts towards the total, so it needs
            // to *see* only m − 1 units from others.
            is_positive(obs, config.threshold_m - 1, config.min_positive_rounds)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eaao_cloudsim::ids::HostId;
    use eaao_cloudsim::service::ServiceSpec;
    use eaao_orchestrator::config::RegionConfig;
    use std::collections::HashMap;

    fn world_with_instances(seed: u64, count: usize) -> (World, Vec<InstanceId>) {
        let mut world = World::new(RegionConfig::us_west1().with_hosts(40), seed);
        let account = world.create_account();
        let service =
            world.deploy_service(account, ServiceSpec::default().with_max_instances(1_000));
        let launch = world.launch(service, count).expect("fits");
        let ids = launch.instances().to_vec();
        (world, ids)
    }

    fn by_host(world: &World, ids: &[InstanceId]) -> HashMap<HostId, Vec<InstanceId>> {
        let mut map: HashMap<HostId, Vec<InstanceId>> = HashMap::new();
        for &id in ids {
            map.entry(world.host_of(id)).or_default().push(id);
        }
        map
    }

    #[test]
    fn co_located_pair_tests_positive_with_m2() {
        let (mut world, ids) = world_with_instances(1, 60);
        let hosts = by_host(&world, &ids);
        let pair = hosts.values().find(|v| v.len() >= 2).expect("pair");
        let verdicts = ctest(&mut world, &pair[..2], &CTestConfig::default()).expect("alive");
        assert_eq!(verdicts, vec![true, true]);
    }

    #[test]
    fn separated_pair_tests_negative() {
        let (mut world, ids) = world_with_instances(2, 60);
        let a = ids[0];
        let b = ids
            .iter()
            .copied()
            .find(|&i| world.host_of(i) != world.host_of(a))
            .expect("other host");
        let verdicts = ctest(&mut world, &[a, b], &CTestConfig::default()).expect("alive");
        assert_eq!(verdicts, vec![false, false]);
    }

    #[test]
    fn higher_threshold_needs_more_co_location() {
        let (mut world, ids) = world_with_instances(3, 120);
        let hosts = by_host(&world, &ids);
        let trio = hosts.values().find(|v| v.len() >= 3).expect("trio");
        let m3 = CTestConfig {
            threshold_m: 3,
            ..CTestConfig::default()
        };
        // Two co-located instances are below an m=3 threshold...
        let verdicts = ctest(&mut world, &trio[..2], &m3).expect("alive");
        assert_eq!(verdicts, vec![false, false]);
        // ...but three clear it.
        let verdicts = ctest(&mut world, &trio[..3], &m3).expect("alive");
        assert_eq!(verdicts, vec![true, true, true]);
    }

    #[test]
    fn mixed_group_flags_only_the_co_located() {
        let (mut world, ids) = world_with_instances(4, 60);
        let hosts = by_host(&world, &ids);
        let pair = hosts.values().find(|v| v.len() >= 2).expect("pair");
        let solo = ids
            .iter()
            .copied()
            .find(|&i| world.host_of(i) != world.host_of(pair[0]))
            .expect("solo");
        let group = [pair[0], pair[1], solo];
        let verdicts = ctest(&mut world, &group, &CTestConfig::default()).expect("alive");
        assert_eq!(verdicts, vec![true, true, false]);
    }

    #[test]
    fn max_unambiguous_group_follows_m() {
        assert_eq!(CTestConfig::default().max_unambiguous_group(), 3);
        let m4 = CTestConfig {
            threshold_m: 4,
            ..CTestConfig::default()
        };
        assert_eq!(m4.max_unambiguous_group(), 7);
    }

    #[test]
    #[should_panic(expected = "threshold m must be at least 2")]
    fn rejects_m1() {
        let bad = CTestConfig {
            threshold_m: 1,
            ..CTestConfig::default()
        };
        let (mut world, ids) = world_with_instances(5, 2);
        let _ = ctest(&mut world, &ids, &bad);
    }

    #[test]
    fn dead_participant_errors() {
        let (mut world, ids) = world_with_instances(6, 2);
        let service = world.instance(ids[0]).service();
        world.kill_all(service);
        assert!(ctest(&mut world, &ids, &CTestConfig::default()).is_err());
    }

    #[test]
    fn channel_names_roundtrip() {
        for channel in VerifierChannel::ALL {
            assert_eq!(VerifierChannel::parse(channel.name()), Some(channel));
            assert_eq!(channel.to_string(), channel.name());
        }
        assert_eq!(VerifierChannel::parse("prime-probe"), None);
    }

    #[test]
    fn lockcheck_channel_agrees_with_ground_truth() {
        let (mut world, ids) = world_with_instances(7, 60);
        let hosts = by_host(&world, &ids);
        let pair = hosts.values().find(|v| v.len() >= 2).expect("pair");
        let verdicts = ctest_via(
            &mut world,
            &pair[..2],
            &CTestConfig::default(),
            VerifierChannel::MembusLockCheck,
        )
        .expect("alive");
        assert_eq!(verdicts, vec![true, true]);
        let solo = ids
            .iter()
            .copied()
            .find(|&i| world.host_of(i) != world.host_of(pair[0]))
            .expect("solo");
        let verdicts = ctest_via(
            &mut world,
            &[pair[0], solo],
            &CTestConfig::default(),
            VerifierChannel::MembusLockCheck,
        )
        .expect("alive");
        assert_eq!(verdicts, vec![false, false]);
    }

    #[test]
    fn lockcheck_channel_is_slower() {
        // 60 bus rounds at 250 ms ≫ 60 RNG rounds at 1.67 ms: the cost
        // asymmetry the calibration experiment reports.
        let (mut world, ids) = world_with_instances(8, 4);
        let t0 = world.now();
        ctest(&mut world, &ids[..2], &CTestConfig::default()).expect("alive");
        let rng_cost = world.now() - t0;
        let t1 = world.now();
        ctest_via(
            &mut world,
            &ids[..2],
            &CTestConfig::default(),
            VerifierChannel::MembusLockCheck,
        )
        .expect("alive");
        let bus_cost = world.now() - t1;
        assert!(bus_cost.as_nanos() > rng_cost.as_nanos() * 100);
    }
}
