//! Instance co-location verification (Section 4.3).
//!
//! * [`ctest`](mod@self::ctest) — the multi-party covert-channel test
//!   primitive, generic over the physical [`VerifierChannel`] (the
//!   paper's RNG unit or the Close Talker `/lock`–`/check` memory bus).
//! * [`hierarchical`] — the paper's scalable O(hosts) methodology.
//! * [`pairwise`] — the conventional O(N²) baseline.
//! * [`sie`] — Single Instance Elimination, the prior speed-up that fails
//!   on FaaS.

pub mod ctest;
pub mod hierarchical;
pub mod pairwise;
pub mod sie;

pub use ctest::{ctest, ctest_via, CTestConfig, VerifierChannel};
pub use hierarchical::{HierarchicalVerifier, VerificationOutcome, VerifierStats};
pub use pairwise::{pair_count, pairwise_verify, PairwiseChannel, PairwiseOutcome, PairwiseStats};
pub use sie::{single_instance_elimination, SieOutcome};
