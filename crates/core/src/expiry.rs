//! Fingerprint drift tracking and expiration estimation (Section 4.4.2).
//!
//! Because the Gen 1 fingerprint converts the TSC with the slightly wrong
//! *reported* frequency, the derived boot time drifts linearly in real time
//! (Eq. 4.2). The paper tracks 50 long-running instances per data center
//! for a week, fits each host's derived `T_boot` against measurement time,
//! confirms linearity (min |r| = 0.9997), and extrapolates when each
//! fingerprint crosses its next rounding boundary — its *expiration time*.

use eaao_simcore::stats::{linear_fit, LinearFit};
use eaao_simcore::time::{SimDuration, SimTime};
use eaao_tsc::boot::time_to_expiration;
use serde::{Deserialize, Serialize};

/// A time series of derived (unrounded) boot times for one tracked host.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FingerprintHistory {
    /// `(measurement time, derived boot time)` pairs.
    points: Vec<(SimTime, SimTime)>,
}

impl FingerprintHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a measurement.
    ///
    /// # Panics
    ///
    /// Panics if measurements are appended out of order.
    pub fn record(&mut self, measured_at: SimTime, derived_boot: SimTime) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(measured_at >= last, "history must be appended in order");
        }
        self.points.push((measured_at, derived_boot));
    }

    /// Number of measurements.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The observation span from first to last measurement.
    pub fn span(&self) -> SimDuration {
        match (self.points.first(), self.points.last()) {
            (Some(&(first, _)), Some(&(last, _))) => last - first,
            _ => SimDuration::ZERO,
        }
    }

    /// Fits the drift line `T_boot ≈ slope · t + intercept` (both in
    /// seconds). Returns `None` with fewer than two measurements.
    pub fn fit(&self) -> Option<LinearFit> {
        let xs: Vec<f64> = self.points.iter().map(|(t, _)| t.as_secs_f64()).collect();
        let ys: Vec<f64> = self.points.iter().map(|(_, b)| b.as_secs_f64()).collect();
        linear_fit(&xs, &ys)
    }

    /// Estimates when the fingerprint expires: the time from the *first*
    /// measurement until the drifting derived boot time crosses a rounding
    /// boundary at `precision`.
    ///
    /// Returns `None` if the history is too short to fit or the fitted
    /// drift is zero (never expires).
    pub fn estimate_expiration(&self, precision: SimDuration) -> Option<SimDuration> {
        let fit = self.fit()?;
        let &(first_t, _) = self.points.first()?;
        let derived_at_first = SimTime::from_secs_f64(fit.predict(first_t.as_secs_f64()));
        time_to_expiration(derived_at_first, fit.slope(), precision)
    }
}

/// Outcome of a drift-tracking campaign over many hosts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DriftStudy {
    /// Per-host histories that passed the minimum-span filter.
    pub histories: Vec<FingerprintHistory>,
    /// Histories discarded for being shorter than the filter.
    pub filtered_out: usize,
}

impl DriftStudy {
    /// Builds a study from raw histories, keeping only those spanning at
    /// least `min_span` (the paper filters histories shorter than 24 h).
    pub fn from_histories(
        histories: impl IntoIterator<Item = FingerprintHistory>,
        min_span: SimDuration,
    ) -> Self {
        let mut kept = Vec::new();
        let mut filtered_out = 0;
        for h in histories {
            if h.span() >= min_span && h.len() >= 2 {
                kept.push(h);
            } else {
                filtered_out += 1;
            }
        }
        DriftStudy {
            histories: kept,
            filtered_out,
        }
    }

    /// The minimum |r| across all linear fits — the paper's linearity
    /// evidence (min 0.9997).
    pub fn min_abs_r(&self) -> Option<f64> {
        self.histories
            .iter()
            .filter_map(FingerprintHistory::fit)
            .map(|f| f.r_value().abs())
            .min_by(|a, b| a.partial_cmp(b).expect("finite r"))
    }

    /// Estimated expiration times (days) for all histories that admit one.
    pub fn expiration_days(&self, precision: SimDuration) -> Vec<f64> {
        self.histories
            .iter()
            .filter_map(|h| h.estimate_expiration(precision))
            .map(|d| d.as_days_f64())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a history with a constant drift rate (s/s) sampled hourly.
    fn drifting_history(rate: f64, hours: usize, noise: f64) -> FingerprintHistory {
        let mut h = FingerprintHistory::new();
        for k in 0..hours {
            let t = SimTime::from_hours(k as i64);
            let jitter = if k % 2 == 0 { noise } else { -noise };
            let boot = SimTime::from_secs_f64(1_000.0 + rate * t.as_secs_f64() + jitter);
            h.record(t, boot);
        }
        h
    }

    #[test]
    fn fit_recovers_drift_rate() {
        let h = drifting_history(2.5e-6, 7 * 24, 1e-4);
        let fit = h.fit().expect("well-posed");
        assert!((fit.slope() - 2.5e-6).abs() < 1e-8, "slope {}", fit.slope());
        assert!(fit.r_value().abs() > 0.9997, "r {}", fit.r_value());
        assert_eq!(h.len(), 7 * 24);
        assert_eq!(h.span(), SimDuration::from_hours(7 * 24 - 1));
    }

    #[test]
    fn expiration_matches_rate_and_phase() {
        // Boot lands exactly on a bucket center (1000 s), drifting at
        // +2.5e-6: the 0.5 s half-bucket takes 200,000 s ≈ 2.31 days.
        let h = drifting_history(2.5e-6, 48, 0.0);
        let exp = h
            .estimate_expiration(SimDuration::from_secs(1))
            .expect("drifting");
        assert!((exp.as_days_f64() - 2.3148).abs() < 0.01, "exp {exp}");
    }

    #[test]
    fn constant_history_never_expires() {
        let h = drifting_history(0.0, 48, 0.0);
        assert!(h.estimate_expiration(SimDuration::from_secs(1)).is_none());
    }

    #[test]
    fn short_history_cannot_estimate() {
        let mut h = FingerprintHistory::new();
        assert!(h.is_empty());
        h.record(SimTime::ZERO, SimTime::from_secs(1_000));
        assert!(h.fit().is_none());
        assert!(h.estimate_expiration(SimDuration::from_secs(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "appended in order")]
    fn out_of_order_recording_panics() {
        let mut h = FingerprintHistory::new();
        h.record(SimTime::from_secs(10), SimTime::ZERO);
        h.record(SimTime::from_secs(5), SimTime::ZERO);
    }

    #[test]
    fn study_filters_short_histories() {
        let long = drifting_history(1e-6, 48, 0.0); // 47 h
        let short = drifting_history(1e-6, 12, 0.0); // 11 h
        let study = DriftStudy::from_histories([long, short], SimDuration::from_hours(24));
        assert_eq!(study.histories.len(), 1);
        assert_eq!(study.filtered_out, 1);
        assert!(study.min_abs_r().expect("one fit") > 0.999);
        let days = study.expiration_days(SimDuration::from_secs(1));
        assert_eq!(days.len(), 1);
        assert!(days[0] > 0.0);
    }

    #[test]
    fn empty_study_has_no_r() {
        let study = DriftStudy::from_histories([], SimDuration::from_hours(24));
        assert!(study.min_abs_r().is_none());
        assert!(study.expiration_days(SimDuration::from_secs(1)).is_empty());
    }

    #[test]
    fn histories_shorter_than_the_filter_are_all_dropped() {
        // Span is measured first-to-last: 24 hourly samples span 23 h, so
        // even a dense history falls to a 24 h filter — the boundary the
        // paper's "tracked for at least a day" cut sits on.
        let dense_but_short = drifting_history(2.5e-6, 24, 0.0);
        assert_eq!(dense_but_short.span(), SimDuration::from_hours(23));
        let single = {
            let mut h = FingerprintHistory::new();
            h.record(SimTime::ZERO, SimTime::from_secs(1_000));
            h
        };
        let study = DriftStudy::from_histories(
            [dense_but_short, single, FingerprintHistory::new()],
            SimDuration::from_hours(24),
        );
        assert!(study.histories.is_empty());
        assert_eq!(study.filtered_out, 3);
    }

    #[test]
    fn zero_span_series_cannot_be_fit() {
        // Repeated measurements at one instant are legal (record only
        // requires non-decreasing times) but carry no drift information:
        // x-variance is zero, so the fit and the estimate must decline
        // rather than divide by zero.
        let mut h = FingerprintHistory::new();
        for boot_s in [1_000.0, 1_000.1, 999.9] {
            h.record(SimTime::from_secs(50), SimTime::from_secs_f64(boot_s));
        }
        assert_eq!(h.span(), SimDuration::ZERO);
        assert!(h.fit().is_none());
        assert!(h.estimate_expiration(SimDuration::from_secs(1)).is_none());
        // A zero min-span filter keeps it (span 0 >= 0, len >= 2), and the
        // study aggregates must tolerate the fit-less member.
        let study = DriftStudy::from_histories([h], SimDuration::ZERO);
        assert_eq!(study.histories.len(), 1);
        assert!(study.min_abs_r().is_none());
        assert!(study.expiration_days(SimDuration::from_secs(1)).is_empty());
    }

    #[test]
    fn negative_drift_fits_and_expires_symmetrically() {
        // A host whose reported frequency errs the other way drifts the
        // derived boot time downward; the fit recovers the negative slope
        // and, with the phase centered in its bucket, the time to the
        // lower rounding boundary equals the positive-drift case.
        let down = drifting_history(-2.5e-6, 48, 0.0);
        let fit = down.fit().expect("well-posed");
        assert!((fit.slope() + 2.5e-6).abs() < 1e-8, "slope {}", fit.slope());
        assert!(fit.r_value() < -0.9997, "r {}", fit.r_value());
        let exp_down = down
            .estimate_expiration(SimDuration::from_secs(1))
            .expect("drifting");
        let exp_up = drifting_history(2.5e-6, 48, 0.0)
            .estimate_expiration(SimDuration::from_secs(1))
            .expect("drifting");
        assert!(
            (exp_down.as_secs_f64() - exp_up.as_secs_f64()).abs() < 1.0,
            "asymmetric: down {exp_down} vs up {exp_up}"
        );
    }

    #[test]
    fn coarse_precision_scales_the_expiration() {
        // Gen 2's coarser boot-time rounding widens every bucket: from the
        // bucket center, the distance to the boundary is half the
        // precision, so a 100x coarser grid pushes expiration out 100x.
        let h = drifting_history(2.5e-6, 48, 0.0);
        let fine = h
            .estimate_expiration(SimDuration::from_secs(1))
            .expect("drifting");
        let coarse = h
            .estimate_expiration(SimDuration::from_secs(100))
            .expect("drifting");
        let ratio = coarse.as_secs_f64() / fine.as_secs_f64();
        assert!((ratio - 100.0).abs() < 1.0, "ratio {ratio}");
        // ~231 days: far beyond any practical campaign, matching the
        // paper's conclusion that coarse rounding defeats drift tracking.
        assert!(coarse.as_days_f64() > 200.0, "coarse {coarse}");
    }
}
