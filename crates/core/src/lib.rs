//! The EAAO attack toolkit — the paper's primary contribution.
//!
//! Everything the attacker runs, end to end. Each module maps to a section
//! of *"Everywhere All at Once"* (ASPLOS 2024):
//!
//! | Module | Paper section |
//! |---|---|
//! | [`probe`] | §4.1 — the in-container payload gathering `cpuid`, `rdtsc`, wall-clock pairs, and `tsc_khz` |
//! | [`fingerprint`] | §4.1 (Gen 1: model + rounded boot time), §4.5 (Gen 2: refined TSC frequency) |
//! | [`expiry`] | §4.2 — drift tracking and fingerprint expiration estimation (Figure 5) |
//! | [`verify`] | §4.3–4.4 — scalable co-location verification ([`verify::hierarchical`]) over pluggable channels ([`verify::VerifierChannel`]: the RNG unit, or the Close Talker `/lock`–`/check` bus — PAPERS.md, arxiv 2512.10361), plus the pairwise and SIE baselines |
//! | [`cluster`] | §4.4 — co-location cluster bookkeeping |
//! | [`metrics`] | §4.1 — precision / recall / Fowlkes–Mallows accuracy over instance pairs (Figure 4) |
//! | [`coverage`] | §5.2 — victim instance coverage measurement (Figure 11) |
//! | [`extraction`] | §2 (threat model, step 2) — detecting when the co-located victim runs |
//! | [`scenario`] | §5 — a builder for attacker-vs-victim setups |
//! | [`strategy`] | §5.2 — [`strategy::naive`] (Strategy 1), [`strategy::optimized`] (Strategy 2), [`strategy::explore`] (Figure 12) |
//! | [`experiment`] | one driver per paper figure/table, shared by tests, examples, and benches |
//!
//! Long-running entry points ([`verify::HierarchicalVerifier::verify`],
//! the strategies, [`probe::probe_fleet`]) are instrumented with
//! `eaao-obs` spans and counters; run any binary with `--trace FILE` to
//! watch them (see `docs/OBSERVABILITY.md`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod coverage;
pub mod experiment;
pub mod expiry;
pub mod extraction;
pub mod fingerprint;
pub mod metrics;
pub mod probe;
pub mod scenario;
pub mod strategy;
pub mod verify;

pub use coverage::CoverageReport;
pub use fingerprint::{Gen1Fingerprint, Gen1Fingerprinter, Gen2Fingerprint};
pub use metrics::PairConfusion;
pub use probe::ProbeReading;
pub use verify::HierarchicalVerifier;

/// Convenient glob import of the attack toolkit.
pub mod prelude {
    pub use crate::cluster::CoLocationForest;
    pub use crate::coverage::{measure_coverage, measure_coverage_verified, CoverageReport};
    pub use crate::expiry::{DriftStudy, FingerprintHistory};
    pub use crate::extraction::{monitor_victim_activity, ActivityTrace, MonitorConfig};
    pub use crate::fingerprint::{
        group_by_fingerprint, Gen1Fingerprint, Gen1Fingerprinter, Gen2Fingerprint,
    };
    pub use crate::metrics::PairConfusion;
    pub use crate::probe::{probe_fleet, probe_instance, ProbeReading};
    pub use crate::scenario::{Arena, Scenario};
    pub use crate::strategy::{
        ClusterExplorer, ExplorationReport, MultiAccountLaunch, NaiveLaunch, OptimizedLaunch,
        RepeatAttackOutcome, RepeatedAttack, StrategyReport, VictimHostRecord,
    };
    pub use crate::verify::{
        ctest, ctest_via, pair_count, pairwise_verify, single_instance_elimination, CTestConfig,
        HierarchicalVerifier, PairwiseChannel, VerificationOutcome, VerifierChannel, VerifierStats,
    };
}
