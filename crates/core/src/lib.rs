//! The EAAO attack toolkit — the paper's primary contribution.
//!
//! Everything the attacker runs, end to end:
//!
//! * [`probe`] — the in-container payload gathering `cpuid`, `rdtsc`,
//!   wall-clock pairs, and `tsc_khz`.
//! * [`fingerprint`] — Gen 1 (model + rounded boot time) and Gen 2
//!   (refined TSC frequency) host fingerprints.
//! * [`expiry`] — drift tracking and fingerprint expiration estimation.
//! * [`verify`] — the scalable co-location verification methodology, plus
//!   the pairwise and SIE baselines.
//! * [`cluster`] — co-location cluster bookkeeping.
//! * [`metrics`] — precision / recall / Fowlkes–Mallows accuracy over
//!   instance pairs.
//! * [`coverage`] — victim instance coverage measurement.
//! * [`extraction`] — step 2 of the threat model: detecting when the
//!   co-located victim is running.
//! * [`scenario`] — a builder for attacker-vs-victim setups.
//! * [`strategy`] — naive and optimized launch strategies and the
//!   cluster-size exploration campaign.
//! * [`experiment`] — one driver per paper figure/table, shared by tests,
//!   examples, and benches.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod coverage;
pub mod experiment;
pub mod expiry;
pub mod extraction;
pub mod fingerprint;
pub mod metrics;
pub mod probe;
pub mod scenario;
pub mod strategy;
pub mod verify;

pub use coverage::CoverageReport;
pub use fingerprint::{Gen1Fingerprint, Gen1Fingerprinter, Gen2Fingerprint};
pub use metrics::PairConfusion;
pub use probe::ProbeReading;
pub use verify::HierarchicalVerifier;

/// Convenient glob import of the attack toolkit.
pub mod prelude {
    pub use crate::cluster::CoLocationForest;
    pub use crate::coverage::{measure_coverage, measure_coverage_verified, CoverageReport};
    pub use crate::expiry::{DriftStudy, FingerprintHistory};
    pub use crate::extraction::{monitor_victim_activity, ActivityTrace, MonitorConfig};
    pub use crate::fingerprint::{
        group_by_fingerprint, Gen1Fingerprint, Gen1Fingerprinter, Gen2Fingerprint,
    };
    pub use crate::metrics::PairConfusion;
    pub use crate::probe::{probe_fleet, probe_instance, ProbeReading};
    pub use crate::scenario::{Arena, Scenario};
    pub use crate::strategy::{
        ClusterExplorer, ExplorationReport, MultiAccountLaunch, NaiveLaunch, OptimizedLaunch,
        RepeatAttackOutcome, RepeatedAttack, StrategyReport, VictimHostRecord,
    };
    pub use crate::verify::{
        ctest, pair_count, pairwise_verify, single_instance_elimination, CTestConfig,
        HierarchicalVerifier, PairwiseChannel, VerificationOutcome, VerifierStats,
    };
}
