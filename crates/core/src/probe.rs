//! The attacker probe: the payload run inside each container instance.
//!
//! One probe execution gathers everything both fingerprints need in a single
//! pass (Section 4.1): the CPU model via `cpuid`, a paired
//! (`rdtsc`, `clock_gettime`) sample, and — in Gen 2 — the guest kernel's
//! `tsc_khz`.

use eaao_cloudsim::ids::InstanceId;
use eaao_cloudsim::sandbox::GuestEnv;
use eaao_orchestrator::error::GuestError;
use eaao_orchestrator::world::World;
use eaao_simcore::time::{SimDuration, SimTime};
use eaao_tsc::boot::TscSample;
use eaao_tsc::refine::RefinedTscFrequency;
use serde::{Deserialize, Serialize};

/// Everything one probe execution observes inside an instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeReading {
    /// Which instance produced the reading.
    pub instance: InstanceId,
    /// CPU model string from `cpuid`.
    pub model: String,
    /// Raw `rdtsc` value.
    pub tsc: u64,
    /// Paired wall-clock reading (noisy syscall clock).
    pub wall: SimTime,
    /// The guest kernel's refined TSC frequency, if the environment exposes
    /// one (Gen 2 only).
    pub tsc_khz: Option<RefinedTscFrequency>,
}

impl ProbeReading {
    /// The paired (tsc, wall) sample for Eq. 4.1.
    pub fn tsc_sample(&self) -> TscSample {
        TscSample::new(self.tsc, self.wall)
    }
}

/// Probes one live instance.
///
/// # Errors
///
/// Returns a [`GuestError`] if the instance is unknown or terminated.
pub fn probe_instance(world: &mut World, id: InstanceId) -> Result<ProbeReading, GuestError> {
    eaao_obs::count("probe.instances_probed", 1);
    world.with_guest(id, |sandbox, now| ProbeReading {
        instance: id,
        model: sandbox.cpuid_model().to_owned(),
        tsc: sandbox.rdtsc(now),
        wall: sandbox.clock_gettime(now),
        tsc_khz: sandbox.tsc_khz(),
    })
}

/// Probes a fleet of instances, advancing the clock by `gap` between probes
/// (the paper's measurements over 800 WebSocket connections are serialized
/// over a span of seconds).
///
/// Dead instances are skipped — exactly what a real measurement campaign
/// experiences when the platform churns instances mid-sweep.
pub fn probe_fleet(world: &mut World, ids: &[InstanceId], gap: SimDuration) -> Vec<ProbeReading> {
    let mut fleet_span = eaao_obs::span("probe.fleet");
    fleet_span.u64_field("instances", ids.len() as u64);
    let mut readings = Vec::with_capacity(ids.len());
    for &id in ids {
        if let Ok(reading) = probe_instance(world, id) {
            readings.push(reading);
        }
        world.advance(gap);
    }
    fleet_span.u64_field("readings", readings.len() as u64);
    readings
}

#[cfg(test)]
mod tests {
    use super::*;
    use eaao_cloudsim::service::{Generation, ServiceSpec};
    use eaao_orchestrator::config::RegionConfig;

    fn world() -> World {
        World::new(RegionConfig::us_west1().with_hosts(50), 42)
    }

    #[test]
    fn gen1_reading_has_model_and_no_khz() {
        let mut world = world();
        let account = world.create_account();
        let service = world.deploy_service(account, ServiceSpec::default());
        let launch = world.launch(service, 5).expect("fits");
        let id = launch.instances()[0];
        let reading = probe_instance(&mut world, id).expect("alive");
        assert_eq!(reading.instance, id);
        assert!(reading.model.contains("GHz"));
        assert!(reading.tsc > 0);
        assert!(reading.tsc_khz.is_none());
        let sample = reading.tsc_sample();
        assert_eq!(sample.tsc, reading.tsc);
        assert_eq!(sample.wall, reading.wall);
    }

    #[test]
    fn gen2_reading_exposes_khz_and_hides_model() {
        let mut world = world();
        let account = world.create_account();
        let service = world.deploy_service(
            account,
            ServiceSpec::default().with_generation(Generation::Gen2),
        );
        let launch = world.launch(service, 1).expect("fits");
        let reading = probe_instance(&mut world, launch.instances()[0]).expect("alive");
        assert!(reading.tsc_khz.is_some());
        assert!(reading.model.contains("virtualized"));
    }

    #[test]
    fn probe_fleet_spans_time_and_skips_dead() {
        let mut world = world();
        let account = world.create_account();
        let service = world.deploy_service(account, ServiceSpec::default());
        let launch = world.launch(service, 10).expect("fits");
        let before = world.now();
        let mut ids = launch.instances().to_vec();
        ids.push(InstanceId::from_raw(9_999)); // never existed
        let readings = probe_fleet(&mut world, &ids, SimDuration::from_millis(25));
        assert_eq!(readings.len(), 10);
        let elapsed = world.now() - before;
        assert_eq!(elapsed, SimDuration::from_millis(25) * 11);
    }

    #[test]
    fn probing_dead_instance_errors() {
        let mut world = world();
        let account = world.create_account();
        let service = world.deploy_service(account, ServiceSpec::default());
        let launch = world.launch(service, 1).expect("fits");
        let id = launch.instances()[0];
        world.kill_all(service);
        assert_eq!(
            probe_instance(&mut world, id).unwrap_err(),
            GuestError::Terminated(id)
        );
    }
}
