//! Victim-coverage measurement (Section 5.2).
//!
//! The paper's primary attack metric is *victim instance coverage*: the
//! fraction of victim instances co-located with at least one attacker
//! instance. The simulation offers two routes to it:
//!
//! * [`measure_coverage`] — ground truth, instant and free; used to score
//!   strategies at scale.
//! * [`measure_coverage_verified`] — the attacker's real workflow:
//!   fingerprint both fleets, nominate candidates with matching
//!   fingerprints, and confirm each with a covert-channel pair test.

use std::collections::{BTreeMap, BTreeSet};

use eaao_cloudsim::ids::{HostId, InstanceId};
use eaao_orchestrator::error::GuestError;
use eaao_orchestrator::world::World;
use serde::{Deserialize, Serialize};

use crate::fingerprint::Gen1Fingerprinter;
use crate::probe::probe_fleet;
use crate::verify::ctest::{ctest, CTestConfig};
use eaao_simcore::time::SimDuration;

/// Coverage of a victim fleet by an attacker fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Victim instances considered.
    pub victim_instances: usize,
    /// Victim instances co-located with ≥ 1 attacker instance.
    pub covered_instances: usize,
    /// Distinct hosts carrying attacker instances.
    pub attacker_hosts: usize,
    /// Distinct hosts carrying victim instances.
    pub victim_hosts: usize,
    /// Hosts carrying both.
    pub shared_hosts: usize,
    /// Hosts in the data center.
    pub dc_hosts: usize,
}

impl CoverageReport {
    /// The paper's primary metric: fraction of victim instances covered.
    pub fn victim_instance_coverage(&self) -> f64 {
        if self.victim_instances == 0 {
            0.0
        } else {
            self.covered_instances as f64 / self.victim_instances as f64
        }
    }

    /// Whether the attacker co-locates with at least one victim instance.
    pub fn at_least_one(&self) -> bool {
        self.covered_instances > 0
    }

    /// Fraction of the data center's hosts the attacker occupies.
    pub fn attacker_host_coverage(&self) -> f64 {
        if self.dc_hosts == 0 {
            0.0
        } else {
            self.attacker_hosts as f64 / self.dc_hosts as f64
        }
    }
}

fn hosts_of(world: &World, instances: &[InstanceId]) -> BTreeSet<HostId> {
    instances.iter().map(|&i| world.host_of(i)).collect()
}

/// Ground-truth coverage of `victims` by `attackers`.
pub fn measure_coverage(
    world: &World,
    attackers: &[InstanceId],
    victims: &[InstanceId],
) -> CoverageReport {
    let attacker_hosts = hosts_of(world, attackers);
    let victim_hosts = hosts_of(world, victims);
    let covered_instances = victims
        .iter()
        .filter(|&&v| attacker_hosts.contains(&world.host_of(v)))
        .count();
    CoverageReport {
        victim_instances: victims.len(),
        covered_instances,
        attacker_hosts: attacker_hosts.len(),
        victim_hosts: victim_hosts.len(),
        shared_hosts: attacker_hosts.intersection(&victim_hosts).count(),
        dc_hosts: world.data_center().len(),
    }
}

/// The attacker's end-to-end workflow: fingerprint both fleets, then
/// confirm each fingerprint-matched (victim, attacker) candidate pair over
/// the covert channel.
///
/// Returns the coverage report plus the number of confirmation tests spent.
///
/// # Errors
///
/// Returns a [`GuestError`] if instances die mid-campaign.
pub fn measure_coverage_verified(
    world: &mut World,
    attackers: &[InstanceId],
    victims: &[InstanceId],
    fingerprinter: &Gen1Fingerprinter,
) -> Result<(CoverageReport, usize), GuestError> {
    let gap = SimDuration::from_millis(25);
    let attacker_readings = probe_fleet(world, attackers, gap);
    let victim_readings = probe_fleet(world, victims, gap);

    // Index attacker instances by fingerprint.
    let mut by_fp: BTreeMap<_, Vec<InstanceId>> = BTreeMap::new();
    for reading in &attacker_readings {
        if let Some(fp) = fingerprinter.fingerprint(reading) {
            by_fp.entry(fp).or_default().push(reading.instance);
        }
    }

    let config = CTestConfig::default();
    let mut covered = BTreeSet::new();
    let mut confirmations = 0;
    for reading in &victim_readings {
        let Some(fp) = fingerprinter.fingerprint(reading) else {
            continue;
        };
        let Some(candidates) = by_fp.get(&fp) else {
            continue;
        };
        for &candidate in candidates {
            confirmations += 1;
            let verdicts = ctest(world, &[reading.instance, candidate], &config)?;
            if verdicts[0] && verdicts[1] {
                covered.insert(reading.instance);
                break;
            }
        }
    }

    let mut report = measure_coverage(world, attackers, victims);
    report.covered_instances = covered.len();
    Ok((report, confirmations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eaao_cloudsim::service::ServiceSpec;
    use eaao_orchestrator::config::RegionConfig;

    fn world_with_two_fleets(seed: u64) -> (World, Vec<InstanceId>, Vec<InstanceId>) {
        let mut world = World::new(RegionConfig::us_west1().with_hosts(30), seed);
        let attacker = world.create_account();
        let victim = world.create_account();
        let atk_svc =
            world.deploy_service(attacker, ServiceSpec::default().with_max_instances(1_000));
        let vic_svc = world.deploy_service(victim, ServiceSpec::default());
        let atk = world
            .launch(atk_svc, 120)
            .expect("fits")
            .instances()
            .to_vec();
        let vic = world
            .launch(vic_svc, 40)
            .expect("fits")
            .instances()
            .to_vec();
        (world, atk, vic)
    }

    #[test]
    fn ground_truth_coverage_is_consistent() {
        let (world, atk, vic) = world_with_two_fleets(1);
        let report = measure_coverage(&world, &atk, &vic);
        assert_eq!(report.victim_instances, 40);
        assert!(report.covered_instances <= 40);
        assert!(report.attacker_hosts <= report.dc_hosts);
        assert!(report.shared_hosts <= report.attacker_hosts.min(report.victim_hosts));
        let c = report.victim_instance_coverage();
        assert!((0.0..=1.0).contains(&c));
        assert_eq!(report.at_least_one(), report.covered_instances > 0);
        assert!(report.attacker_host_coverage() <= 1.0);
    }

    #[test]
    fn full_overlap_gives_full_coverage() {
        let (world, atk, _) = world_with_two_fleets(2);
        // Coverage of the attacker by itself is total.
        let report = measure_coverage(&world, &atk, &atk);
        assert_eq!(report.victim_instance_coverage(), 1.0);
        assert_eq!(report.shared_hosts, report.attacker_hosts);
    }

    #[test]
    fn empty_victim_fleet_is_zero_coverage() {
        let (world, atk, _) = world_with_two_fleets(3);
        let report = measure_coverage(&world, &atk, &[]);
        assert_eq!(report.victim_instance_coverage(), 0.0);
        assert!(!report.at_least_one());
    }

    #[test]
    fn verified_coverage_matches_ground_truth() {
        let (mut world, atk, vic) = world_with_two_fleets(4);
        let truth = measure_coverage(&world, &atk, &vic);
        let (verified, confirmations) =
            measure_coverage_verified(&mut world, &atk, &vic, &Gen1Fingerprinter::default())
                .expect("alive");
        // The covert-verified workflow agrees with ground truth (allowing
        // a sliver of fingerprint noise).
        let diff =
            (verified.covered_instances as i64 - truth.covered_instances as i64).unsigned_abs();
        assert!(diff <= 1, "verified {verified:?} vs truth {truth:?}");
        assert!(confirmations >= verified.covered_instances);
    }
}
