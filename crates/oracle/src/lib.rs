//! Differential oracle for the placement/launch hot path.
//!
//! The production [`OptimizedEngine`] answers the orchestrator's two hot
//! questions — *pick a host weighted by popularity* and *how much capacity
//! is free* — with a Fenwick-tree sampler and an incrementally maintained
//! free-slot index. This crate keeps the **naive reference
//! implementations** those structures replaced:
//!
//! * [`reference::LinearSampler`] — O(n) linear-scan weighted sampling,
//! * [`reference::ScanCapacity`] — full-scan capacity lookups with a
//!   per-plan overlay recomputed from the data center every time,
//!
//! bundled as [`ReferenceEngine`]. Because `World` and `CloudRunPolicy`
//! are generic over the engine and share *all* control flow, two worlds
//! built from the same `(region, seed)` on different engines consume
//! identical RNG streams — so their entire trajectories (placements,
//! billing, reap times, the JSONL transcript bytes) must be identical.
//! Any divergence is a bookkeeping bug in one backend, and the proptest
//! suites in `tests/` hunt for one by driving randomized
//! launch/load/churn/advance schedules through both engines.
//!
//! The vendored `proptest` stand-in generates but does not shrink, so
//! [`minimize`] provides greedy counterexample minimization: failing
//! schedules are re-run under op deletion and magnitude shrinking until
//! 1-minimal, and the *minimized* schedule is what a failing test prints.
//! `docs/TESTING.md` explains how to replay one.
//!
//! [`OptimizedEngine`]: eaao_orchestrator::engine::OptimizedEngine
//! [`minimize`]: minimize::minimize

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod minimize;
pub mod reference;
pub mod schedule;
pub mod strategies;

pub use reference::ReferenceEngine;
pub use schedule::{check, run, Divergence, Op, Schedule, Trajectory};
