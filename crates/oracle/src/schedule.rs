//! Randomized world schedules and the differential runner.
//!
//! A [`Schedule`] is a serializable description of one simulated tenant
//! session: a region shape, churn switches, and a sequence of [`Op`]s
//! (launch / autoscale / disconnect / kill / advance). [`run`] drives a
//! schedule through a `World` on any [`Engine`] and records a
//! [`Trajectory`] — one JSONL line per op capturing the placements, the
//! per-service alive sets (so reap times are observable), the free-slot
//! count, and the exact billing bits. [`check`] runs the same schedule on
//! the optimized and reference engines and reports the first line where
//! the transcripts diverge.

use eaao_cloudsim::ids::ServiceId;
use eaao_cloudsim::service::ServiceSpec;
use eaao_orchestrator::config::RegionConfig;
use eaao_orchestrator::engine::{Engine, OptimizedEngine};
use eaao_orchestrator::world::World;
use eaao_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::reference::ReferenceEngine;

/// One operation of a schedule. Service indices are taken modulo the
/// schedule's service count, so shrinking the fleet never invalidates ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Open `count` concurrent connections on service `service`.
    Launch {
        /// Index into the schedule's deployed services.
        service: usize,
        /// Connections to open.
        count: usize,
    },
    /// Autoscale service `service` to `demand` concurrent requests.
    SetLoad {
        /// Index into the schedule's deployed services.
        service: usize,
        /// Target concurrent requests.
        demand: usize,
    },
    /// Close every connection of service `service`.
    DisconnectAll {
        /// Index into the schedule's deployed services.
        service: usize,
    },
    /// Terminate every instance of service `service` immediately.
    KillAll {
        /// Index into the schedule's deployed services.
        service: usize,
    },
    /// Let `seconds` of simulated time pass (reapers and churn fire).
    Advance {
        /// Simulated seconds to advance.
        seconds: i64,
    },
}

/// A reproducible world session: everything [`run`] needs, and nothing
/// else — serialize it, commit it to the seed corpus, replay it later.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// World seed.
    pub seed: u64,
    /// Host-pool size.
    pub hosts: usize,
    /// Per-host slot capacity override; `0` keeps the region preset.
    pub host_capacity: usize,
    /// Number of services deployed.
    pub services: usize,
    /// Number of accounts the services round-robin over (service `i`
    /// belongs to account `i % accounts`); `0` behaves as 1. Distinct
    /// accounts hash to distinct scheduling cells, which is how a
    /// schedule reaches cold (never-materialized) cells late in a run.
    pub accounts: usize,
    /// Use the dynamic-placement region preset (us-central1-style).
    pub dynamic: bool,
    /// Enable platform instance churn before the ops run.
    pub instance_churn: bool,
    /// Enable host maintenance reboots with this mean (minutes per host).
    pub host_churn_mins: Option<i64>,
    /// The operation sequence.
    pub ops: Vec<Op>,
}

impl Schedule {
    /// The region this schedule builds.
    pub fn region(&self) -> RegionConfig {
        let mut region = if self.dynamic {
            RegionConfig::us_central1()
        } else {
            RegionConfig::us_west1()
        };
        region = region.with_hosts(self.hosts.max(1));
        if self.host_capacity > 0 {
            region.host_config.capacity = self.host_capacity;
        }
        region
    }
}

/// Host assignment of one newly created instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Raw instance id.
    pub instance: u32,
    /// Raw host id.
    pub host: u32,
}

/// One transcript line: the op's observable outcome plus a digest of the
/// whole world state after it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Index of the op in the schedule.
    pub step: usize,
    /// Simulated time after the op, in nanoseconds.
    pub now_ns: i64,
    /// What the op did (launch counts, autoscaler verdicts, errors).
    pub outcome: String,
    /// Hosts assigned to instances created by this op.
    pub placements: Vec<Placement>,
    /// Alive instance ids per service — reap times show up as instances
    /// vanishing from these sets across `Advance` steps.
    pub alive: Vec<Vec<u32>>,
    /// Ground-truth resident instances across all hosts.
    pub resident: usize,
    /// Free slots reported by the engine's capacity index.
    pub free_slots: u64,
    /// Exact bit pattern of the billed-USD total (no float tolerance:
    /// both engines must bill identically to the last bit).
    pub billed_bits: u64,
}

/// The full observable history of one schedule run.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// One serialized [`StepRecord`] per op.
    pub lines: Vec<String>,
}

impl Trajectory {
    /// The transcript as JSONL bytes — the byte-equality surface of the
    /// differential oracle, shaped like a campaign `results.jsonl`.
    pub fn transcript(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// A schedule mid-run: the world plus its deployed services, with the
/// step-record logic of [`run`] factored out so callers can pause at any
/// op boundary, [`branch`](Session::branch) the world, and replay the
/// remainder on both sides — the snapshot/branch differential surface.
#[derive(Debug)]
pub struct Session<E: Engine> {
    world: World<E>,
    services: Vec<ServiceId>,
}

// Manual impl: `derive(Clone)` would demand `E: Clone`.
impl<E: Engine> Clone for Session<E> {
    fn clone(&self) -> Self {
        Session {
            world: self.world.clone(),
            services: self.services.clone(),
        }
    }
}

impl<E: Engine> Session<E> {
    /// Builds the schedule's world, accounts, and services; enables the
    /// churn switches. No op has run yet.
    // tidy:allow(panic-reachability) -- `accounts` holds `max(1)` entries, and the service loop indexes it modulo its length.
    pub fn new(schedule: &Schedule) -> Self {
        let mut world: World<E> = World::with_engine(schedule.region(), schedule.seed);
        let accounts: Vec<_> = (0..schedule.accounts.max(1))
            .map(|_| world.create_account())
            .collect();
        let services: Vec<ServiceId> = (0..schedule.services.max(1))
            .map(|i| {
                world.deploy_service(
                    accounts[i % accounts.len()],
                    ServiceSpec::default().with_max_instances(150),
                )
            })
            .collect();
        if schedule.instance_churn {
            world.enable_instance_churn(true);
        }
        if let Some(mins) = schedule.host_churn_mins {
            world.enable_host_churn(SimDuration::from_mins(mins.max(1)));
        }
        Session { world, services }
    }

    /// Applies op number `step` and returns its serialized
    /// [`StepRecord`] line.
    pub fn apply_step(&mut self, step: usize, op: Op) -> String {
        let (outcome, placements) = apply(&mut self.world, &self.services, op);
        let alive: Vec<Vec<u32>> = self
            .services
            .iter()
            .map(|&s| {
                self.world
                    .alive_instances_of(s)
                    .into_iter()
                    .map(|id| id.as_raw())
                    .collect()
            })
            .collect();
        let record = StepRecord {
            step,
            now_ns: self.world.now().as_nanos(),
            outcome,
            placements,
            alive,
            resident: self.world.data_center().resident_instances(),
            free_slots: self.world.free_slots(),
            billed_bits: self.world.billed().as_usd().to_bits(),
        };
        serde_json::to_string(&record).expect("record serializes")
    }

    /// Forks an independent session from the current state (the world is
    /// [`World::branch`]ed; the service handles are copied).
    pub fn branch(&self) -> Self {
        Session {
            world: self.world.branch(),
            services: self.services.clone(),
        }
    }

    /// The services the schedule deployed, in deployment order (op
    /// service indices index into this slice).
    pub fn services(&self) -> &[ServiceId] {
        &self.services
    }

    /// The world under the session (read-only introspection).
    pub fn world(&self) -> &World<E> {
        &self.world
    }

    /// The world under the session (mutable — for tests that perturb a
    /// branch outside the schedule's op vocabulary).
    pub fn world_mut(&mut self) -> &mut World<E> {
        &mut self.world
    }
}

/// Runs a schedule on engine `E` and records its trajectory.
pub fn run<E: Engine>(schedule: &Schedule) -> Trajectory {
    let mut session = Session::<E>::new(schedule);
    let lines = schedule
        .ops
        .iter()
        .enumerate()
        .map(|(step, &op)| session.apply_step(step, op))
        .collect();
    Trajectory { lines }
}

/// Applies one op, returning its outcome line and any new placements.
/// Shared by the differential runner and the model-based root tests so
/// both drive the world through the same surface.
///
/// # Panics
///
/// Panics if `services` is empty: ops address services modulo the
/// roster, so there must be at least one.
pub fn apply<E: Engine>(
    world: &mut World<E>,
    services: &[ServiceId],
    op: Op,
) -> (String, Vec<Placement>) {
    let pick = |service: usize| services[service % services.len()];
    match op {
        Op::Launch { service, count } => match world.launch(pick(service), count) {
            Ok(launch) => {
                let placements = launch.instances()[launch.reused()..]
                    .iter()
                    .map(|&id| Placement {
                        instance: id.as_raw(),
                        host: world.host_of(id).as_raw(),
                    })
                    .collect();
                (
                    format!(
                        "launch: reused={} created={}",
                        launch.reused(),
                        launch.created()
                    ),
                    placements,
                )
            }
            Err(e) => (format!("launch error: {e:?}"), Vec::new()),
        },
        Op::SetLoad { service, demand } => match world.set_load(pick(service), demand) {
            Ok(serving) => (format!("set_load: serving={}", serving.len()), Vec::new()),
            Err(e) => (format!("set_load error: {e:?}"), Vec::new()),
        },
        Op::DisconnectAll { service } => {
            world.disconnect_all(pick(service));
            ("disconnect_all".to_owned(), Vec::new())
        }
        Op::KillAll { service } => {
            world.kill_all(pick(service));
            ("kill_all".to_owned(), Vec::new())
        }
        Op::Advance { seconds } => {
            world.advance(SimDuration::from_secs(seconds.max(0)));
            ("advance".to_owned(), Vec::new())
        }
    }
}

/// The first transcript line where the two engines disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Index of the first differing line (or the shorter length when one
    /// transcript is a prefix of the other).
    pub step: usize,
    /// The optimized engine's line at `step`, if any.
    pub optimized: Option<String>,
    /// The reference engine's line at `step`, if any.
    pub reference: Option<String>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "engines diverged at step {}", self.step)?;
        writeln!(f, "  optimized: {:?}", self.optimized)?;
        write!(f, "  reference: {:?}", self.reference)
    }
}

/// Runs `schedule` on both engines and compares the transcripts byte for
/// byte.
///
/// # Errors
///
/// Returns the first [`Divergence`] if the trajectories differ.
pub fn check(schedule: &Schedule) -> Result<(), Divergence> {
    let optimized = run::<OptimizedEngine>(schedule);
    let reference = run::<ReferenceEngine>(schedule);
    if optimized == reference {
        return Ok(());
    }
    let step = optimized
        .lines
        .iter()
        .zip(&reference.lines)
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| optimized.lines.len().min(reference.lines.len()));
    Err(Divergence {
        step,
        optimized: optimized.lines.get(step).cloned(),
        reference: reference.lines.get(step).cloned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schedule() -> Schedule {
        Schedule {
            seed: 7,
            hosts: 20,
            host_capacity: 0,
            services: 2,
            accounts: 1,
            dynamic: false,
            instance_churn: false,
            host_churn_mins: None,
            ops: vec![
                Op::Launch {
                    service: 0,
                    count: 30,
                },
                Op::SetLoad {
                    service: 1,
                    demand: 12,
                },
                Op::DisconnectAll { service: 0 },
                Op::Advance { seconds: 900 },
                Op::KillAll { service: 1 },
            ],
        }
    }

    #[test]
    fn schedules_round_trip_through_json() {
        let s = demo_schedule();
        let json = serde_json::to_string(&s).expect("serializes");
        let back: Schedule = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, s);
        // Byte-stable re-serialization, so corpus files stay diffable.
        assert_eq!(serde_json::to_string(&back).expect("serializes"), json);
    }

    #[test]
    fn runs_are_deterministic_per_engine() {
        let s = demo_schedule();
        assert_eq!(
            run::<OptimizedEngine>(&s).transcript(),
            run::<OptimizedEngine>(&s).transcript()
        );
        assert_eq!(
            run::<ReferenceEngine>(&s).transcript(),
            run::<ReferenceEngine>(&s).transcript()
        );
    }

    #[test]
    fn demo_schedule_passes_the_oracle() {
        check(&demo_schedule()).expect("engines agree");
    }

    #[test]
    fn transcript_is_jsonl() {
        let t = run::<OptimizedEngine>(&demo_schedule());
        assert_eq!(t.lines.len(), 5);
        for line in &t.lines {
            let record: StepRecord = serde_json::from_str(line).expect("valid JSON line");
            assert!(!line.contains('\n'));
            assert_eq!(
                serde_json::to_string(&record).expect("re-serializes"),
                *line,
                "transcript lines re-serialize byte-identically"
            );
        }
    }
}
