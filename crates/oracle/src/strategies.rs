//! Shared proptest generators for world schedules.
//!
//! One home for the generators that were previously duplicated across the
//! root integration tests (`tests/model_based.rs`,
//! `tests/placement_invariants.rs`, `tests/proptests.rs`) and the
//! differential suites in this crate: arbitrary tenant [`Op`]s and whole
//! [`Schedule`]s, plus tailored variants emphasizing specific regimes
//! (idle-reap cycles, churn, capacity spill, dynamic placement).

use proptest::collection::vec;
use proptest::prelude::*;

use crate::schedule::{Op, Schedule};

/// An arbitrary tenant operation over `services` deployed services.
pub fn op(services: usize) -> BoxedStrategy<Op> {
    assert!(services > 0, "need at least one service");
    prop_oneof![
        (0usize..services, 1usize..120).prop_map(|(service, count)| Op::Launch { service, count }),
        (0usize..services, 0usize..120)
            .prop_map(|(service, demand)| Op::SetLoad { service, demand }),
        (0usize..services).prop_map(|service| Op::DisconnectAll { service }),
        (0usize..services).prop_map(|service| Op::KillAll { service }),
        (1i64..1_800).prop_map(|seconds| Op::Advance { seconds }),
    ]
    .boxed()
}

/// 1 to `max_len` arbitrary ops over `services` services.
pub fn ops(services: usize, max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    vec(op(services), 1..max_len.max(2))
}

/// Fully arbitrary schedules: every regime the oracle guards, in one
/// generator.
pub fn schedule() -> BoxedStrategy<Schedule> {
    (
        (
            0u64..1_000_000,
            8usize..40,
            1usize..4,
            prop_oneof![Just(0usize), Just(4), Just(12)],
        ),
        (bool_any(), bool_any(), churn_mins(), 1usize..4),
        vec(op(3), 1..24),
    )
        .prop_map(
            |(
                (seed, hosts, services, host_capacity),
                (dynamic, instance_churn, host_churn_mins, accounts),
                ops,
            )| Schedule {
                seed,
                hosts,
                host_capacity,
                services,
                accounts,
                dynamic,
                instance_churn,
                host_churn_mins,
                ops,
            },
        )
        .boxed()
}

/// Schedules emphasizing idle-reap timing: launches and disconnects
/// interleaved with sub-reaper-period advances, no churn.
pub fn reap_heavy_schedule() -> BoxedStrategy<Schedule> {
    let op = prop_oneof![
        (0usize..2, 1usize..100).prop_map(|(service, count)| Op::Launch { service, count }),
        (0usize..2).prop_map(|service| Op::DisconnectAll { service }),
        (30i64..400).prop_map(|seconds| Op::Advance { seconds }),
    ];
    ((0u64..1_000_000, 10usize..40), vec(op, 4..28))
        .prop_map(|((seed, hosts), ops)| Schedule {
            seed,
            hosts,
            host_capacity: 0,
            services: 2,
            accounts: 1,
            dynamic: false,
            instance_churn: false,
            host_churn_mins: None,
            ops,
        })
        .boxed()
}

/// Schedules with instance and host churn on, and long advances so both
/// fire many times.
pub fn churn_heavy_schedule() -> BoxedStrategy<Schedule> {
    let op = prop_oneof![
        (0usize..2, 1usize..80).prop_map(|(service, count)| Op::Launch { service, count }),
        (0usize..2, 0usize..80).prop_map(|(service, demand)| Op::SetLoad { service, demand }),
        (600i64..50_000).prop_map(|seconds| Op::Advance { seconds }),
    ];
    ((0u64..1_000_000, 8usize..30, 10i64..200), vec(op, 3..16))
        .prop_map(|((seed, hosts, churn_mins), ops)| Schedule {
            seed,
            hosts,
            host_capacity: 0,
            services: 2,
            accounts: 1,
            dynamic: false,
            instance_churn: true,
            host_churn_mins: Some(churn_mins),
            ops,
        })
        .boxed()
}

/// Schedules on a tiny pool with tiny hosts, so launches overflow their
/// targets and exercise the popularity-weighted spill path.
pub fn spill_heavy_schedule() -> BoxedStrategy<Schedule> {
    let op = prop_oneof![
        (0usize..2, 20usize..120).prop_map(|(service, count)| Op::Launch { service, count }),
        (0usize..2).prop_map(|service| Op::KillAll { service }),
        (60i64..1_200).prop_map(|seconds| Op::Advance { seconds }),
    ];
    ((0u64..1_000_000, 6usize..14), vec(op, 2..14))
        .prop_map(|((seed, hosts), ops)| Schedule {
            seed,
            hosts,
            host_capacity: 4,
            services: 2,
            accounts: 1,
            dynamic: false,
            instance_churn: false,
            host_churn_mins: None,
            ops,
        })
        .boxed()
}

/// Schedules on the dynamic-placement (us-central1-style) preset.
pub fn dynamic_schedule() -> BoxedStrategy<Schedule> {
    ((0u64..1_000_000, 12usize..40), vec(op(2), 1..20))
        .prop_map(|((seed, hosts), ops)| Schedule {
            seed,
            hosts,
            host_capacity: 0,
            services: 2,
            accounts: 1,
            dynamic: true,
            instance_churn: false,
            host_churn_mins: None,
            ops,
        })
        .boxed()
}

/// Schedules whose final op is a launch burst into a *cold* scheduling
/// cell — a service whose account no earlier op has touched.
///
/// This closes the latent generator gap: the other generators spread
/// their ops over every service from step one, so by the time a run is a
/// few ops old, every reachable cell is materialized and lazy
/// construction is never stressed mid-run. Here the pool is large enough
/// for several cells (us-west1 cells hold 110 hosts), every service
/// belongs to its own account, the warm-up ops drive *only* service 0,
/// and the closing burst lands on the last service — with high
/// probability a cell no op has touched, forcing first-touch
/// materialization deep into the run on the optimized engine while the
/// eager reference engine materialized it at build.
pub fn cold_cell_burst_schedule() -> BoxedStrategy<Schedule> {
    let warm_op = prop_oneof![
        (1usize..100).prop_map(|count| Op::Launch { service: 0, count }),
        (0usize..100).prop_map(|demand| Op::SetLoad { service: 0, demand }),
        Just(Op::DisconnectAll { service: 0 }),
        (30i64..1_200).prop_map(|seconds| Op::Advance { seconds }),
    ];
    (
        (0u64..1_000_000, 240usize..520, 2usize..6),
        vec(warm_op, 2..12),
        40usize..120,
    )
        .prop_map(|((seed, hosts, accounts), mut ops, burst)| {
            // The burst targets the last service: owned by the last
            // account, untouched by every warm-up op above.
            ops.push(Op::Launch {
                service: accounts - 1,
                count: burst,
            });
            Schedule {
                seed,
                hosts,
                host_capacity: 0,
                services: accounts,
                accounts,
                dynamic: false,
                instance_churn: false,
                host_churn_mins: None,
                ops,
            }
        })
        .boxed()
}

/// A fair coin (`bool` itself implements `Strategy`; the value is
/// ignored, so either literal works).
fn bool_any() -> BoxedStrategy<bool> {
    true.boxed()
}

/// `None` / occasional host-churn means, minutes per host.
fn churn_mins() -> BoxedStrategy<Option<i64>> {
    prop_oneof![
        Just(None),
        Just(None),
        Just(Some(60i64)),
        Just(Some(600i64)),
    ]
    .boxed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::test_runner::TestRng;

    #[test]
    fn generators_produce_valid_schedules() {
        let mut rng = TestRng::new(42);
        for variant in [
            schedule(),
            reap_heavy_schedule(),
            churn_heavy_schedule(),
            spill_heavy_schedule(),
            dynamic_schedule(),
            cold_cell_burst_schedule(),
        ] {
            for _ in 0..20 {
                let s = variant.sample(&mut rng);
                assert!(s.hosts >= 4, "pool too small: {s:?}");
                assert!(s.services >= 1 && !s.ops.is_empty(), "degenerate: {s:?}");
                assert!(s.accounts >= 1, "degenerate accounts: {s:?}");
            }
        }
    }

    #[test]
    fn cold_cell_bursts_end_on_an_untouched_service() {
        let mut rng = TestRng::new(7);
        let variant = cold_cell_burst_schedule();
        for _ in 0..40 {
            let s = variant.sample(&mut rng);
            assert!(s.accounts >= 2 && s.services == s.accounts);
            // Multiple cells exist (us-west1 cell_size is 110)...
            assert!(s.hosts >= 240, "single-cell pool: {s:?}");
            // ...the warm-up drives only service 0...
            let (warmup, burst) = s.ops.split_at(s.ops.len() - 1);
            for op in warmup {
                match op {
                    Op::Launch { service, .. }
                    | Op::SetLoad { service, .. }
                    | Op::DisconnectAll { service }
                    | Op::KillAll { service } => assert_eq!(*service, 0, "warm-up strays: {s:?}"),
                    Op::Advance { .. } => {}
                }
            }
            // ...and the burst lands on the last (cold) service.
            assert!(
                matches!(burst[0], Op::Launch { service, count } if service == s.accounts - 1 && count > 0),
                "missing cold burst: {s:?}"
            );
        }
    }
}
