//! The naive reference engine: linear weighted sampling and full-scan
//! capacity lookups.
//!
//! These are the implementations the optimized engine replaced, kept as
//! executable ground truth. They follow the exact sampling protocol of
//! [`eaao_simcore::wsample`] — integer fixed-point weights, one
//! `rng.below(total)` draw per pick — so they are drop-in interchangeable
//! with the Fenwick/incremental backends: same RNG stream in, same picks
//! out, at O(hosts) per operation instead of O(log hosts).

use std::collections::BTreeMap;

use eaao_cloudsim::datacenter::DataCenter;
use eaao_cloudsim::ids::HostId;
use eaao_orchestrator::engine::{CapacityIndex, Engine};
use eaao_simcore::rng::SimRng;
use eaao_simcore::wsample::{fixed_weight, IndexSampler};

/// The naive engine: [`LinearSampler`] + [`ScanCapacity`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceEngine;

impl Engine for ReferenceEngine {
    type Sampler = LinearSampler;
    type Capacity = ScanCapacity;

    // The oracle baseline keeps the pre-lazy eager path: every cell is
    // materialized up front at world build, so a lazy-path bug in the
    // optimized engine (e.g. a host generated from the wrong keyed
    // stream on first touch) diverges from this engine immediately.
    const EAGER_BUILD: bool = true;

    fn materialize_cell(dc: &DataCenter, hosts: &[HostId]) {
        for &h in hosts {
            // Touching a host materializes its shard (and SoA lanes).
            let _ = dc.host(h);
        }
    }
}

/// O(n)-per-pick weighted sampler: [`locate`](IndexSampler::locate) walks
/// the cumulative sum from the front, and
/// [`set_weight`](IndexSampler::set_weight) re-sums the whole weight
/// vector rather than maintaining the total incrementally.
#[derive(Debug, Clone)]
pub struct LinearSampler {
    weights: Vec<u64>,
    total: u64,
}

fn checked_sum(weights: &[u64]) -> u64 {
    weights
        .iter()
        .try_fold(0u64, |acc, &w| acc.checked_add(w))
        .expect("total weight overflows u64")
}

impl IndexSampler for LinearSampler {
    fn from_weights(weights: Vec<u64>) -> Self {
        let total = checked_sum(&weights);
        LinearSampler { weights, total }
    }

    fn len(&self) -> usize {
        self.weights.len()
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn weight(&self, index: usize) -> u64 {
        self.weights[index]
    }

    // tidy:allow(panic-reachability) -- `index` is a slot previously returned by pick/locate, which only yield indices below the fixed construction-time length.
    fn set_weight(&mut self, index: usize, weight: u64) {
        self.weights[index] = weight;
        // Deliberately naive: recompute instead of applying the delta.
        self.total = checked_sum(&self.weights);
    }

    fn locate(&self, target: u64) -> usize {
        let mut cum = 0u64;
        for (i, &w) in self.weights.iter().enumerate() {
            cum += w;
            if target < cum {
                return i;
            }
        }
        // tidy:allow(panic-policy) -- sampler contract: callers draw `target < total()`; out-of-range is a caller bug, mirrored from wsample
        panic!("target {target} >= total {cum}");
    }
}

/// Full-scan capacity lookups against the data center itself.
///
/// The data center's per-host residency *is* the committed state, so the
/// residency-change notifications are no-ops and every query walks all
/// hosts. Planning sessions overlay tentative consumption in a map, and
/// the popularity-weighted spill pick rebuilds a [`LinearSampler`] over
/// the overlayed availability on every single pick — the O(hosts) cost
/// per placed instance the incremental index exists to avoid.
#[derive(Debug, Clone)]
pub struct ScanCapacity {
    cell_of_host: Vec<u32>,
    cell_count: usize,
    /// Fixed-point popularity per host, same quantization as the
    /// optimized index so spill-pick totals match exactly.
    pop_fixed: Vec<u64>,
    /// Overlay: slots tentatively consumed per host this planning session.
    taken: BTreeMap<usize, u32>,
}

impl ScanCapacity {
    fn effective_free(&self, host: usize, dc: &DataCenter) -> usize {
        let taken = self.taken.get(&host).copied().unwrap_or(0) as usize;
        dc.host(HostId::from_raw(host as u32)).free_slots() - taken
    }
}

impl CapacityIndex for ScanCapacity {
    fn new(dc: &DataCenter, cell_of_host: Vec<u32>, cell_count: usize) -> Self {
        assert_eq!(cell_of_host.len(), dc.len(), "cell map covers every host");
        let pop_fixed = dc.hosts().map(|h| fixed_weight(h.popularity())).collect();
        ScanCapacity {
            cell_of_host,
            cell_count,
            pop_fixed,
            taken: BTreeMap::new(),
        }
    }

    fn on_admit_n(&mut self, _host: HostId, _n: usize, _dc: &DataCenter) {}

    fn on_evict(&mut self, _host: HostId, _dc: &DataCenter) {}

    fn on_host_reboot(&mut self, _host: HostId, _displaced: usize, _dc: &DataCenter) {}

    fn total_free(&self, dc: &DataCenter) -> u64 {
        dc.hosts().map(|h| h.free_slots() as u64).sum()
    }

    fn cell_free(&self, cell: usize, dc: &DataCenter) -> u64 {
        assert!(cell < self.cell_count, "cell {cell} out of range");
        dc.hosts()
            .enumerate()
            .filter(|&(h, _)| self.cell_of_host[h] as usize == cell)
            .map(|(_, host)| host.free_slots() as u64)
            .sum()
    }

    fn cell_count(&self) -> usize {
        self.cell_count
    }

    fn begin_plan(&mut self) {
        debug_assert!(self.taken.is_empty(), "previous plan not ended");
    }

    fn plan_free(&self, host: HostId, dc: &DataCenter) -> usize {
        self.effective_free(host.as_usize(), dc)
    }

    fn plan_take(&mut self, host: HostId, dc: &DataCenter) -> bool {
        let h = host.as_usize();
        if self.effective_free(h, dc) == 0 {
            return false;
        }
        *self.taken.entry(h).or_insert(0) += 1;
        true
    }

    fn plan_spill_pick(&mut self, dc: &DataCenter, rng: &mut SimRng) -> Option<HostId> {
        // Rebuild the availability-masked popularity weights from scratch
        // — exactly the weights the optimized index maintains in `avail`.
        let weights: Vec<u64> = (0..dc.len())
            .map(|h| {
                if self.effective_free(h, dc) > 0 {
                    self.pop_fixed[h]
                } else {
                    0
                }
            })
            .collect();
        let sampler = LinearSampler::from_weights(weights);
        let h = sampler.pick(rng)?;
        *self.taken.entry(h).or_insert(0) += 1;
        Some(HostId::from_raw(h as u32))
    }

    fn end_plan(&mut self) {
        self.taken.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eaao_cloudsim::host::HostGenConfig;
    use eaao_cloudsim::ids::InstanceId;
    use eaao_orchestrator::engine::IncrementalCapacity;
    use eaao_simcore::time::SimTime;
    use eaao_simcore::wsample::FenwickSampler;

    fn small_dc(seed: u64, hosts: usize, capacity: usize) -> DataCenter {
        let mut rng = SimRng::seed_from(seed);
        let config = HostGenConfig {
            capacity,
            ..HostGenConfig::default()
        };
        DataCenter::generate("test", hosts, &config, 0.9, &mut rng)
    }

    #[test]
    fn linear_sampler_matches_fenwick_draw_for_draw() {
        let mut rng = SimRng::seed_from(3);
        let weights: Vec<u64> = (0..97).map(|_| rng.below(1_000)).collect();
        let mut lin = LinearSampler::from_weights(weights.clone());
        let mut fen = FenwickSampler::from_weights(weights);
        let mut rng_a = SimRng::seed_from(7);
        let mut rng_b = rng_a.clone();
        for round in 0..300 {
            assert_eq!(lin.total(), fen.total(), "round {round}");
            assert_eq!(lin.pick(&mut rng_a), fen.pick(&mut rng_b), "round {round}");
            // Mutate both the same way between picks.
            let i = rng.below(97) as usize;
            let w = rng.below(1_000);
            lin.set_weight(i, w);
            fen.set_weight(i, w);
        }
    }

    #[test]
    fn scan_capacity_mirrors_incremental_through_residency_changes() {
        let mut dc = small_dc(5, 16, 3);
        let cells: Vec<u32> = (0..16).map(|h| (h % 4) as u32).collect();
        let mut fast = IncrementalCapacity::new(&dc, cells.clone(), 4);
        let slow = ScanCapacity::new(&dc, cells, 4);

        let h = HostId::from_raw(2);
        for i in 0..3 {
            dc.host_mut(h).admit(InstanceId::from_raw(i));
        }
        fast.on_admit_n(h, 3, &dc);
        assert_eq!(fast.total_free(&dc), slow.total_free(&dc));

        dc.host_mut(h).evict(InstanceId::from_raw(1));
        fast.on_evict(h, &dc);
        assert_eq!(fast.total_free(&dc), slow.total_free(&dc));

        let displaced = dc.reboot_host(h, SimTime::from_secs(9));
        fast.on_host_reboot(h, displaced.len(), &dc);
        assert_eq!(fast.total_free(&dc), slow.total_free(&dc));
        for cell in 0..4 {
            assert_eq!(fast.cell_free(cell, &dc), slow.cell_free(cell, &dc));
        }
    }

    #[test]
    fn spill_picks_agree_with_the_optimized_overlay() {
        let dc = small_dc(11, 10, 2);
        let cells: Vec<u32> = (0..10).map(|h| (h % 2) as u32).collect();
        let mut fast = IncrementalCapacity::new(&dc, cells.clone(), 2);
        let mut slow = ScanCapacity::new(&dc, cells, 2);
        let mut rng_a = SimRng::seed_from(13);
        let mut rng_b = rng_a.clone();
        fast.begin_plan();
        slow.begin_plan();
        // Drain the whole pool through the overlay: 20 picks, then None.
        for round in 0..20 {
            let a = fast.plan_spill_pick(&dc, &mut rng_a);
            let b = slow.plan_spill_pick(&dc, &mut rng_b);
            assert_eq!(a, b, "round {round}");
            assert!(a.is_some(), "round {round}");
        }
        assert_eq!(fast.plan_spill_pick(&dc, &mut rng_a), None);
        assert_eq!(slow.plan_spill_pick(&dc, &mut rng_b), None);
        fast.end_plan();
        slow.end_plan();
        // Both consumed identical RNG: the streams still agree.
        assert_eq!(rng_a.below(1 << 30), rng_b.below(1 << 30));
    }
}
