//! Greedy counterexample minimization.
//!
//! The vendored `proptest` stand-in generates inputs but does not shrink
//! them, so a raw failing [`Schedule`] can carry dozens of irrelevant
//! ops. [`minimize`] implements delta-debugging-style reduction: delete
//! chunks of ops (halving the chunk size down to single ops), shrink op
//! magnitudes and world parameters toward their minima, and keep any
//! change under which the failure predicate still fires. The result is
//! 1-minimal — no single remaining op can be deleted, and no single
//! shrink step applies — which is what the differential tests print and
//! what goes into the seed corpus.

use crate::schedule::{Op, Schedule};

/// Shrinks `schedule` while `fails` keeps returning `true` for the
/// candidate. `fails(&schedule)` must be `true` on entry; the returned
/// schedule also satisfies it.
///
/// The predicate is pure trial execution — typically
/// `|s| check(s).is_err()` — and may run many times; keep schedules
/// small.
///
/// # Panics
///
/// Panics if `fails(&schedule)` is `false` on entry (nothing to
/// minimize).
pub fn minimize(schedule: Schedule, fails: impl Fn(&Schedule) -> bool) -> Schedule {
    assert!(fails(&schedule), "minimize needs a failing schedule");
    let mut best = schedule;
    loop {
        let mut changed = false;
        changed |= delete_op_chunks(&mut best, &fails);
        changed |= shrink_ops(&mut best, &fails);
        changed |= shrink_world(&mut best, &fails);
        if !changed {
            return best;
        }
    }
}

/// Tries deleting runs of ops, largest chunks first.
fn delete_op_chunks(best: &mut Schedule, fails: &impl Fn(&Schedule) -> bool) -> bool {
    let mut changed = false;
    let mut chunk = best.ops.len();
    while chunk >= 1 {
        let mut start = 0;
        while start < best.ops.len() {
            let end = (start + chunk).min(best.ops.len());
            let mut candidate = best.clone();
            candidate.ops.drain(start..end);
            if fails(&candidate) {
                *best = candidate;
                changed = true;
                // Same start now names the next chunk; do not advance.
            } else {
                start = end;
            }
        }
        chunk /= 2;
    }
    changed
}

/// Tries halving each op's magnitude toward 1 (or 0 for demand).
fn shrink_ops(best: &mut Schedule, fails: &impl Fn(&Schedule) -> bool) -> bool {
    let mut changed = false;
    for i in 0..best.ops.len() {
        loop {
            let shrunk = match best.ops[i] {
                Op::Launch { service, count } if count > 1 => Some(Op::Launch {
                    service,
                    count: count / 2,
                }),
                Op::SetLoad { service, demand } if demand > 0 => Some(Op::SetLoad {
                    service,
                    demand: demand / 2,
                }),
                Op::Advance { seconds } if seconds > 1 => Some(Op::Advance {
                    seconds: seconds / 2,
                }),
                _ => None,
            };
            let Some(op) = shrunk else { break };
            let mut candidate = best.clone();
            candidate.ops[i] = op;
            if fails(&candidate) {
                *best = candidate;
                changed = true;
            } else {
                break;
            }
        }
    }
    changed
}

/// Tries simplifying the world: fewer services and hosts, default
/// capacity, churn off.
fn shrink_world(best: &mut Schedule, fails: &impl Fn(&Schedule) -> bool) -> bool {
    let mut changed = false;
    let try_candidate = |best: &mut Schedule, candidate: Schedule| {
        if candidate != *best && fails(&candidate) {
            *best = candidate;
            true
        } else {
            false
        }
    };
    if best.services > 1 {
        let mut c = best.clone();
        c.services = 1;
        changed |= try_candidate(best, c);
    }
    if best.accounts > 1 {
        let mut c = best.clone();
        c.accounts = 1;
        changed |= try_candidate(best, c);
    }
    while best.hosts > 4 {
        let mut c = best.clone();
        c.hosts = (best.hosts / 2).max(4);
        if !try_candidate(best, c) {
            break;
        }
        changed = true;
    }
    if best.host_capacity > 0 {
        let mut c = best.clone();
        c.host_capacity = 0;
        changed |= try_candidate(best, c);
    }
    if best.instance_churn {
        let mut c = best.clone();
        c.instance_churn = false;
        changed |= try_candidate(best, c);
    }
    if best.host_churn_mins.is_some() {
        let mut c = best.clone();
        c.host_churn_mins = None;
        changed |= try_candidate(best, c);
    }
    if best.dynamic {
        let mut c = best.clone();
        c.dynamic = false;
        changed |= try_candidate(best, c);
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bloated() -> Schedule {
        Schedule {
            seed: 1,
            hosts: 64,
            host_capacity: 9,
            services: 3,
            accounts: 3,
            dynamic: true,
            instance_churn: true,
            host_churn_mins: Some(120),
            ops: vec![
                Op::Advance { seconds: 600 },
                Op::Launch {
                    service: 0,
                    count: 96,
                },
                Op::SetLoad {
                    service: 1,
                    demand: 40,
                },
                Op::KillAll { service: 2 },
                Op::DisconnectAll { service: 0 },
                Op::Advance { seconds: 1_200 },
            ],
        }
    }

    #[test]
    fn minimizes_to_the_failure_witness() {
        // Synthetic failure: any schedule containing a KillAll. Everything
        // else must be stripped or shrunk to its floor.
        let fails = |s: &Schedule| s.ops.iter().any(|op| matches!(op, Op::KillAll { .. }));
        let min = minimize(bloated(), fails);
        assert_eq!(min.ops, vec![Op::KillAll { service: 2 }]);
        assert_eq!(min.services, 1);
        assert_eq!(min.accounts, 1);
        assert_eq!(min.hosts, 4);
        assert_eq!(min.host_capacity, 0);
        assert!(!min.dynamic && !min.instance_churn);
        assert_eq!(min.host_churn_mins, None);
    }

    #[test]
    fn preserves_conjunctive_witnesses() {
        // Failure needs a launch of at least 8 AND a later advance: the
        // minimizer must keep one of each at the boundary magnitudes.
        let fails = |s: &Schedule| {
            let launch_at = s
                .ops
                .iter()
                .position(|op| matches!(op, Op::Launch { count, .. } if *count >= 8));
            let advance_at = s
                .ops
                .iter()
                .rposition(|op| matches!(op, Op::Advance { .. }));
            matches!((launch_at, advance_at), (Some(l), Some(a)) if l < a)
        };
        let min = minimize(bloated(), fails);
        assert_eq!(min.ops.len(), 2, "exactly the two witnesses: {:?}", min.ops);
        assert!(matches!(min.ops[0], Op::Launch { count: 8..=15, .. }));
        assert!(matches!(min.ops[1], Op::Advance { seconds: 1 }));
    }

    #[test]
    #[should_panic(expected = "failing schedule")]
    fn rejects_passing_schedules() {
        let _ = minimize(bloated(), |_| false);
    }
}
