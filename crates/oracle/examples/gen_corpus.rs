//! Regenerates the pinned seed corpus under `crates/oracle/corpus/`.
//!
//! The corpus pins one schedule per regime the differential suite covers,
//! so CI exercises every code path deterministically even when the
//! randomized properties happen not to. Run after changing the
//! [`Schedule`] shape:
//!
//! ```text
//! cargo run -p eaao-oracle --example gen_corpus
//! ```
//!
//! Minimized counterexamples from failed property runs belong here too:
//! add them to `corpus()` with a comment naming the bug they caught.

use eaao_oracle::schedule::{Op, Schedule};

/// Every pinned schedule, `(file_stem, schedule)`.
pub fn corpus() -> Vec<(&'static str, Schedule)> {
    vec![
        (
            "smoke",
            Schedule {
                seed: 2_024,
                hosts: 25,
                host_capacity: 0,
                services: 2,
                accounts: 1,
                dynamic: false,
                instance_churn: false,
                host_churn_mins: None,
                ops: vec![
                    Op::Launch {
                        service: 0,
                        count: 40,
                    },
                    Op::SetLoad {
                        service: 1,
                        demand: 25,
                    },
                    Op::DisconnectAll { service: 0 },
                    Op::Advance { seconds: 1_200 },
                    Op::Launch {
                        service: 0,
                        count: 10,
                    },
                    Op::KillAll { service: 1 },
                ],
            },
        ),
        (
            "reap",
            Schedule {
                seed: 7,
                hosts: 20,
                host_capacity: 0,
                services: 2,
                accounts: 1,
                dynamic: false,
                instance_churn: false,
                host_churn_mins: None,
                ops: vec![
                    Op::Launch {
                        service: 0,
                        count: 60,
                    },
                    Op::DisconnectAll { service: 0 },
                    Op::Advance { seconds: 200 },
                    Op::Launch {
                        service: 0,
                        count: 30,
                    },
                    Op::DisconnectAll { service: 0 },
                    Op::Advance { seconds: 300 },
                    Op::Advance { seconds: 300 },
                    Op::Advance { seconds: 300 },
                ],
            },
        ),
        (
            "churn",
            Schedule {
                seed: 99,
                hosts: 15,
                host_capacity: 0,
                services: 2,
                accounts: 1,
                dynamic: false,
                instance_churn: true,
                host_churn_mins: Some(30),
                ops: vec![
                    Op::Launch {
                        service: 0,
                        count: 40,
                    },
                    Op::Advance { seconds: 40_000 },
                    Op::SetLoad {
                        service: 0,
                        demand: 20,
                    },
                    Op::Advance { seconds: 40_000 },
                    Op::Launch {
                        service: 1,
                        count: 30,
                    },
                    Op::Advance { seconds: 40_000 },
                ],
            },
        ),
        (
            "spill",
            Schedule {
                seed: 13,
                hosts: 8,
                host_capacity: 4,
                services: 2,
                accounts: 1,
                dynamic: false,
                instance_churn: false,
                host_churn_mins: None,
                ops: vec![
                    Op::Launch {
                        service: 0,
                        count: 30,
                    },
                    Op::Launch {
                        service: 1,
                        count: 30,
                    },
                    Op::KillAll { service: 0 },
                    Op::Launch {
                        service: 1,
                        count: 20,
                    },
                ],
            },
        ),
        (
            "dynamic",
            Schedule {
                seed: 1_234,
                hosts: 30,
                host_capacity: 0,
                services: 2,
                accounts: 1,
                dynamic: true,
                instance_churn: false,
                host_churn_mins: None,
                ops: vec![
                    Op::Launch {
                        service: 0,
                        count: 80,
                    },
                    Op::KillAll { service: 0 },
                    Op::Advance { seconds: 2_700 },
                    Op::Launch {
                        service: 0,
                        count: 80,
                    },
                    Op::SetLoad {
                        service: 1,
                        demand: 50,
                    },
                ],
            },
        ),
        (
            "errors",
            Schedule {
                seed: 55,
                hosts: 6,
                host_capacity: 3,
                services: 1,
                accounts: 1,
                dynamic: false,
                instance_churn: false,
                host_churn_mins: None,
                ops: vec![
                    // Over the service cap: rejected before planning.
                    Op::Launch {
                        service: 0,
                        count: 400,
                    },
                    // Over the pool: planned, rolled back, DataCenterFull.
                    Op::Launch {
                        service: 0,
                        count: 100,
                    },
                    Op::Launch {
                        service: 0,
                        count: 12,
                    },
                    // Warm reuse + rollback interplay.
                    Op::DisconnectAll { service: 0 },
                    Op::Launch {
                        service: 0,
                        count: 100,
                    },
                    Op::Advance { seconds: 1_200 },
                ],
            },
        ),
        (
            // Lazy-materialization regime (PR 8): a multi-cell pool where
            // the warm-up touches only account 0's cell and the closing
            // burst launches into an account whose cell no op has touched
            // — first-touch shard materialization deep into the run.
            "cold-cells",
            Schedule {
                seed: 4_242,
                hosts: 380,
                host_capacity: 0,
                services: 4,
                accounts: 4,
                dynamic: false,
                instance_churn: false,
                host_churn_mins: None,
                ops: vec![
                    Op::Launch {
                        service: 0,
                        count: 70,
                    },
                    Op::SetLoad {
                        service: 0,
                        demand: 30,
                    },
                    Op::DisconnectAll { service: 0 },
                    Op::Advance { seconds: 900 },
                    Op::Launch {
                        service: 3,
                        count: 80,
                    },
                    Op::Advance { seconds: 1_200 },
                ],
            },
        ),
    ]
}

fn main() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    for (stem, schedule) in corpus() {
        let path = dir.join(format!("{stem}.json"));
        let json = serde_json::to_string_pretty(&schedule).expect("serializes");
        std::fs::write(&path, json + "\n").expect("write corpus file");
        println!("wrote {}", path.display());
    }
}
