//! Snapshot/branch differential properties and lifecycle regressions.
//!
//! The copy-on-write forking contract of `World::snapshot`/`World::branch`
//! (PR 8): a branch taken at any op boundary must replay the remainder of
//! a schedule *byte-identically* to the un-branched original — and
//! mutating either side must never perturb the other. The properties here
//! drive that through randomized schedules and split points; the plain
//! `#[test]`s pin the lifecycle edge cases (branch-of-branch, snapshots
//! mid-reboot-sweep, branching with most shards still unmaterialized,
//! and parent-dropped-before-child).

use proptest::prelude::*;

use eaao_oracle::schedule::{run, Op, Schedule, Session};
use eaao_oracle::strategies;
use eaao_orchestrator::engine::OptimizedEngine;

/// Runs `session` over `ops[from..]`, returning the transcript lines.
fn finish(session: &mut Session<OptimizedEngine>, ops: &[Op], from: usize) -> Vec<String> {
    ops.iter()
        .enumerate()
        .skip(from)
        .map(|(step, &op)| session.apply_step(step, op))
        .collect()
}

/// Applies off-schedule perturbation ops to a session (used to mutate a
/// branch before checking its parent never noticed).
fn perturb(session: &mut Session<OptimizedEngine>) {
    for op in [
        Op::Launch {
            service: 0,
            count: 9,
        },
        Op::Advance { seconds: 777 },
        Op::SetLoad {
            service: 0,
            demand: 3,
        },
        Op::KillAll { service: 0 },
    ] {
        // Step index is irrelevant here; the lines are discarded.
        let _ = session.apply_step(usize::MAX, op);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// Property: branch-vs-rebuild trajectory equality. At a random op
    /// boundary, fork the world; the branch's remaining transcript must
    /// equal the suffix of an uninterrupted full run — and so must the
    /// parent's, after the branch already ran to completion (replay
    /// independence in both directions).
    #[test]
    fn branch_replays_identically_to_rebuild(
        s in strategies::schedule(),
        frac in 0.0f64..1.0,
    ) {
        let split = ((s.ops.len() as f64) * frac) as usize;
        let full = run::<OptimizedEngine>(&s).lines;
        let mut parent = Session::<OptimizedEngine>::new(&s);
        let prefix: Vec<String> = (0..split).map(|i| parent.apply_step(i, s.ops[i])).collect();
        prop_assert_eq!(&prefix[..], &full[..split], "prefix before the fork diverged");
        let mut branch = parent.branch();
        let branch_suffix = finish(&mut branch, &s.ops, split);
        prop_assert_eq!(&branch_suffix[..], &full[split..], "branch suffix diverged");
        let parent_suffix = finish(&mut parent, &s.ops, split);
        prop_assert_eq!(&parent_suffix[..], &full[split..], "parent suffix diverged after branching");
    }

    /// Property: branch isolation. Mutating a branch (off-schedule
    /// launches, advances, kills) must never perturb the parent's
    /// subsequent trajectory — and symmetrically, finishing the parent
    /// first must not perturb a later-replayed branch.
    #[test]
    fn mutating_a_branch_never_perturbs_the_parent(
        s in strategies::schedule(),
        frac in 0.0f64..1.0,
    ) {
        let split = ((s.ops.len() as f64) * frac) as usize;
        let full = run::<OptimizedEngine>(&s).lines;
        let mut parent = Session::<OptimizedEngine>::new(&s);
        for i in 0..split {
            parent.apply_step(i, s.ops[i]);
        }
        let mut scratch = parent.branch();
        perturb(&mut scratch);
        let parent_suffix = finish(&mut parent, &s.ops, split);
        prop_assert_eq!(&parent_suffix[..], &full[split..], "perturbed branch leaked into parent");
        // The scratch branch stays live and independent afterwards, too.
        let mut replay = scratch.branch();
        let a = finish(&mut replay, &s.ops, split);
        let b = finish(&mut scratch, &s.ops, split);
        prop_assert_eq!(a, b, "branch-of-perturbed-branch diverged from its source");
    }

    /// Property: branching under the lazy regime. Cold-cell schedules
    /// fork right before the cold burst, so the branch and the parent
    /// both materialize the cold cell *after* the fork — independently,
    /// from shared genesis — and must still agree with the full run.
    #[test]
    fn branches_materialize_cold_cells_independently(
        s in strategies::cold_cell_burst_schedule(),
    ) {
        let split = s.ops.len() - 1; // fork right before the cold burst
        let full = run::<OptimizedEngine>(&s).lines;
        let mut parent = Session::<OptimizedEngine>::new(&s);
        for i in 0..split {
            parent.apply_step(i, s.ops[i]);
        }
        let mut branch = parent.branch();
        prop_assert_eq!(
            finish(&mut branch, &s.ops, split),
            full[split..].to_vec(),
            "branch cold-burst diverged"
        );
        prop_assert_eq!(
            finish(&mut parent, &s.ops, split),
            full[split..].to_vec(),
            "parent cold-burst diverged"
        );
    }
}

/// A pinned schedule with host churn on, whose third op is an `Advance`
/// long enough for reboot sweeps to fire before the split.
fn churn_schedule() -> Schedule {
    Schedule {
        seed: 77,
        hosts: 18,
        host_capacity: 0,
        services: 2,
        accounts: 1,
        dynamic: false,
        instance_churn: true,
        host_churn_mins: Some(45),
        ops: vec![
            Op::Launch {
                service: 0,
                count: 50,
            },
            Op::SetLoad {
                service: 1,
                demand: 25,
            },
            Op::Advance { seconds: 30_000 },
            Op::Launch {
                service: 0,
                count: 20,
            },
            Op::Advance { seconds: 30_000 },
            Op::DisconnectAll { service: 0 },
            Op::Advance { seconds: 30_000 },
        ],
    }
}

#[test]
fn branch_of_branch_replays_identically() {
    let s = churn_schedule();
    let full = run::<OptimizedEngine>(&s).lines;
    let mut parent = Session::<OptimizedEngine>::new(&s);
    for i in 0..2 {
        parent.apply_step(i, s.ops[i]);
    }
    let mut child = parent.branch();
    for i in 2..4 {
        child.apply_step(i, s.ops[i]);
    }
    let mut grandchild = child.branch();
    assert_eq!(
        finish(&mut grandchild, &s.ops, 4),
        full[4..].to_vec(),
        "grandchild diverged"
    );
    // Every generation still finishes correctly after the deeper forks.
    assert_eq!(finish(&mut child, &s.ops, 4), full[4..].to_vec());
    assert_eq!(finish(&mut parent, &s.ops, 2), full[2..].to_vec());
}

#[test]
fn snapshot_taken_mid_reboot_sweep_replays_identically() {
    // Split right after a long Advance: reboot sweeps fired before the
    // snapshot, and the pending next-sweep event (plus the RNG position
    // that schedules it) must be captured so both sides keep rebooting
    // the same hosts at the same times.
    let s = churn_schedule();
    let full = run::<OptimizedEngine>(&s).lines;
    let mut parent = Session::<OptimizedEngine>::new(&s);
    for i in 0..3 {
        parent.apply_step(i, s.ops[i]);
    }
    let snap = parent.world().snapshot();
    assert_eq!(snap.taken_at(), parent.world().now());
    // Two branches of one snapshot replay identically to the original.
    for _ in 0..2 {
        let mut branch = Session::<OptimizedEngine>::new(&s);
        for i in 0..3 {
            branch.apply_step(i, s.ops[i]);
        }
        // (Rebuilt prefix only to obtain matching service handles; the
        // world itself comes from the snapshot.)
        *branch.world_mut() = snap.branch();
        assert_eq!(finish(&mut branch, &s.ops, 3), full[3..].to_vec());
    }
    assert_eq!(finish(&mut parent, &s.ops, 3), full[3..].to_vec());
}

#[test]
fn branching_after_partial_materialization_stays_lazy_and_correct() {
    // Multi-cell pool, warm-up touches only account 0's cell: at the
    // fork most shards are still unmaterialized, and the fork must keep
    // them that way (laziness survives cloning) while both sides agree
    // on the cold burst.
    let s = Schedule {
        seed: 9_001,
        hosts: 300,
        host_capacity: 0,
        services: 3,
        accounts: 3,
        dynamic: false,
        instance_churn: false,
        host_churn_mins: None,
        ops: vec![
            Op::Launch {
                service: 0,
                count: 60,
            },
            Op::DisconnectAll { service: 0 },
            Op::Advance { seconds: 600 },
            Op::Launch {
                service: 2,
                count: 70,
            },
            Op::Advance { seconds: 1_200 },
        ],
    };
    let full = run::<OptimizedEngine>(&s).lines;
    let mut parent = Session::<OptimizedEngine>::new(&s);
    for i in 0..3 {
        parent.apply_step(i, s.ops[i]);
    }
    let before = parent.world().data_center().materialized_hosts();
    assert!(
        before < s.hosts,
        "warm-up materialized the whole pool ({before}/{})",
        s.hosts
    );
    let mut branch = parent.branch();
    assert_eq!(
        branch.world().data_center().materialized_hosts(),
        before,
        "branching changed materialization"
    );
    assert_eq!(finish(&mut branch, &s.ops, 3), full[3..].to_vec());
    assert!(
        branch.world().data_center().materialized_hosts() > before,
        "cold burst materialized nothing"
    );
    // The branch's first-touch materialization is invisible to the parent.
    assert_eq!(finish(&mut parent, &s.ops, 3), full[3..].to_vec());
}

#[test]
fn dropping_the_parent_before_the_child_is_safe() {
    let s = churn_schedule();
    let full = run::<OptimizedEngine>(&s).lines;
    let mut child = {
        let mut parent = Session::<OptimizedEngine>::new(&s);
        for i in 0..4 {
            parent.apply_step(i, s.ops[i]);
        }
        let child = parent.branch();
        drop(parent); // parent (and its shard references) die first
        child
    };
    assert_eq!(finish(&mut child, &s.ops, 4), full[4..].to_vec());
    // Same for the snapshot wrapper: branches outlive their snapshot.
    let mut branch = {
        let mut parent = Session::<OptimizedEngine>::new(&s);
        for i in 0..4 {
            parent.apply_step(i, s.ops[i]);
        }
        let snap = parent.world().snapshot();
        drop(parent);
        let mut replay = Session::<OptimizedEngine>::new(&s);
        for i in 0..4 {
            replay.apply_step(i, s.ops[i]);
        }
        *replay.world_mut() = snap.branch();
        drop(snap);
        replay
    };
    assert_eq!(finish(&mut branch, &s.ops, 4), full[4..].to_vec());
}
