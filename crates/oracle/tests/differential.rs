//! The differential-oracle property suite: randomized schedules through
//! both engines, byte-identical transcripts required.
//!
//! Each property targets one regime of the hot path (general mixes,
//! idle-reap timing, churn, capacity spill, dynamic placement, and the
//! exact billing/free-slot accounting). A failure is first minimized with
//! the greedy shrinker and the *minimized* schedule is printed as JSON —
//! paste it into a corpus file or `replay` it per `docs/TESTING.md`.

use proptest::prelude::*;

use eaao_oracle::minimize::minimize;
use eaao_oracle::schedule::{check, run, Schedule, Session, Trajectory};
use eaao_oracle::strategies;
use eaao_oracle::ReferenceEngine;
use eaao_orchestrator::engine::OptimizedEngine;

/// Runs a schedule on the optimized engine with every shard force-
/// materialized at build — the lazy path's own eager twin. Unlike the
/// reference engine (a different sampler/capacity implementation), this
/// isolates exactly one variable: *when* hosts materialize.
fn run_prematerialized(schedule: &Schedule) -> Trajectory {
    let mut session = Session::<OptimizedEngine>::new(schedule);
    session.world().data_center().materialize_all();
    let lines = schedule
        .ops
        .iter()
        .enumerate()
        .map(|(step, &op)| session.apply_step(step, op))
        .collect();
    Trajectory { lines }
}

/// Checks the schedule on both engines; on divergence, shrinks it and
/// fails with the minimized reproducer.
fn assert_engines_agree(schedule: &Schedule) -> Result<(), TestCaseError> {
    if check(schedule).is_ok() {
        return Ok(());
    }
    let minimized = minimize(schedule.clone(), |s| check(s).is_err());
    let divergence = check(&minimized).expect_err("minimized schedule still fails");
    Err(TestCaseError::fail(format!(
        "{divergence}\nminimized schedule (save to corpus / replay per docs/TESTING.md):\n{}",
        serde_json::to_string(&minimized).expect("schedule serializes")
    )))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Property 1: arbitrary schedules — every op mix, capacity override,
    /// churn switch, and region flavor the generator can produce.
    #[test]
    fn transcripts_identical_for_arbitrary_schedules(s in strategies::schedule()) {
        assert_engines_agree(&s)?;
    }

    /// Property 2: idle-reap timing — disconnects and sub-reaper-period
    /// advances, so instances vanish mid-schedule and the reap times
    /// (observable as alive-set shrinkage per step) must line up exactly.
    #[test]
    fn reap_times_identical_under_idle_cycles(s in strategies::reap_heavy_schedule()) {
        assert_engines_agree(&s)?;
    }

    /// Property 3: churn — instance restarts and host reboot sweeps fire
    /// many times; every displaced-instance unindex and capacity update
    /// must keep the engines in lockstep.
    #[test]
    fn churn_trajectories_identical(s in strategies::churn_heavy_schedule()) {
        assert_engines_agree(&s)?;
    }

    /// Property 4: capacity spill — tiny hosts force launches past their
    /// target sets into the popularity-weighted spill pick, the most
    /// intricate shared code path between the two capacity backends.
    #[test]
    fn spill_paths_identical_when_pool_saturates(s in strategies::spill_heavy_schedule()) {
        assert_engines_agree(&s)?;
    }

    /// Property 5: dynamic placement (us-central1-style) — per-launch
    /// weighted-subset draws go through the engines' samplers.
    #[test]
    fn dynamic_region_transcripts_identical(s in strategies::dynamic_schedule()) {
        assert_engines_agree(&s)?;
    }

    /// Property 6: the financial view in isolation — billing bits and
    /// engine-reported free slots, extracted from the transcript, match
    /// at every step (a focused failure message when only accounting
    /// drifts).
    #[test]
    fn billing_and_free_slots_identical(s in strategies::reap_heavy_schedule()) {
        let a = run::<OptimizedEngine>(&s);
        let b = run::<ReferenceEngine>(&s);
        prop_assert_eq!(a.lines.len(), b.lines.len());
        for (la, lb) in a.lines.iter().zip(&b.lines) {
            let ra: eaao_oracle::schedule::StepRecord =
                serde_json::from_str(la).expect("valid record");
            let rb: eaao_oracle::schedule::StepRecord =
                serde_json::from_str(lb).expect("valid record");
            prop_assert_eq!(ra.billed_bits, rb.billed_bits, "billing bits at step {}", ra.step);
            prop_assert_eq!(ra.free_slots, rb.free_slots, "free slots at step {}", ra.step);
        }
    }

    /// Property 7: cold-cell bursts — the closing launch lands in a
    /// scheduling cell no earlier op touched, so the optimized engine
    /// materializes its shards mid-run while the eager reference engine
    /// materialized them at build. Both transcripts must still match
    /// byte for byte (lazy-vs-eager world equality, cross-engine).
    #[test]
    fn cold_cell_bursts_identical_across_engines(s in strategies::cold_cell_burst_schedule()) {
        assert_engines_agree(&s)?;
    }

    /// Property 8: materialization *order* is unobservable — the same
    /// optimized engine run twice, once lazy and once with every shard
    /// force-materialized at build, produces identical transcripts. This
    /// isolates the keyed-RNG-stream contract ([`SimRng::keyed`]: host
    /// `i`'s stream is a pure function of the genesis base and `i`) from
    /// every other engine difference.
    #[test]
    fn lazy_and_prematerialized_transcripts_identical(s in strategies::schedule()) {
        let lazy = run::<OptimizedEngine>(&s);
        let eager = run_prematerialized(&s);
        prop_assert_eq!(
            lazy.transcript(),
            eager.transcript(),
            "materialization order leaked into the trajectory"
        );
    }

    /// Property 8, cold-cell flavored: the regime where lazy and eager
    /// construction differ the most (most shards still unmaterialized
    /// when the burst fires).
    #[test]
    fn lazy_and_prematerialized_agree_on_cold_cells(s in strategies::cold_cell_burst_schedule()) {
        let lazy = run::<OptimizedEngine>(&s);
        let eager = run_prematerialized(&s);
        prop_assert_eq!(lazy.transcript(), eager.transcript());
    }
}
