//! The differential-oracle property suite: randomized schedules through
//! both engines, byte-identical transcripts required.
//!
//! Each property targets one regime of the hot path (general mixes,
//! idle-reap timing, churn, capacity spill, dynamic placement, and the
//! exact billing/free-slot accounting). A failure is first minimized with
//! the greedy shrinker and the *minimized* schedule is printed as JSON —
//! paste it into a corpus file or `replay` it per `docs/TESTING.md`.

use proptest::prelude::*;

use eaao_oracle::minimize::minimize;
use eaao_oracle::schedule::{check, run, Schedule};
use eaao_oracle::strategies;
use eaao_oracle::ReferenceEngine;
use eaao_orchestrator::engine::OptimizedEngine;

/// Checks the schedule on both engines; on divergence, shrinks it and
/// fails with the minimized reproducer.
fn assert_engines_agree(schedule: &Schedule) -> Result<(), TestCaseError> {
    if check(schedule).is_ok() {
        return Ok(());
    }
    let minimized = minimize(schedule.clone(), |s| check(s).is_err());
    let divergence = check(&minimized).expect_err("minimized schedule still fails");
    Err(TestCaseError::fail(format!(
        "{divergence}\nminimized schedule (save to corpus / replay per docs/TESTING.md):\n{}",
        serde_json::to_string(&minimized).expect("schedule serializes")
    )))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Property 1: arbitrary schedules — every op mix, capacity override,
    /// churn switch, and region flavor the generator can produce.
    #[test]
    fn transcripts_identical_for_arbitrary_schedules(s in strategies::schedule()) {
        assert_engines_agree(&s)?;
    }

    /// Property 2: idle-reap timing — disconnects and sub-reaper-period
    /// advances, so instances vanish mid-schedule and the reap times
    /// (observable as alive-set shrinkage per step) must line up exactly.
    #[test]
    fn reap_times_identical_under_idle_cycles(s in strategies::reap_heavy_schedule()) {
        assert_engines_agree(&s)?;
    }

    /// Property 3: churn — instance restarts and host reboot sweeps fire
    /// many times; every displaced-instance unindex and capacity update
    /// must keep the engines in lockstep.
    #[test]
    fn churn_trajectories_identical(s in strategies::churn_heavy_schedule()) {
        assert_engines_agree(&s)?;
    }

    /// Property 4: capacity spill — tiny hosts force launches past their
    /// target sets into the popularity-weighted spill pick, the most
    /// intricate shared code path between the two capacity backends.
    #[test]
    fn spill_paths_identical_when_pool_saturates(s in strategies::spill_heavy_schedule()) {
        assert_engines_agree(&s)?;
    }

    /// Property 5: dynamic placement (us-central1-style) — per-launch
    /// weighted-subset draws go through the engines' samplers.
    #[test]
    fn dynamic_region_transcripts_identical(s in strategies::dynamic_schedule()) {
        assert_engines_agree(&s)?;
    }

    /// Property 6: the financial view in isolation — billing bits and
    /// engine-reported free slots, extracted from the transcript, match
    /// at every step (a focused failure message when only accounting
    /// drifts).
    #[test]
    fn billing_and_free_slots_identical(s in strategies::reap_heavy_schedule()) {
        let a = run::<OptimizedEngine>(&s);
        let b = run::<ReferenceEngine>(&s);
        prop_assert_eq!(a.lines.len(), b.lines.len());
        for (la, lb) in a.lines.iter().zip(&b.lines) {
            let ra: eaao_oracle::schedule::StepRecord =
                serde_json::from_str(la).expect("valid record");
            let rb: eaao_oracle::schedule::StepRecord =
                serde_json::from_str(lb).expect("valid record");
            prop_assert_eq!(ra.billed_bits, rb.billed_bits, "billing bits at step {}", ra.step);
            prop_assert_eq!(ra.free_slots, rb.free_slots, "free slots at step {}", ra.step);
        }
    }
}
