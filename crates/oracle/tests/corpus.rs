//! Pinned seed-corpus runner: every schedule under `corpus/` must pass
//! the differential oracle, byte for byte, on every commit.
//!
//! The corpus pins one schedule per regime (see
//! `examples/gen_corpus.rs`), plus any minimized counterexamples promoted
//! from failed property runs. Unlike the randomized suites, these inputs
//! never move, so a regression here bisects cleanly.

use eaao_oracle::schedule::{check, Schedule};

/// `(file_stem, pinned JSON)` — embedded so the test needs no filesystem
/// layout assumptions at run time.
const CORPUS: &[(&str, &str)] = &[
    ("smoke", include_str!("../corpus/smoke.json")),
    ("reap", include_str!("../corpus/reap.json")),
    ("churn", include_str!("../corpus/churn.json")),
    ("spill", include_str!("../corpus/spill.json")),
    ("dynamic", include_str!("../corpus/dynamic.json")),
    ("errors", include_str!("../corpus/errors.json")),
    ("cold-cells", include_str!("../corpus/cold-cells.json")),
];

#[test]
fn every_corpus_schedule_passes_the_oracle() {
    for (name, json) in CORPUS {
        let schedule: Schedule =
            serde_json::from_str(json).unwrap_or_else(|e| panic!("corpus/{name}.json: {e:?}"));
        if let Err(divergence) = check(&schedule) {
            panic!("corpus/{name}.json diverged:\n{divergence}");
        }
    }
}

#[test]
fn corpus_files_are_regenerable() {
    // Round-trip: parse → re-serialize(pretty) must reproduce the file
    // byte-for-byte, so `cargo run -p eaao-oracle --example gen_corpus`
    // stays a no-op when nothing changed.
    for (name, json) in CORPUS {
        let schedule: Schedule =
            serde_json::from_str(json).unwrap_or_else(|e| panic!("corpus/{name}.json: {e:?}"));
        let regenerated = serde_json::to_string_pretty(&schedule).expect("serializes") + "\n";
        assert_eq!(
            &regenerated, *json,
            "corpus/{name}.json is stale; rerun gen_corpus"
        );
    }
}
