//! The ratcheting baseline for semantic findings.
//!
//! `tidy-baseline.json` at the workspace root carries the *known debt* of
//! the call-graph checks: entries keyed by `(check, file, symbol)` — not
//! line numbers, so unrelated edits never invalidate them. The ratchet
//! only turns one way:
//!
//! * a semantic finding with a **justified** matching entry is filtered
//!   out (known debt),
//! * a finding with no entry fails the run (new debt is refused),
//! * an entry matching no finding is itself a finding (fixed debt must be
//!   deleted — the baseline can only shrink), and
//! * an entry with an empty `justification`, a duplicate key, or an
//!   unknown check name is a finding (debt must be owned, once).
//!
//! Lexical findings never pass through the baseline: they are cheap to
//! fix on the spot, and the inline `tidy:allow` mechanism already covers
//! the justified exceptions. Baseline findings themselves
//! ([`CheckId::Baseline`]) are not suppressible or baselinable.

use std::collections::BTreeMap;

use crate::diag::{CheckId, Diagnostic};
use crate::jsonio::{self, Json};

/// Workspace-relative path of the baseline file.
pub const BASELINE_FILE: &str = "tidy-baseline.json";

/// One accepted finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Check name (`panic-reachability`, `determinism-taint`,
    /// `lock-order`).
    pub check: String,
    /// Workspace-relative file of the accepted finding.
    pub file: String,
    /// The finding's stable symbol.
    pub symbol: String,
    /// Why this debt is tolerated (required; empty is a finding).
    pub justification: String,
    /// 1-based line of the entry in the baseline file (0 when built
    /// in-memory rather than parsed).
    pub line: usize,
}

impl Entry {
    fn key(&self) -> (String, String, String) {
        (self.check.clone(), self.file.clone(), self.symbol.clone())
    }
}

/// The parsed baseline.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// Parses the baseline document. Structural errors (not JSON, missing
    /// fields, wrong version) are unrecoverable and returned as `Err`; the
    /// caller turns them into a [`CheckId::Baseline`] finding.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = jsonio::parse(text)?;
        match doc.get("version") {
            Some(Json::Num(v)) if *v == 1.0 => {}
            _ => return Err("baseline `version` must be 1".to_owned()),
        }
        let Some(Json::Arr(items)) = doc.get("entries") else {
            return Err("baseline must have an `entries` array".to_owned());
        };
        let mut entries = Vec::new();
        for item in items {
            let Json::Obj(_, line) = item else {
                return Err("every baseline entry must be an object".to_owned());
            };
            let field = |name: &str| -> Result<String, String> {
                item.get(name)
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("line {line}: entry is missing string field `{name}`"))
            };
            entries.push(Entry {
                check: field("check")?,
                file: field("file")?,
                symbol: field("symbol")?,
                justification: field("justification")?,
                line: *line,
            });
        }
        Ok(Baseline { entries })
    }

    /// Renders the baseline deterministically: entries sorted by key,
    /// two-space indent, trailing newline.
    pub fn render(&self) -> String {
        let mut sorted = self.entries.clone();
        sorted.sort_by_key(Entry::key);
        let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [");
        for (i, e) in sorted.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"check\": {},\n", jsonio::quote(&e.check)));
            out.push_str(&format!("      \"file\": {},\n", jsonio::quote(&e.file)));
            out.push_str(&format!(
                "      \"symbol\": {},\n",
                jsonio::quote(&e.symbol)
            ));
            out.push_str(&format!(
                "      \"justification\": {}\n",
                jsonio::quote(&e.justification)
            ));
            out.push_str("    }");
        }
        if sorted.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }
}

/// Applies the baseline to the semantic findings: returns the findings
/// that survive (unmatched, or matched by an unjustified entry) plus the
/// baseline's own meta-findings (stale/duplicate/unjustified/unknown
/// entries).
pub fn apply(baseline: &Baseline, semantic: Vec<Diagnostic>) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    let mut meta: Vec<Diagnostic> = Vec::new();
    let mut by_key: BTreeMap<(String, String, String), &Entry> = BTreeMap::new();
    let mut matched: BTreeMap<(String, String, String), bool> = BTreeMap::new();
    for e in &baseline.entries {
        if CheckId::from_name(&e.check).is_none_or(|c| !c.is_semantic()) {
            meta.push(Diagnostic::new(
                BASELINE_FILE,
                e.line,
                CheckId::Baseline,
                format!(
                    "`{}` is not a baselinable check: only panic-reachability, \
                     determinism-taint, and lock-order findings may be baselined",
                    e.check
                ),
            ));
            continue;
        }
        if e.justification.trim().is_empty() {
            meta.push(Diagnostic::new(
                BASELINE_FILE,
                e.line,
                CheckId::Baseline,
                format!(
                    "entry ({}, {}, {}) has no justification: say why this debt is \
                     tolerated, or fix the finding and delete the entry",
                    e.check, e.file, e.symbol
                ),
            ));
            continue;
        }
        if by_key.insert(e.key(), e).is_some() {
            meta.push(Diagnostic::new(
                BASELINE_FILE,
                e.line,
                CheckId::Baseline,
                format!("duplicate entry ({}, {}, {})", e.check, e.file, e.symbol),
            ));
            continue;
        }
        matched.insert(e.key(), false);
    }
    let mut surviving = Vec::new();
    for d in semantic {
        let key = (d.check.name().to_owned(), d.file.clone(), d.symbol.clone());
        if let Some(hit) = matched.get_mut(&key) {
            *hit = true;
        } else {
            surviving.push(d);
        }
    }
    for (key, hit) in &matched {
        if !hit {
            let e = by_key[key];
            meta.push(Diagnostic::new(
                BASELINE_FILE,
                e.line,
                CheckId::Baseline,
                format!(
                    "stale entry ({}, {}, {}): the finding no longer fires — delete the \
                     entry so the ratchet tightens",
                    e.check, e.file, e.symbol
                ),
            ));
        }
    }
    meta.sort_by(|a, b| (a.line, &a.message).cmp(&(b.line, &b.message)));
    (surviving, meta)
}

/// Builds the baseline that would make the given semantic findings pass,
/// carrying over justifications from `previous` where keys match. New
/// entries get an empty justification, which is itself a finding until a
/// human writes one — accepting debt is deliberate, twice.
pub fn rebuild(previous: &Baseline, semantic: &[Diagnostic]) -> Baseline {
    let mut carried: BTreeMap<(String, String, String), String> = BTreeMap::new();
    for e in &previous.entries {
        carried.insert(e.key(), e.justification.clone());
    }
    let mut seen: BTreeMap<(String, String, String), ()> = BTreeMap::new();
    let mut entries = Vec::new();
    for d in semantic {
        let key = (d.check.name().to_owned(), d.file.clone(), d.symbol.clone());
        if seen.insert(key.clone(), ()).is_some() {
            continue;
        }
        entries.push(Entry {
            check: key.0.clone(),
            file: key.1.clone(),
            symbol: key.2.clone(),
            justification: carried.get(&key).cloned().unwrap_or_default(),
            line: 0,
        });
    }
    Baseline { entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(check: CheckId, file: &str, symbol: &str) -> Diagnostic {
        Diagnostic::new(file, 10, check, "m").with_symbol(symbol)
    }

    #[test]
    fn justified_entries_filter_matching_findings() {
        let b = Baseline {
            entries: vec![Entry {
                check: "lock-order".into(),
                file: "a.rs".into(),
                symbol: "x -> y".into(),
                justification: "historical".into(),
                line: 4,
            }],
        };
        let (surviving, meta) = apply(
            &b,
            vec![
                diag(CheckId::LockOrder, "a.rs", "x -> y"),
                diag(CheckId::LockOrder, "a.rs", "y -> z"),
            ],
        );
        assert_eq!(surviving.len(), 1);
        assert_eq!(surviving[0].symbol, "y -> z");
        assert!(meta.is_empty(), "{meta:?}");
    }

    #[test]
    fn stale_unjustified_and_duplicate_entries_are_findings() {
        let entry = |sym: &str, just: &str, line: usize| Entry {
            check: "panic-reachability".into(),
            file: "a.rs".into(),
            symbol: sym.into(),
            justification: just.into(),
            line,
        };
        let b = Baseline {
            entries: vec![
                entry("gone", "was real once", 4),
                entry("dup", "x", 9),
                entry("dup", "x", 14),
                entry("empty", "", 19),
            ],
        };
        let (surviving, meta) = apply(&b, vec![diag(CheckId::PanicReach, "a.rs", "dup")]);
        assert!(surviving.is_empty(), "{surviving:?}");
        let lines: Vec<usize> = meta.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![4, 14, 19], "{meta:?}");
        assert!(meta[0].message.contains("stale"), "{}", meta[0].message);
        assert!(meta[1].message.contains("duplicate"), "{}", meta[1].message);
        assert!(
            meta[2].message.contains("justification"),
            "{}",
            meta[2].message
        );
    }

    #[test]
    fn unjustified_entries_do_not_filter() {
        let b = Baseline {
            entries: vec![Entry {
                check: "lock-order".into(),
                file: "a.rs".into(),
                symbol: "x -> y".into(),
                justification: " ".into(),
                line: 4,
            }],
        };
        let (surviving, meta) = apply(&b, vec![diag(CheckId::LockOrder, "a.rs", "x -> y")]);
        assert_eq!(surviving.len(), 1);
        assert_eq!(meta.len(), 1);
    }

    #[test]
    fn render_parse_round_trip_is_stable() {
        let b = Baseline {
            entries: vec![
                Entry {
                    check: "lock-order".into(),
                    file: "b.rs".into(),
                    symbol: "x \"q\" y".into(),
                    justification: "multi\nline".into(),
                    line: 0,
                },
                Entry {
                    check: "determinism-taint".into(),
                    file: "a.rs".into(),
                    symbol: "p -> q".into(),
                    justification: "j".into(),
                    line: 0,
                },
            ],
        };
        let text = b.render();
        let parsed = Baseline::parse(&text).expect("round-trips");
        // Sorted by key on render.
        assert_eq!(parsed.entries[0].check, "determinism-taint");
        assert_eq!(parsed.entries[1].symbol, "x \"q\" y");
        assert_eq!(parsed.entries[1].justification, "multi\nline");
        assert_eq!(Baseline::parse(&text).expect("stable").render(), text);
    }

    #[test]
    fn rebuild_carries_justifications_for_kept_keys() {
        let prev = Baseline {
            entries: vec![Entry {
                check: "lock-order".into(),
                file: "a.rs".into(),
                symbol: "x -> y".into(),
                justification: "known".into(),
                line: 4,
            }],
        };
        let next = rebuild(
            &prev,
            &[
                diag(CheckId::LockOrder, "a.rs", "x -> y"),
                diag(CheckId::DeterminismTaint, "a.rs", "p -> q"),
            ],
        );
        assert_eq!(next.entries.len(), 2);
        let by_symbol: BTreeMap<&str, &str> = next
            .entries
            .iter()
            .map(|e| (e.symbol.as_str(), e.justification.as_str()))
            .collect();
        assert_eq!(by_symbol["x -> y"], "known");
        assert_eq!(by_symbol["p -> q"], "");
    }
}
