//! A tiny JSON reader/writer for the tidy pass.
//!
//! `eaao-tidy` is dependency-free by policy (it must build before anything
//! else and can never be broken by a vendored-crate problem), so it cannot
//! use `serde_json`. This module implements exactly the JSON subset the
//! pass needs: objects, arrays, strings, integers, booleans, and null —
//! with `\uXXXX` escapes on read and deterministic, sorted-nothing output
//! on write (callers control ordering). The parser records the 1-based
//! line each object starts on so baseline diagnostics can anchor to the
//! offending entry.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as f64; the pass only writes integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array, in document order.
    Arr(Vec<Json>),
    /// An object: key/value pairs in document order, plus the 1-based
    /// line its `{` appeared on.
    Obj(Vec<(String, Json)>, usize),
}

impl Json {
    /// The value of `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs, _) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a JSON document. On failure returns a message with a 1-based
/// line number baked in.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        chars: text.chars().collect(),
        i: 0,
        line: 1,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i < p.chars.len() {
        return Err(format!("line {}: trailing content after document", p.line));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    i: usize,
    line: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_ascii_whitespace()) {
            self.bump();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(format!(
                "line {}: expected `{want}`, found `{c}`",
                self.line
            )),
            None => Err(format!(
                "line {}: expected `{want}`, found end of input",
                self.line
            )),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("line {}: unexpected `{c}`", self.line)),
            None => Err(format!("line {}: unexpected end of input", self.line)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for want in word.chars() {
            match self.bump() {
                Some(c) if c == want => {}
                _ => return Err(format!("line {}: malformed literal", self.line)),
            }
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || "+-.eE".contains(c))
        {
            self.bump();
        }
        let text: String = self.chars[start..self.i].iter().collect();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("line {}: malformed number `{text}`", self.line))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(format!("line {}: unterminated string", self.line)),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('b') => out.push('\u{0008}'),
                    Some('f') => out.push('\u{000C}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().and_then(|c| c.to_digit(16)).ok_or_else(|| {
                                format!("line {}: malformed \\u escape", self.line)
                            })?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(format!("line {}: unknown escape", self.line)),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        let at = self.line;
        self.expect('{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Json::Obj(pairs, at));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some('}') => return Ok(Json::Obj(pairs, at)),
                _ => return Err(format!("line {}: expected `,` or `}}`", self.line)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some(']') => return Ok(Json::Arr(items)),
                _ => return Err(format!("line {}: expected `,` or `]`", self.line)),
            }
        }
    }
}

/// Escapes a string for embedding in JSON output (quotes included).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_baseline_shape() {
        let doc = "{\n  \"version\": 1,\n  \"entries\": [\n    {\n      \"check\": \"lock-order\",\n      \"file\": \"a.rs\",\n      \"symbol\": \"x -> y\",\n      \"justification\": \"historical\"\n    }\n  ]\n}\n";
        let v = parse(doc).expect("parses");
        assert_eq!(v.get("version"), Some(&Json::Num(1.0)));
        let Some(Json::Arr(entries)) = v.get("entries") else {
            panic!("entries missing");
        };
        assert_eq!(entries.len(), 1);
        let Json::Obj(_, line) = &entries[0] else {
            panic!("not an object");
        };
        assert_eq!(*line, 4, "entry anchors to its opening brace line");
        assert_eq!(
            entries[0].get("check").and_then(Json::as_str),
            Some("lock-order")
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a \"quoted\" \\ path\nwith\tcontrol \u{0007} bits";
        let quoted = quote(original);
        let parsed = parse(&quoted).expect("parses");
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("{\n  \"a\": 1,\n  oops\n}").expect_err("malformed");
        assert!(err.contains("line 3"), "{err}");
    }
}
