//! Item-level Rust parsing on top of the masking lexer.
//!
//! [`FileModel::parse`] walks the masked lines of one source file and
//! extracts the facts the semantic checks need: `use` imports, `fn` items
//! (with visibility, doc-`# Panics` presence, and body span), and per-body
//! facts — call sites, panic sources, determinism sources, and
//! `parking_lot` lock acquisitions. It is *not* a Rust parser: it tracks
//! brace depth on masked code and pattern-matches item keywords, exactly
//! deep enough for a call graph over a rustfmt-formatted workspace. Known
//! approximations (at most one item start per line, guards assumed held to
//! the end of their binding block) are documented in
//! `docs/STATIC_ANALYSIS.md`.

use std::collections::BTreeMap;

use crate::source::{Line, SourceFile};

/// Visibility of an `fn` item, as far as the pass distinguishes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// `pub fn` — part of the crate's public API surface.
    Public,
    /// `pub(crate)` / `pub(super)` / `pub(in …)` — crate-internal.
    Restricted,
    /// No `pub` at all.
    Private,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// `foo(…)` — a bare name.
    Free(String),
    /// `a::b::foo(…)` — a path; segments in order, callee last.
    Path(Vec<String>),
    /// `.foo(…)` — a method call on some receiver.
    Method(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// What the call names.
    pub target: CallTarget,
    /// 1-based line of the call.
    pub line: usize,
    /// Lock names (see [`LockAcquire::lock`]) held when the call is made.
    pub holding: Vec<String>,
    /// Whether the call is a whole statement whose value is dropped: the
    /// receiver/path starts the line and the matching `)` meets a bare
    /// `;`. `let x = …`, `?`, chained calls, and values flowing into an
    /// enclosing expression are all `false`.
    pub stmt: bool,
}

/// One `.lock()` acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct LockAcquire {
    /// Canonical lock name: `Type.field` for `self.field.lock()` inside an
    /// `impl Type`, otherwise `file-stem::name` for locals and statics.
    pub lock: String,
    /// 1-based line of the acquisition.
    pub line: usize,
    /// Whether the guard is bound (`let g = m.lock();`) and therefore
    /// assumed held until its block closes, as opposed to a transient
    /// same-statement use (`m.lock().push(…)`).
    pub bound: bool,
    /// Locks already held at this acquisition (each yields an order edge).
    pub held: Vec<String>,
}

/// A panic or determinism source found in a function body.
#[derive(Debug, Clone)]
pub struct SourceSite {
    /// 1-based line.
    pub line: usize,
    /// Short description of the construct (`panic!`, `Instant`, `xs[i]`).
    pub what: String,
}

/// One OS-thread spawn site (`thread::spawn`, `std::thread::spawn`, or a
/// `thread::Builder` chain's `.spawn(…)`) inside a function body.
///
/// The handle's fate is classified lexically: a `let` binding is watched
/// for reuse on later lines of the same function, a statement-position
/// spawn whose value meets a bare `;` is a discard, and everything else
/// (pushed, collected, returned, wrapped) is treated as flowing into a
/// tracked container. Nested spawns inside another spawn's argument list
/// are not tracked separately.
#[derive(Debug, Clone)]
pub struct SpawnSite {
    /// 1-based line of the spawn call.
    pub line: usize,
    /// 1-based line where the spawn's argument list closes — call edges
    /// within `line..=end_line` are the thread's entry functions.
    pub end_line: usize,
    /// `let` binding receiving the `JoinHandle`, if any (`let _ = …`
    /// records no binding: the handle is dropped on the spot).
    pub binding: Option<String>,
    /// The handle is dropped where it is made: statement position with no
    /// binding.
    pub discarded: bool,
    /// The binding reappears on a later line of the same function
    /// (joined, stored, or returned by name).
    pub binding_used: bool,
}

/// One cross-thread-queue construction site (`VecDeque`, crossbeam
/// `channel`, or `std::sync::mpsc`).
#[derive(Debug, Clone)]
pub struct QueueSite {
    /// 1-based line.
    pub line: usize,
    /// The constructor as written (`VecDeque::new`, `channel::unbounded`, …).
    pub what: String,
    /// Whether the constructor itself fixes a capacity
    /// (`channel::bounded`, `mpsc::sync_channel`, `VecDeque::with_capacity`).
    pub bounded: bool,
    /// Whether the construction line (or the line directly above) names
    /// the enforcing mechanism in a `bound:` comment.
    pub bound_named: bool,
}

/// One `Condvar::wait`-family call (`cv.wait(&mut guard)`,
/// `cv.wait_while(&mut guard, pred)`, `cv.wait_for(&mut guard, dur)`).
///
/// A condvar wait atomically *releases* its guard for the wait's duration,
/// so it is recorded here instead of as a [`CallSite`] — treating it as a
/// call while the lock is held would fabricate lock-order edges.
#[derive(Debug, Clone)]
pub struct CondvarWait {
    /// 1-based line.
    pub line: usize,
    /// The method name as written (`wait`, `wait_while`, …).
    pub what: String,
    /// The `&mut`-borrowed guard binding the wait releases and reacquires.
    pub guard: String,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Simple name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub type_ctx: Option<String>,
    /// Module path inside the crate (inline `mod`s appended to the
    /// file-derived path).
    pub module: Vec<String>,
    /// 1-based signature line (the line carrying the `fn` token) — the
    /// anchor for diagnostics and inline suppressions.
    pub line: usize,
    /// 1-based line of the body's closing `}` (the signature line while
    /// the body is still open, or for bodyless signatures).
    pub end_line: usize,
    /// Visibility of the `fn` token itself.
    pub vis: Visibility,
    /// Return type text after `->` (empty for `()`), with any `where`
    /// clause stripped. Token-matched, never resolved.
    pub ret: String,
    /// Whether the doc comment above the item has a `# Panics` section.
    pub has_panics_doc: bool,
    /// Whether the item has a body (`false` for trait method signatures).
    pub has_body: bool,
    /// Call sites in the body.
    pub calls: Vec<CallSite>,
    /// Panic sources in the body (`panic!`, bare `unwrap()`, `todo!`,
    /// `unimplemented!`, non-literal slice indexing).
    pub panic_sources: Vec<SourceSite>,
    /// Determinism sources in the body (banned tokens plus names imported
    /// from banned `std` modules).
    pub det_sources: Vec<SourceSite>,
    /// Lock acquisitions in the body.
    pub locks: Vec<LockAcquire>,
    /// OS-thread spawn sites in the body.
    pub spawns: Vec<SpawnSite>,
    /// Cross-thread-queue construction sites in the body.
    pub queues: Vec<QueueSite>,
    /// Condvar wait sites in the body.
    pub condvar_waits: Vec<CondvarWait>,
    /// 1-based lines carrying a `catch_unwind` token — unwind barriers
    /// for the thread-lifecycle check.
    pub catch_unwinds: Vec<usize>,
    /// Whether the item carries a `#[must_use]` attribute.
    pub has_must_use: bool,
    /// Every identifier token appearing in the body — the raw material of
    /// the per-field mention tracking behind the `fork-coverage` check.
    pub body_idents: std::collections::BTreeSet<String>,
}

/// Whether a type definition is a `struct` or an `enum`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeDefKind {
    /// `struct Name { … }` (or unit/tuple struct).
    Struct,
    /// `enum Name { … }` — variants are recorded as [`FieldItem`]s, the
    /// variant payload text standing in for a field type.
    Enum,
}

/// One named field of a struct, or one variant of an enum.
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Field (or variant) name.
    pub name: String,
    /// Declared type text for a field; payload text (`(CloudRunPolicy<E>)`)
    /// for an enum variant. First physical line only.
    pub ty: String,
    /// 1-based declaration line — the anchor for field-level diagnostics
    /// and inline suppressions.
    pub line: usize,
}

/// One associated-type binding (`type Name = Ty;`) inside an `impl` or
/// `trait` block — the edge that lets the fork-surface closure follow
/// `impl Engine for OptimizedEngine { type Sampler = FenwickSampler; }`
/// from the engine to the sampler it plugs in.
#[derive(Debug, Clone)]
pub struct AssocTypeItem {
    /// The enclosing block's type name (for `impl Trait for T`, `T`).
    pub owner: String,
    /// Associated-type name.
    pub name: String,
    /// Bound type text after `=`, up to `;`. First physical line only.
    pub ty: String,
    /// 1-based line of the binding.
    pub line: usize,
}

/// One parsed `struct`/`enum` definition.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Type name.
    pub name: String,
    /// Whether this is a struct or an enum.
    pub kind: TypeDefKind,
    /// Module path inside the crate.
    pub module: Vec<String>,
    /// 1-based line of the `struct`/`enum` keyword.
    pub line: usize,
    /// Declaration-header text after the name (generic parameters with
    /// their defaults, tuple-struct payload) up to `{`/`;`.
    pub header: String,
    /// Traits named in `#[derive(...)]` attributes directly above.
    pub derives: Vec<String>,
    /// Named fields (structs) or variants (enums), in source order.
    /// Tuple structs record none.
    pub fields: Vec<FieldItem>,
}

/// Everything the semantic pass knows about one file.
#[derive(Debug, Clone, Default)]
pub struct FileModel {
    /// `fn` items in source order (test-gated items excluded).
    pub fns: Vec<FnItem>,
    /// `struct`/`enum` definitions in source order (test-gated excluded).
    pub structs: Vec<StructItem>,
    /// Associated-type bindings in source order (test-gated excluded).
    pub assoc_types: Vec<AssocTypeItem>,
    /// Import map: local name → full path segments (`use a::b::c` maps
    /// `c → [a, b, c]`; `as` aliases and one-level groups handled).
    pub imports: BTreeMap<String, Vec<String>>,
    /// Glob import bases (`use a::b::*` records `[a, b]`).
    pub globs: Vec<Vec<String>>,
}

/// Identifier characters (same definition as the lexer).
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Reserved words that can never be call targets.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "mut", "ref", "move", "as", "in",
    "impl", "dyn", "where", "unsafe", "else", "break", "continue", "struct", "enum", "union",
    "trait", "type", "use", "mod", "pub", "crate", "super", "self", "Self", "const", "static",
    "await", "async", "box", "yield",
];

/// Names imported from these `std` modules count as determinism sources in
/// function bodies (`use std::fs::File` makes `File` a source token for
/// the file). `std::time` is *not* listed: `SystemTime`/`Instant` are
/// banned tokens in their own right while `Duration` is deterministic.
const BANNED_IMPORT_ROOTS: &[&str] = &["std::fs", "std::net", "std::process", "std::env"];

#[derive(Debug)]
enum Ctx {
    /// Inline `mod name {` — `depth` is the brace depth its `{` opened at.
    Mod(String, i64),
    /// `impl Type {` / `trait Name {`.
    Type(String, i64),
    /// A function body; index into `FileModel::fns`.
    Fn(usize, i64),
    /// A `struct`/`enum` body; index into `FileModel::structs`.
    Struct(usize, i64),
}

#[derive(Debug)]
struct PendingFn {
    item: FnItem,
    paren_depth: i64,
    /// Signature text accumulated so far (for return-type extraction).
    sig: String,
}

/// A lock guard currently held in the body being parsed.
#[derive(Debug)]
struct HeldGuard {
    /// Canonical lock name (see [`LockAcquire::lock`]).
    lock: String,
    /// The guard's `let` binding, so an explicit `drop(binding)` releases
    /// it before its block closes.
    binding: Option<String>,
    /// Brace depth the binding's block opened at.
    depth: i64,
}

/// Paren-depth tracking for a call whose argument list spans lines:
/// which site to finish classifying once the matching `)` (and the
/// character after it) is seen.
#[derive(Debug, Clone, Copy)]
struct ParenTrack {
    fn_idx: usize,
    site_idx: usize,
    depth: i64,
    /// The argument list closed at end-of-line; the next line's first
    /// significant character decides statement-vs-value position.
    awaiting_tail: bool,
}

struct Parser<'a> {
    lines: &'a [Line],
    file_stem: String,
    model: FileModel,
    depth: i64,
    ctx: Vec<Ctx>,
    pending: Option<PendingFn>,
    /// `{` still owed to a just-seen `mod`/`impl`/`trait` header.
    pending_ctx: Option<Ctx>,
    /// Held lock guards, released at block close or an explicit `drop`.
    held: Vec<HeldGuard>,
    /// Open multi-line spawn argument list, if any.
    spawn_track: Option<ParenTrack>,
    /// Open multi-line statement-position call, if any (for the
    /// discarded-result classification of [`CallSite::stmt`]).
    stmt_track: Option<ParenTrack>,
    /// Per-file derived determinism tokens (from banned imports).
    derived_tokens: Vec<String>,
    /// Lines with a justified `tidy:allow(determinism)` (sources there are
    /// trusted and do not taint) — only honored for determinism-critical
    /// crates by the caller; the parser records them unconditionally.
    det_suppressed: Vec<usize>,
    /// Names `let`-bound in the current function body. A bare call through
    /// one of these is a closure or function-pointer invocation, which the
    /// name-based resolver must not confuse with a workspace free fn.
    locals: std::collections::BTreeSet<String>,
    /// 1-based line currently being processed (for `FnItem::end_line`).
    cur_line: usize,
}

impl FileModel {
    /// Parses the masked `src` (as produced by [`SourceFile::parse`]) of
    /// the file `rel` into the item-level model. Test-gated lines are
    /// ignored except for brace tracking.
    pub fn parse(rel: &str, src: &SourceFile) -> FileModel {
        let file_stem = rel
            .rsplit('/')
            .next()
            .unwrap_or(rel)
            .trim_end_matches(".rs")
            .to_owned();
        let det_suppressed = src
            .suppressions
            .iter()
            .filter(|s| s.justified && s.check_name == "determinism")
            .map(|s| s.covers)
            .collect();
        let mut parser = Parser {
            lines: &src.lines,
            file_stem,
            model: FileModel::default(),
            depth: 0,
            ctx: Vec::new(),
            pending: None,
            pending_ctx: None,
            held: Vec::new(),
            spawn_track: None,
            stmt_track: None,
            derived_tokens: Vec::new(),
            det_suppressed,
            locals: std::collections::BTreeSet::new(),
            cur_line: 0,
        };
        parser.parse_imports();
        for idx in 0..src.lines.len() {
            parser.line(idx);
        }
        // A pending signature at EOF (malformed file) is dropped silently.
        parser.model
    }
}

impl Parser<'_> {
    /// Collects `use` items (which may span lines) into the import map.
    fn parse_imports(&mut self) {
        let mut i = 0;
        while i < self.lines.len() {
            let code = self.lines[i].code.trim();
            let in_test = self.lines[i].in_test;
            let after_use = code
                .strip_prefix("pub use ")
                .or_else(|| code.strip_prefix("pub(crate) use "))
                .or_else(|| code.strip_prefix("use "));
            let Some(first) = after_use else {
                i += 1;
                continue;
            };
            let mut text = first.to_owned();
            while !text.contains(';') && i + 1 < self.lines.len() {
                i += 1;
                text.push(' ');
                text.push_str(self.lines[i].code.trim());
            }
            if !in_test {
                let stmt = text.split(';').next().unwrap_or("");
                self.record_use(stmt);
            }
            i += 1;
        }
    }

    /// Records one `use` statement body (without `use` / `;`).
    fn record_use(&mut self, stmt: &str) {
        if let Some(open) = stmt.find('{') {
            let base: Vec<String> = stmt[..open]
                .split("::")
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_owned)
                .collect();
            let inner = stmt[open + 1..].trim_end().trim_end_matches('}');
            for item in split_group(inner) {
                self.record_use_leaf(&base, item.trim());
            }
        } else {
            self.record_use_leaf(&[], stmt.trim());
        }
    }

    /// Records one leaf of a `use` (possibly `path as alias`, `self`, `*`).
    fn record_use_leaf(&mut self, base: &[String], leaf: &str) {
        if leaf.contains('{') {
            // Nested groups are rare in this workspace; skip them rather
            // than guess.
            return;
        }
        let (path_part, alias) = match leaf.split_once(" as ") {
            Some((p, a)) => (p.trim(), Some(a.trim().to_owned())),
            None => (leaf, None),
        };
        let mut segs: Vec<String> = base.to_vec();
        let mut self_import = false;
        for seg in path_part
            .split("::")
            .map(str::trim)
            .filter(|s| !s.is_empty())
        {
            if seg == "*" {
                self.model.globs.push(segs.clone());
                return;
            }
            if seg == "self" && !segs.is_empty() {
                self_import = true;
                continue;
            }
            segs.push(seg.to_owned());
        }
        let _ = self_import;
        let Some(last) = segs.last().cloned() else {
            return;
        };
        let local = alias.unwrap_or(last);
        self.model.imports.insert(local, segs);
        self.record_banned_import(path_part, base);
    }

    /// If the import path sits under a banned `std` module, its local name
    /// becomes a derived determinism token for this file.
    fn record_banned_import(&mut self, path_part: &str, base: &[String]) {
        let full = if base.is_empty() {
            path_part.to_owned()
        } else {
            format!("{}::{}", base.join("::"), path_part)
        };
        for root in BANNED_IMPORT_ROOTS {
            if full == *root || full.starts_with(&format!("{root}::")) {
                if let Some(name) = full.rsplit("::").next() {
                    if name != "self" && !name.is_empty() {
                        self.derived_tokens.push(name.to_owned());
                    }
                }
                // `use std::fs;` — the module name itself is the token.
                if full == *root {
                    if let Some(name) = root.rsplit("::").next() {
                        self.derived_tokens.push(name.to_owned());
                    }
                }
            }
        }
    }

    fn module_path(&self) -> Vec<String> {
        self.ctx
            .iter()
            .filter_map(|c| match c {
                Ctx::Mod(name, _) => Some(name.clone()),
                _ => None,
            })
            .collect()
    }

    fn type_ctx(&self) -> Option<String> {
        self.ctx.iter().rev().find_map(|c| match c {
            Ctx::Type(name, _) => Some(name.clone()),
            _ => None,
        })
    }

    fn in_fn(&self) -> Option<usize> {
        self.ctx.iter().rev().find_map(|c| match c {
            Ctx::Fn(idx, _) => Some(*idx),
            _ => None,
        })
    }

    /// Processes one line: item detection, body facts, brace tracking.
    fn line(&mut self, idx: usize) {
        let lineno = idx + 1;
        self.cur_line = lineno;
        let code = self.lines[idx].code.clone();
        let in_test = self.lines[idx].in_test;

        if let Some(pending) = &mut self.pending {
            // Mid-signature: look for the body `{` or a `;` terminator.
            for (pos, c) in code.char_indices() {
                match c {
                    '(' | '[' => pending.paren_depth += 1,
                    ')' | ']' => pending.paren_depth -= 1,
                    ';' if pending.paren_depth == 0 => {
                        let pend = self.pending.take().expect("pending fn");
                        let mut item = pend.item;
                        item.has_body = false;
                        item.ret = ret_from_sig(&pend.sig);
                        if !in_test {
                            self.model.fns.push(item);
                        }
                        return self.scan_braces_only(&code);
                    }
                    '{' if pending.paren_depth == 0 => {
                        let pend = self.pending.take().expect("pending fn");
                        let mut item = pend.item;
                        item.ret = ret_from_sig(&pend.sig);
                        let fn_idx = self.model.fns.len();
                        if self.in_fn().is_none() {
                            self.locals.clear();
                        }
                        self.model.fns.push(item);
                        self.ctx.push(Ctx::Fn(fn_idx, self.depth));
                        self.depth += 1;
                        let rest: String = code[pos + c.len_utf8()..].to_owned();
                        return self.body_line(&rest, lineno, in_test);
                    }
                    _ => pending.sig.push(c),
                }
            }
            if let Some(pending) = &mut self.pending {
                pending.sig.push(' ');
            }
            return;
        }

        if self.in_fn().is_some() {
            return self.body_line(&code, lineno, in_test);
        }

        // Inside a struct/enum body at its own depth: field/variant lines.
        if let Some(&Ctx::Struct(s_idx, open_depth)) = self.ctx.last() {
            if self.depth == open_depth + 1 {
                if !in_test {
                    self.struct_body_line(s_idx, &code, lineno);
                }
                return self.scan_braces_only(&code);
            }
        }

        // Item position: detect at most one item start per line.
        if !in_test {
            if let Some(at) = crate::checks::find_token(&code, "fn") {
                if let Some(name) = ident_after(&code, at + 2) {
                    self.start_fn(idx, at, name);
                    // Re-process the remainder of this line as signature.
                    let rest = &code[at..];
                    let mut paren = 0i64;
                    for (pos, c) in rest.char_indices() {
                        match c {
                            '(' | '[' => paren += 1,
                            ')' | ']' => paren -= 1,
                            ';' if paren == 0 => {
                                let pend = self.pending.take().expect("pending fn");
                                let mut item = pend.item;
                                item.has_body = false;
                                item.ret = ret_from_sig(&pend.sig);
                                self.model.fns.push(item);
                                return self.scan_braces_only(&code);
                            }
                            '{' if paren == 0 => {
                                let pend = self.pending.take().expect("pending fn");
                                let mut item = pend.item;
                                item.ret = ret_from_sig(&pend.sig);
                                let fn_idx = self.model.fns.len();
                                if self.in_fn().is_none() {
                                    self.locals.clear();
                                }
                                self.model.fns.push(item);
                                self.ctx.push(Ctx::Fn(fn_idx, self.depth));
                                self.depth += 1;
                                let body_rest: String = rest[pos + c.len_utf8()..].to_owned();
                                return self.body_line(&body_rest, lineno, in_test);
                            }
                            c => {
                                if let Some(p) = &mut self.pending {
                                    p.sig.push(c);
                                }
                            }
                        }
                    }
                    // Signature continues on the next line: carry the
                    // bracket depth over so the body `{` is still found.
                    if let Some(p) = &mut self.pending {
                        p.paren_depth = paren;
                        p.sig.push(' ');
                    }
                    return;
                }
            }
            if let Some(at) = crate::checks::find_token(&code, "mod") {
                if let Some(name) = ident_after(&code, at + 3) {
                    if code.contains('{') || !code.trim_end().ends_with(';') {
                        self.pending_ctx = Some(Ctx::Mod(name, 0));
                    }
                }
            } else if let Some(at) = crate::checks::find_token(&code, "impl") {
                if let Some(name) = impl_type_name(&code[at + 4..]) {
                    self.pending_ctx = Some(Ctx::Type(name, 0));
                }
            } else if let Some(at) = crate::checks::find_token(&code, "trait") {
                if let Some(name) = ident_after(&code, at + 5) {
                    self.pending_ctx = Some(Ctx::Type(name, 0));
                }
            } else if let Some((at, kind)) = struct_or_enum_at(&code) {
                let kw_len = match kind {
                    TypeDefKind::Struct => "struct".len(),
                    TypeDefKind::Enum => "enum".len(),
                };
                if let Some(name) = ident_after(&code, at + kw_len) {
                    self.start_struct(idx, at + kw_len, name, kind);
                }
            } else if let Some(at) = crate::checks::find_token(&code, "type") {
                // Associated-type binding inside an impl/trait block:
                // `type Name = Ty;` (a bare declaration has no `=`).
                if let Some(owner) = self.type_ctx() {
                    if let Some(name) = ident_after(&code, at + 4) {
                        let rest = &code[at + 4..];
                        if let (Some(eq), Some(semi)) = (rest.find('='), rest.find(';')) {
                            if eq < semi {
                                self.model.assoc_types.push(AssocTypeItem {
                                    owner,
                                    name,
                                    ty: rest[eq + 1..semi].trim().to_owned(),
                                    line: lineno,
                                });
                            }
                        }
                    }
                }
            }
        }
        self.scan_braces_only(&code);
    }

    /// Records a `struct`/`enum` definition starting on line `idx` and, if
    /// it has a braced body, queues the struct context for its `{`.
    fn start_struct(&mut self, idx: usize, after_kw: usize, name: String, kind: TypeDefKind) {
        let code = self.lines[idx].code.clone();
        let header_end = code
            .find('{')
            .or_else(|| code.find(';'))
            .unwrap_or(code.len());
        let after_name = code[after_kw..header_end]
            .find(&name)
            .map_or(header_end, |p| after_kw + p + name.len());
        let header = code[after_name..header_end].trim().to_owned();
        let item = StructItem {
            name,
            kind,
            module: self.module_path(),
            line: idx + 1,
            header,
            derives: derives_above(self.lines, idx),
            fields: Vec::new(),
        };
        let s_idx = self.model.structs.len();
        self.model.structs.push(item);
        // `;` before `{` means a unit/tuple struct: no body to track. A
        // header continuing onto the next line queues the context; a later
        // `;` cancels it in `scan_braces_only` if no `{` ever opens.
        let has_body = match (code.find('{'), code.find(';')) {
            (Some(b), Some(s)) => b < s,
            (Some(_), None) | (None, None) => true,
            (None, Some(_)) => false,
        };
        if has_body {
            self.pending_ctx = Some(Ctx::Struct(s_idx, 0));
        }
    }

    /// Parses one line of a struct/enum body at field depth.
    fn struct_body_line(&mut self, s_idx: usize, code: &str, lineno: usize) {
        let Some(item) = self.model.structs.get_mut(s_idx) else {
            return;
        };
        let trimmed = code.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('}') {
            return;
        }
        match item.kind {
            TypeDefKind::Struct => {
                // `pub name: Type,` — strip visibility, split on the first
                // `:` (a `::` in the type never comes first).
                let mut rest = trimmed;
                if let Some(at) = crate::checks::find_token(rest, "pub") {
                    if at == 0 {
                        rest = rest[3..].trim_start();
                        if rest.starts_with('(') {
                            if let Some(close) = rest.find(')') {
                                rest = rest[close + 1..].trim_start();
                            }
                        }
                    }
                }
                let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
                if name.is_empty() || name.chars().next().is_some_and(char::is_numeric) {
                    return;
                }
                let after = rest[name.len()..].trim_start();
                let Some(ty_text) = after.strip_prefix(':') else {
                    return;
                };
                if after.starts_with("::") {
                    return;
                }
                let ty = ty_text.trim().trim_end_matches(',').trim().to_owned();
                item.fields.push(FieldItem {
                    name,
                    ty,
                    line: lineno,
                });
            }
            TypeDefKind::Enum => {
                // `Name`, `Name(Payload)`, or `Name { … }`.
                let name: String = trimmed.chars().take_while(|&c| is_ident(c)).collect();
                if name.is_empty() || !name.chars().next().is_some_and(char::is_uppercase) {
                    return;
                }
                let ty = trimmed[name.len()..]
                    .trim()
                    .trim_end_matches(',')
                    .trim()
                    .to_owned();
                item.fields.push(FieldItem {
                    name,
                    ty,
                    line: lineno,
                });
            }
        }
    }

    /// Starts a pending `fn` item from the signature line.
    fn start_fn(&mut self, idx: usize, fn_at: usize, name: String) {
        let code = &self.lines[idx].code;
        let before = &code[..fn_at];
        let vis = if let Some(pub_at) = crate::checks::find_token(before, "pub") {
            if before[pub_at + 3..].trim_start().starts_with('(') {
                Visibility::Restricted
            } else {
                Visibility::Public
            }
        } else {
            Visibility::Private
        };
        let item = FnItem {
            name,
            type_ctx: self.type_ctx(),
            module: self.module_path(),
            line: idx + 1,
            end_line: idx + 1,
            vis,
            ret: String::new(),
            has_panics_doc: docs_have_panics(self.lines, idx),
            has_body: true,
            calls: Vec::new(),
            panic_sources: Vec::new(),
            det_sources: Vec::new(),
            locks: Vec::new(),
            spawns: Vec::new(),
            queues: Vec::new(),
            condvar_waits: Vec::new(),
            catch_unwinds: Vec::new(),
            has_must_use: attrs_have_must_use(self.lines, idx),
            body_idents: std::collections::BTreeSet::new(),
        };
        self.pending = Some(PendingFn {
            item,
            paren_depth: 0,
            sig: String::new(),
        });
    }

    /// Tracks braces outside function bodies, attaching pending contexts.
    fn scan_braces_only(&mut self, code: &str) {
        for c in code.chars() {
            match c {
                '{' => {
                    if let Some(mut ctx) = self.pending_ctx.take() {
                        match &mut ctx {
                            Ctx::Mod(_, d)
                            | Ctx::Type(_, d)
                            | Ctx::Fn(_, d)
                            | Ctx::Struct(_, d) => *d = self.depth,
                        }
                        self.ctx.push(ctx);
                    }
                    self.depth += 1;
                }
                '}' => self.close_brace(),
                ';' => {
                    // `mod name;` / `impl Trait for T;` never opened.
                    self.pending_ctx = None;
                }
                _ => {}
            }
        }
    }

    fn close_brace(&mut self) {
        self.depth -= 1;
        let close_at = self.depth;
        let pop = matches!(
            self.ctx.last(),
            Some(Ctx::Mod(_, d) | Ctx::Type(_, d) | Ctx::Fn(_, d) | Ctx::Struct(_, d))
                if *d == close_at
        );
        if pop {
            if let Some(Ctx::Fn(fn_idx, _)) = self.ctx.pop() {
                if let Some(f) = self.model.fns.get_mut(fn_idx) {
                    f.end_line = self.cur_line;
                }
            }
        }
        self.held.retain(|g| g.depth <= close_at);
    }

    /// Scans one line of a function body: facts first, then braces.
    fn body_line(&mut self, code: &str, lineno: usize, in_test: bool) {
        if !in_test {
            self.advance_tracks(code, lineno);
            self.scan_locals(code);
            self.scan_locks(code, lineno);
            self.scan_spawn_bindings(code, lineno);
            self.scan_spawns(code, lineno);
            self.scan_queues(code, lineno);
            self.scan_calls(code, lineno);
            if crate::checks::find_token(code, "catch_unwind").is_some() {
                if let Some(f) = self.current_fn_mut() {
                    f.catch_unwinds.push(lineno);
                }
            }
            self.scan_panic_sources(code, lineno);
            self.scan_det_sources(code, lineno);
            self.scan_body_idents(code);
        }
        self.scan_braces_only(code);
    }

    /// Collects every identifier token on a body line into the enclosing
    /// function's mention set.
    fn scan_body_idents(&mut self, code: &str) {
        let mut idents: Vec<String> = Vec::new();
        let mut cur = String::new();
        for c in code.chars() {
            if is_ident(c) {
                cur.push(c);
            } else if !cur.is_empty() {
                idents.push(std::mem::take(&mut cur));
            }
        }
        if !cur.is_empty() {
            idents.push(cur);
        }
        if let Some(f) = self.current_fn_mut() {
            for ident in idents {
                if !ident.chars().next().is_some_and(char::is_numeric) {
                    f.body_idents.insert(ident);
                }
            }
        }
    }

    fn current_fn_mut(&mut self) -> Option<&mut FnItem> {
        let idx = self.in_fn()?;
        self.model.fns.get_mut(idx)
    }

    fn held_names(&self) -> Vec<String> {
        self.held.iter().map(|g| g.lock.clone()).collect()
    }

    /// Records names bound by `let` (with optional `mut`) on this line, so
    /// later `name(...)` calls through closures and function pointers do
    /// not resolve to same-named workspace functions.
    fn scan_locals(&mut self, code: &str) {
        let mut from = 0;
        while let Some(at) = crate::checks::find_token(&code[from..], "let") {
            let mut rest = code[from + at + 3..].trim_start();
            from += at + 3;
            if let Some(stripped) = rest.strip_prefix("mut ") {
                rest = stripped.trim_start();
            }
            let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
            if !name.is_empty() && !name.chars().next().is_some_and(char::is_numeric) {
                self.locals.insert(name);
            }
        }
    }

    /// Detects `.lock()` acquisitions, derives lock names, and maintains
    /// the held-guard set.
    fn scan_locks(&mut self, code: &str, lineno: usize) {
        let has_let = crate::checks::find_token(code, "let").is_some();
        let type_ctx = self.type_ctx();
        let mut from = 0;
        while let Some(rel_at) = code[from..].find(".lock(") {
            let at = from + rel_at;
            from = at + ".lock(".len();
            // Receiver: walk back over `ident`, `.`, `:` chains.
            let recv: String = code[..at]
                .chars()
                .rev()
                .take_while(|&c| is_ident(c) || c == '.' || c == ':')
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            let recv = recv.trim_matches(|c| c == '.' || c == ':');
            let last = recv
                .rsplit(['.', ':'])
                .find(|s| !s.is_empty())
                .unwrap_or("");
            if last.is_empty() {
                continue;
            }
            let lock = if recv.starts_with("self.") {
                let owner = type_ctx.clone().unwrap_or_else(|| self.file_stem.clone());
                format!("{owner}.{last}")
            } else {
                format!("{}::{last}", self.file_stem)
            };
            // Bound guard: `let g = m.lock();` (the `)` directly followed
            // by `;`). Anything else is a transient same-statement use.
            let tail = &code[at + ".lock(".len()..];
            let bound = has_let && tail.trim_start().starts_with(");");
            let held = self.held_names();
            let bind_depth = self.depth;
            if let Some(f) = self.current_fn_mut() {
                f.locks.push(LockAcquire {
                    lock: lock.clone(),
                    line: lineno,
                    bound,
                    held,
                });
            }
            if bound {
                let binding = let_binding(code);
                self.held.push(HeldGuard {
                    lock,
                    binding,
                    depth: bind_depth,
                });
            }
        }
    }

    /// Detects call sites: `name(`, `a::b::name(`, `.name(` — with
    /// optional turbofish — skipping keywords and macro invocations.
    fn scan_calls(&mut self, code: &str, lineno: usize) {
        let chars: Vec<char> = code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if !is_ident(chars[i]) || chars[i].is_numeric() {
                i += 1;
                continue;
            }
            let start = i;
            while i < chars.len() && is_ident(chars[i]) {
                i += 1;
            }
            let name: String = chars[start..i].iter().collect();
            // Position after optional turbofish `::<…>`.
            let mut j = i;
            if chars.get(j) == Some(&':')
                && chars.get(j + 1) == Some(&':')
                && chars.get(j + 2) == Some(&'<')
            {
                let mut angle = 0i64;
                let mut k = j + 2;
                while k < chars.len() {
                    match chars[k] {
                        '<' => angle += 1,
                        '>' => {
                            angle -= 1;
                            if angle == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                if angle == 0 {
                    j = k + 1;
                }
            }
            if chars.get(j) != Some(&'(') {
                continue;
            }
            if KEYWORDS.contains(&name.as_str()) {
                continue;
            }
            // Macro invocation `name!(` never reaches here (the `!` breaks
            // the adjacency test above), but `name !(` would; reject any
            // `!` directly after the identifier.
            if chars.get(i) == Some(&'!') {
                continue;
            }
            let prev = chars[..start].iter().rev().find(|c| !c.is_whitespace());
            let target = match prev {
                Some('.') => {
                    if name == "lock" {
                        continue; // handled by scan_locks
                    }
                    if WAIT_METHODS.contains(&name.as_str()) {
                        let rest: String = chars[j + 1..].iter().collect();
                        if let Some(guard) = mut_ref_arg(&rest) {
                            // A condvar wait atomically releases its guard
                            // for the wait's duration: record the wait, not
                            // a call made while holding the lock.
                            if let Some(f) = self.current_fn_mut() {
                                f.condvar_waits.push(CondvarWait {
                                    line: lineno,
                                    what: name,
                                    guard,
                                });
                            }
                            continue;
                        }
                    }
                    CallTarget::Method(name)
                }
                Some(':') => {
                    // Collect the full leading path `a::b::name`.
                    let mut segs = vec![name];
                    let mut end = start;
                    loop {
                        let before: String = chars[..end].iter().collect();
                        let trimmed = before.trim_end();
                        if !trimmed.ends_with("::") {
                            break;
                        }
                        let upto = trimmed.len() - 2;
                        let seg_chars: &str = &trimmed[..upto];
                        let seg: String = seg_chars
                            .chars()
                            .rev()
                            .take_while(|&c| is_ident(c))
                            .collect::<String>()
                            .chars()
                            .rev()
                            .collect();
                        if seg.is_empty() {
                            break;
                        }
                        segs.insert(0, seg.clone());
                        end = seg_chars.len() - seg.len();
                        // Only the segment directly before `::` matters for
                        // further chaining; keep walking.
                        let before_seg: String = seg_chars[..end].to_owned();
                        if !before_seg.trim_end().ends_with("::") {
                            break;
                        }
                        end = before_seg.len();
                    }
                    if segs.len() == 1 {
                        CallTarget::Free(segs.remove(0))
                    } else {
                        CallTarget::Path(segs)
                    }
                }
                _ => CallTarget::Free(name),
            };
            if matches!(&target, CallTarget::Free(n) if self.locals.contains(n)) {
                continue;
            }
            // An explicit `drop(guard)` releases a held lock before its
            // block closes; `drop` itself is never a workspace callee.
            if matches!(&target, CallTarget::Free(n) if n == "drop") {
                let rest: String = chars[j + 1..].iter().collect();
                if let Some(arg) = single_ident_arg(&rest) {
                    self.held
                        .retain(|g| g.binding.as_deref() != Some(arg.as_str()));
                }
                continue;
            }
            // Statement position: the receiver/path chain starts the line
            // and the matching `)` meets a bare `;`, so the call's value
            // is dropped on the spot.
            let mut chain_start = start;
            while chain_start > 0 {
                let c = chars[chain_start - 1];
                if is_ident(c) || c == '.' || c == ':' {
                    chain_start -= 1;
                } else {
                    break;
                }
            }
            let stmt_pos = chars[..chain_start].iter().all(|c| c.is_whitespace());
            let mut stmt = false;
            let mut open = None; // argument list spans lines: (depth, awaiting_tail)
            if stmt_pos {
                let rest: String = chars[j..].iter().collect();
                match step_track(&rest, 0, false) {
                    TrackOutcome::Open(depth) => open = Some((depth, false)),
                    TrackOutcome::AwaitTail => open = Some((0, true)),
                    TrackOutcome::Done(dropped) => stmt = dropped,
                }
            }
            let holding = self.held_names();
            if let Some(fn_idx) = self.in_fn() {
                let site_idx = self.model.fns[fn_idx].calls.len();
                self.model.fns[fn_idx].calls.push(CallSite {
                    target,
                    line: lineno,
                    holding,
                    stmt,
                });
                if let Some((depth, awaiting_tail)) = open {
                    if self.stmt_track.is_none() {
                        self.stmt_track = Some(ParenTrack {
                            fn_idx,
                            site_idx,
                            depth,
                            awaiting_tail,
                        });
                    }
                }
            }
        }
    }

    /// Advances the open multi-line spawn and statement-call trackers over
    /// one more body line, finishing each classification once the matching
    /// `)` and the character after it have been seen.
    fn advance_tracks(&mut self, code: &str, lineno: usize) {
        if let Some(track) = self.spawn_track {
            self.spawn_track = match step_track(code, track.depth, track.awaiting_tail) {
                TrackOutcome::Open(depth) => Some(ParenTrack { depth, ..track }),
                TrackOutcome::AwaitTail => Some(ParenTrack {
                    depth: 0,
                    awaiting_tail: true,
                    ..track
                }),
                TrackOutcome::Done(dropped) => {
                    if let Some(site) = self
                        .model
                        .fns
                        .get_mut(track.fn_idx)
                        .and_then(|f| f.spawns.get_mut(track.site_idx))
                    {
                        site.end_line = lineno;
                        site.discarded = dropped && site.binding.is_none();
                    }
                    None
                }
            };
        }
        if let Some(track) = self.stmt_track {
            self.stmt_track = match step_track(code, track.depth, track.awaiting_tail) {
                TrackOutcome::Open(depth) => Some(ParenTrack { depth, ..track }),
                TrackOutcome::AwaitTail => Some(ParenTrack {
                    depth: 0,
                    awaiting_tail: true,
                    ..track
                }),
                TrackOutcome::Done(dropped) => {
                    if let Some(site) = self
                        .model
                        .fns
                        .get_mut(track.fn_idx)
                        .and_then(|f| f.calls.get_mut(track.site_idx))
                    {
                        site.stmt = dropped;
                    }
                    None
                }
            };
        }
    }

    /// Marks spawn-handle bindings that reappear on a later body line of
    /// the same function (joined, pushed, returned — any mention counts).
    fn scan_spawn_bindings(&mut self, code: &str, lineno: usize) {
        let Some(fn_idx) = self.in_fn() else {
            return;
        };
        let open_spawn = self.spawn_track;
        let Some(f) = self.model.fns.get_mut(fn_idx) else {
            return;
        };
        for (idx, site) in f.spawns.iter_mut().enumerate() {
            if site.binding_used || site.line >= lineno {
                continue;
            }
            // Lines inside the spawn's own argument list cannot see the
            // binding (it is not bound yet) — skip them.
            if open_spawn.is_some_and(|t| t.fn_idx == fn_idx && t.site_idx == idx) {
                continue;
            }
            if let Some(name) = &site.binding {
                if crate::checks::find_token(code, name).is_some() {
                    site.binding_used = true;
                }
            }
        }
    }

    /// Detects OS-thread spawn sites: `thread::spawn(…)` (optionally
    /// `std::`-qualified) and, on lines naming `thread::Builder`, the
    /// chain's `.spawn(…)`. The handle's fate starts from the `let`
    /// binding on the same line; the discard classification finishes when
    /// the argument list's matching `)` is seen.
    fn scan_spawns(&mut self, code: &str, lineno: usize) {
        let Some(fn_idx) = self.in_fn() else {
            return;
        };
        let mut parens: Vec<usize> = Vec::new();
        let mut from = 0;
        while let Some(rel) = code[from..].find("thread::spawn(") {
            let at = from + rel;
            from = at + "thread::spawn(".len();
            if code[..at].ends_with(is_ident) {
                continue; // not a token boundary
            }
            parens.push(at + "thread::spawn".len());
        }
        if code.contains("thread::Builder") {
            let mut from = 0;
            while let Some(rel) = code[from..].find(".spawn(") {
                let at = from + rel;
                from = at + ".spawn(".len();
                parens.push(at + ".spawn".len());
            }
        }
        parens.sort_unstable();
        parens.dedup();
        let binding = let_binding(code);
        for paren in parens {
            if self.spawn_track.is_some() {
                break; // nested spawns are not tracked separately
            }
            let site_idx = self.model.fns[fn_idx].spawns.len();
            self.model.fns[fn_idx].spawns.push(SpawnSite {
                line: lineno,
                end_line: lineno,
                binding: binding.clone(),
                discarded: false,
                binding_used: false,
            });
            match step_track(&code[paren..], 0, false) {
                TrackOutcome::Open(depth) => {
                    self.spawn_track = Some(ParenTrack {
                        fn_idx,
                        site_idx,
                        depth,
                        awaiting_tail: false,
                    });
                }
                TrackOutcome::AwaitTail => {
                    self.spawn_track = Some(ParenTrack {
                        fn_idx,
                        site_idx,
                        depth: 0,
                        awaiting_tail: true,
                    });
                }
                TrackOutcome::Done(dropped) => {
                    let site = &mut self.model.fns[fn_idx].spawns[site_idx];
                    site.discarded = dropped && site.binding.is_none();
                }
            }
        }
    }

    /// Detects cross-thread-queue construction sites with their
    /// bounded/unbounded classification and whether a `bound:` comment on
    /// the line (or the line directly above) names the enforcing
    /// mechanism.
    fn scan_queues(&mut self, code: &str, lineno: usize) {
        if self.in_fn().is_none() {
            return;
        }
        let mut found: Vec<(usize, QueueSite)> = Vec::new();
        for &(ctor, bounded) in QUEUE_CTORS {
            let mut from = 0;
            while let Some(rel) = code[from..].find(ctor) {
                let at = from + rel;
                from = at + ctor.len();
                if code[..at].ends_with(is_ident) {
                    continue; // not a token boundary
                }
                let next = code[at + ctor.len()..].chars().next();
                if !matches!(next, Some('(' | '<' | ':')) {
                    continue; // a mention, not a construction
                }
                found.push((
                    at,
                    QueueSite {
                        line: lineno,
                        what: ctor.to_owned(),
                        bounded,
                        bound_named: self.bound_comment_near(lineno),
                    },
                ));
            }
        }
        found.sort_by_key(|&(at, _)| at);
        if let Some(f) = self.current_fn_mut() {
            f.queues.extend(found.into_iter().map(|(_, q)| q));
        }
    }

    /// Whether the line (or the line directly above) carries a `bound:`
    /// comment naming a queue's enforcing mechanism.
    fn bound_comment_near(&self, lineno: usize) -> bool {
        (lineno.saturating_sub(1)..=lineno).any(|l| {
            l >= 1
                && self
                    .lines
                    .get(l - 1)
                    .is_some_and(|line| line.comment.contains("bound:"))
        })
    }

    /// Detects panic sources: bare `unwrap()`, the panic macros, and
    /// slice indexing with a non-literal index.
    fn scan_panic_sources(&mut self, code: &str, lineno: usize) {
        let mut sources: Vec<String> = Vec::new();
        if has_bare_unwrap(code) {
            sources.push("unwrap()".to_owned());
        }
        for mac in ["panic", "todo", "unimplemented"] {
            if is_macro_call(code, mac) {
                sources.push(format!("{mac}!"));
            }
        }
        if has_non_literal_index(code) {
            sources.push("slice indexing".to_owned());
        }
        if let Some(f) = self.current_fn_mut() {
            for what in sources {
                f.panic_sources.push(SourceSite { line: lineno, what });
            }
        }
    }

    /// Detects determinism sources: the banned token list plus names
    /// imported from banned `std` modules. Lines under a justified
    /// `tidy:allow(determinism)` are trusted and skipped.
    fn scan_det_sources(&mut self, code: &str, lineno: usize) {
        if self.det_suppressed.contains(&lineno) {
            return;
        }
        let mut sources: Vec<String> = Vec::new();
        for &(token, _) in crate::checks::determinism::BANNED {
            if crate::checks::find_token(code, token).is_some() {
                sources.push(token.to_owned());
            }
        }
        for token in &self.derived_tokens {
            if crate::checks::find_token(code, token).is_some() {
                sources.push(format!("{token} (imported from a banned std module)"));
            }
        }
        sources.sort();
        sources.dedup();
        if let Some(f) = self.current_fn_mut() {
            for what in sources {
                f.det_sources.push(SourceSite { line: lineno, what });
            }
        }
    }
}

/// Splits a one-level `use` group body on top-level commas.
fn split_group(inner: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut cur = String::new();
    for c in inner.chars() {
        match c {
            '{' => {
                depth += 1;
                cur.push(c);
            }
            '}' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// The identifier starting at or after `from` (skipping whitespace), if
/// the very next token is one.
fn ident_after(code: &str, from: usize) -> Option<String> {
    let rest = code.get(from..)?.trim_start();
    let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_numeric()) {
        None
    } else {
        Some(name)
    }
}

/// Condvar wait-family method names. Each takes the guard as a `&mut`
/// first argument and atomically releases it for the wait's duration.
const WAIT_METHODS: &[&str] = &[
    "wait",
    "wait_for",
    "wait_timeout",
    "wait_timeout_while",
    "wait_until",
    "wait_while",
];

/// Cross-thread-queue constructors and whether each fixes a capacity at
/// the construction site.
const QUEUE_CTORS: &[(&str, bool)] = &[
    ("VecDeque::new", false),
    ("VecDeque::default", false),
    ("VecDeque::with_capacity", true),
    ("channel::bounded", true),
    ("channel::unbounded", false),
    ("mpsc::channel", false),
    ("mpsc::sync_channel", true),
];

/// What advancing a [`ParenTrack`] over one line concluded.
enum TrackOutcome {
    /// Still open at this paren depth.
    Open(i64),
    /// Closed at end-of-line; the next line's first significant character
    /// decides the classification.
    AwaitTail,
    /// Finished: `true` when the matching `)` met a bare `;` (the value
    /// was dropped in statement position).
    Done(bool),
}

/// Advances a paren tracker over `code`, starting at `depth` (or, when
/// `awaiting_tail`, inspecting only the first significant character).
fn step_track(code: &str, depth: i64, awaiting_tail: bool) -> TrackOutcome {
    if awaiting_tail {
        return match code.chars().find(|c| !c.is_whitespace()) {
            None => TrackOutcome::AwaitTail,
            Some(';') => TrackOutcome::Done(true),
            Some(_) => TrackOutcome::Done(false),
        };
    }
    let mut depth = depth;
    for (pos, c) in code.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return match code[pos + 1..].chars().find(|c| !c.is_whitespace()) {
                        None => TrackOutcome::AwaitTail,
                        Some(';') => TrackOutcome::Done(true),
                        Some(_) => TrackOutcome::Done(false),
                    };
                }
            }
            _ => {}
        }
    }
    TrackOutcome::Open(depth)
}

/// The first `let [mut] name` binding on the line, if any (`_`, tuple and
/// struct patterns, and digit starts all yield `None`).
fn let_binding(code: &str) -> Option<String> {
    let at = crate::checks::find_token(code, "let")?;
    let mut rest = code[at + 3..].trim_start();
    if let Some(stripped) = rest.strip_prefix("mut ") {
        rest = stripped.trim_start();
    }
    let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
    if name.is_empty() || name == "_" || name.chars().next().is_some_and(char::is_numeric) {
        None
    } else {
        Some(name)
    }
}

/// Whether the attribute block directly above line `idx` carries
/// `#[must_use]`. Doc comments interleave freely; a blank line or any
/// other code ends the block (same walk as [`derives_above`]).
fn attrs_have_must_use(lines: &[Line], idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let line = &lines[i];
        let code = line.code.trim();
        if code.is_empty() {
            if line.comment.trim().is_empty() {
                break; // blank line ends the block
            }
            continue; // doc or plain comment
        }
        if !code.starts_with('#') {
            break;
        }
        if code.contains("must_use") {
            return true;
        }
    }
    false
}

/// The `&mut ident` first argument of an argument list (text after the
/// opening `(`), if the list starts exactly that way.
fn mut_ref_arg(rest: &str) -> Option<String> {
    let rest = rest.trim_start().strip_prefix("&mut")?.trim_start();
    let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
    if name.is_empty() || name.chars().next().is_some_and(char::is_numeric) {
        None
    } else {
        Some(name)
    }
}

/// The single-identifier argument of a call like `drop(guard)` (text
/// after the opening `(`), if the list is exactly one identifier closed
/// on the same line.
fn single_ident_arg(rest: &str) -> Option<String> {
    let close = rest.find(')')?;
    let arg = rest[..close].trim();
    if !arg.is_empty()
        && arg.chars().all(is_ident)
        && !arg.chars().next().is_some_and(char::is_numeric)
    {
        Some(arg.to_owned())
    } else {
        None
    }
}

/// Extracts the implemented type's name from the text after `impl`:
/// `<…> Trait for Type {` → `Type`; `Type<G> {` → `Type`.
fn impl_type_name(rest: &str) -> Option<String> {
    let mut rest = rest;
    // Skip the generic parameter list, if any.
    let trimmed = rest.trim_start();
    if let Some(stripped) = trimmed.strip_prefix('<') {
        let mut depth = 1i64;
        let mut end = None;
        for (pos, c) in stripped.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(pos);
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &stripped[end? + 1..];
    } else {
        rest = trimmed;
    }
    let head = rest.split('{').next().unwrap_or(rest);
    let head = match crate::checks::find_token(head, "for") {
        Some(at) => &head[at + 3..],
        None => head,
    };
    // Last path segment before generics/where.
    let head = head.split('<').next().unwrap_or(head);
    let head = match crate::checks::find_token(head, "where") {
        Some(at) => &head[..at],
        None => head,
    };
    head.trim()
        .rsplit("::")
        .next()
        .map(|s| s.trim().trim_start_matches('&').to_owned())
        .filter(|s| !s.is_empty() && s.chars().all(is_ident))
}

/// Finds a `struct` or `enum` keyword in item position on the line.
fn struct_or_enum_at(code: &str) -> Option<(usize, TypeDefKind)> {
    if let Some(at) = crate::checks::find_token(code, "struct") {
        return Some((at, TypeDefKind::Struct));
    }
    if let Some(at) = crate::checks::find_token(code, "enum") {
        return Some((at, TypeDefKind::Enum));
    }
    None
}

/// Collects the traits named in `#[derive(...)]` attributes in the
/// contiguous doc/attribute block above line `idx` (0-based).
fn derives_above(lines: &[Line], idx: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let line = &lines[i];
        let code = line.code.trim();
        if code.is_empty() {
            if line.comment.trim().is_empty() {
                break; // blank line ends the block
            }
            continue; // doc or plain comment
        }
        if !code.starts_with('#') {
            break;
        }
        if let Some(open) = code.find("derive(") {
            let inner = &code[open + "derive(".len()..];
            let inner = inner.split(')').next().unwrap_or("");
            for name in inner.split(',') {
                let name = name.trim();
                if !name.is_empty() {
                    out.push(name.rsplit("::").next().unwrap_or(name).to_owned());
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Extracts the return type from accumulated signature text: everything
/// after the last top-level `->`, with any `where` clause stripped.
fn ret_from_sig(sig: &str) -> String {
    let Some(at) = sig.rfind("->") else {
        return String::new();
    };
    let mut ret = &sig[at + 2..];
    if let Some(w) = crate::checks::find_token(ret, "where") {
        ret = &ret[..w];
    }
    ret.trim().to_owned()
}

/// Whether the contiguous doc/attribute block above line `idx` (0-based)
/// contains a `# Panics` section.
fn docs_have_panics(lines: &[Line], idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let line = &lines[i];
        let comment = line.comment.trim_start();
        let is_doc =
            comment.starts_with('/') || comment.starts_with('!') || comment.starts_with('*');
        let code = line.code.trim();
        if is_doc && code.is_empty() {
            if line.comment.contains("# Panics") {
                return true;
            }
            continue;
        }
        if code.starts_with("#[")
            || code.starts_with("#![")
            || code.ends_with(']') && code.starts_with('#')
        {
            continue; // attribute
        }
        if code.is_empty() && !line.comment.trim().is_empty() {
            continue; // plain comment (e.g. a tidy:allow line)
        }
        break;
    }
    false
}

/// `unwrap` immediately followed by `()` — same rule as the lexical
/// panic check.
fn has_bare_unwrap(code: &str) -> bool {
    let mut rest = code;
    while let Some(at) = crate::checks::find_token(rest, "unwrap") {
        let tail = rest[at + "unwrap".len()..].trim_start();
        if let Some(t) = tail.strip_prefix('(') {
            if t.trim_start().starts_with(')') {
                return true;
            }
        }
        rest = &rest[at + "unwrap".len()..];
    }
    false
}

/// `name` followed directly by `!`.
fn is_macro_call(code: &str, name: &str) -> bool {
    let mut rest = code;
    while let Some(at) = crate::checks::find_token(rest, name) {
        if rest[at + name.len()..].starts_with('!') {
            return true;
        }
        rest = &rest[at + name.len()..];
    }
    false
}

/// `expr[index]` where `index` is not a pure literal / literal range —
/// the detectable slice-indexing panic site (`xs[i]`, `map[&k]`). Array
/// *literals* (`[1, 2]`), attributes, and `xs[0]` / `xs[..]` forms are
/// not matched.
fn has_non_literal_index(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let prev = chars[..i].iter().rev().find(|c| !c.is_whitespace());
        let indexing = matches!(prev, Some(p) if is_ident(*p) || *p == ')' || *p == ']');
        if !indexing {
            continue;
        }
        // A keyword before `[` means an array *literal* position
        // (`for x in [a, b]`, `return [x]`, `if [a, b].iter()…`), not a
        // place expression.
        let before: String = chars[..i]
            .iter()
            .rev()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| is_ident(**c))
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        if matches!(
            before.as_str(),
            "in" | "return" | "break" | "else" | "match" | "mut" | "ref" | "if" | "while"
        ) {
            continue;
        }
        // Attribute `#[…]` — the `#` is never an identifier char, so the
        // check above already excluded it.
        let mut depth = 1i64;
        let mut j = i + 1;
        let mut content = String::new();
        while j < chars.len() && depth > 0 {
            match chars[j] {
                '[' => depth += 1,
                ']' => depth -= 1,
                _ => {}
            }
            if depth > 0 {
                content.push(chars[j]);
            }
            j += 1;
        }
        let content = content.trim();
        if content.is_empty() {
            continue;
        }
        let literal_only = content
            .chars()
            .all(|c| c.is_numeric() || c == '.' || c == '_' || c.is_whitespace());
        if !literal_only {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> FileModel {
        FileModel::parse("crates/x/src/demo.rs", &SourceFile::parse(text))
    }

    #[test]
    fn extracts_fns_with_visibility_and_docs() {
        let m = parse(
            "/// Does a thing.\n///\n/// # Panics\n/// On bad input.\npub fn a() {}\n\
             pub(crate) fn b() {}\nfn c() {}\n",
        );
        assert_eq!(m.fns.len(), 3);
        assert_eq!(m.fns[0].name, "a");
        assert_eq!(m.fns[0].vis, Visibility::Public);
        assert!(m.fns[0].has_panics_doc);
        assert_eq!(m.fns[0].line, 5);
        assert_eq!(m.fns[1].vis, Visibility::Restricted);
        assert_eq!(m.fns[2].vis, Visibility::Private);
        assert!(!m.fns[2].has_panics_doc);
    }

    #[test]
    fn attributes_between_docs_and_fn_are_transparent() {
        let m = parse("/// # Panics\n/// Yes.\n#[inline]\npub fn a() {}\n");
        assert!(m.fns[0].has_panics_doc);
    }

    #[test]
    fn impl_and_mod_contexts_qualify_items() {
        let m = parse(
            "pub struct W;\nimpl W {\n    pub fn go(&self) {}\n}\n\
             impl std::fmt::Debug for W {\n    fn fmt(&self) {}\n}\n\
             mod inner {\n    pub fn deep() {}\n}\n",
        );
        let names: Vec<(String, Option<String>, Vec<String>)> = m
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.type_ctx.clone(), f.module.clone()))
            .collect();
        assert_eq!(names[0], ("go".into(), Some("W".into()), vec![]));
        assert_eq!(names[1], ("fmt".into(), Some("W".into()), vec![]));
        assert_eq!(names[2], ("deep".into(), None, vec!["inner".into()]));
    }

    #[test]
    fn generic_impls_resolve_the_type_name() {
        let m = parse("impl<E: Engine> World<E> {\n    pub fn launch(&mut self) {}\n}\n");
        assert_eq!(m.fns[0].type_ctx.as_deref(), Some("World"));
    }

    #[test]
    fn trait_method_signatures_have_no_body() {
        let m = parse(
            "pub trait T {\n    fn must(&self) -> u32;\n    fn dflt(&self) -> u32 {\n        self.must()\n    }\n}\n",
        );
        assert_eq!(m.fns.len(), 2);
        assert!(!m.fns[0].has_body);
        assert!(m.fns[1].has_body);
        assert_eq!(m.fns[1].calls.len(), 1);
    }

    #[test]
    fn calls_are_extracted_with_kinds() {
        let m = parse(
            "fn f() {\n    helper();\n    crate::a::b();\n    Widget::new(1);\n    x.tick();\n    vec![1].len();\n}\n",
        );
        let f = &m.fns[0];
        let targets: Vec<&CallTarget> = f.calls.iter().map(|c| &c.target).collect();
        assert!(targets.contains(&&CallTarget::Free("helper".into())));
        assert!(targets.contains(&&CallTarget::Path(vec![
            "crate".into(),
            "a".into(),
            "b".into()
        ])));
        assert!(targets.contains(&&CallTarget::Path(vec!["Widget".into(), "new".into()])));
        assert!(targets.contains(&&CallTarget::Method("tick".into())));
        assert!(targets.contains(&&CallTarget::Method("len".into())));
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let m = parse("fn f() {\n    if ready(x) {\n        assert!(g());\n    }\n}\n");
        let f = &m.fns[0];
        let names: Vec<String> = f
            .calls
            .iter()
            .map(|c| match &c.target {
                CallTarget::Free(n) | CallTarget::Method(n) => n.clone(),
                CallTarget::Path(p) => p.join("::"),
            })
            .collect();
        assert_eq!(names, vec!["ready", "g"], "{:?}", f.calls);
    }

    #[test]
    fn panic_sources_detected() {
        let m = parse(
            "fn f(xs: &[u32], i: usize) -> u32 {\n    let a = xs[i];\n    let b = xs[0];\n    x.unwrap();\n    panic!(\"no\");\n    a\n}\n",
        );
        let whats: Vec<&str> = m.fns[0]
            .panic_sources
            .iter()
            .map(|s| s.what.as_str())
            .collect();
        assert!(whats.contains(&"slice indexing"));
        assert!(whats.contains(&"unwrap()"));
        assert!(whats.contains(&"panic!"));
        // xs[0] (literal index) contributes nothing.
        assert_eq!(
            m.fns[0]
                .panic_sources
                .iter()
                .filter(|s| s.what == "slice indexing")
                .count(),
            1
        );
    }

    #[test]
    fn array_literals_are_not_indexing() {
        let m = parse(
            "fn f(a: u32, b: u32, xs: &[u32], i: usize) -> u32 {\n    \
             for x in [a, b] {\n        let _ = x;\n    }\n    \
             let pair = [a, b];\n    \
             let margin = xs;\n    \
             margin[i] + pair[0]\n}\n",
        );
        let indexing = m.fns[0]
            .panic_sources
            .iter()
            .filter(|s| s.what == "slice indexing")
            .count();
        // Only `margin[i]`: the `in [a, b]` literal, the `= [a, b]`
        // literal, and the literal-index `pair[0]` contribute nothing.
        assert_eq!(indexing, 1);
    }

    #[test]
    fn det_sources_include_derived_imports() {
        let m = parse(
            "use std::fs::File;\nuse std::time::Duration;\nfn f() {\n    let h = File::create(p);\n    let t = Instant::now();\n    let d = Duration::from_secs(1);\n}\n",
        );
        let whats: Vec<&str> = m.fns[0]
            .det_sources
            .iter()
            .map(|s| s.what.as_str())
            .collect();
        assert!(whats.iter().any(|w| w.starts_with("File")), "{whats:?}");
        assert!(whats.contains(&"Instant"));
        assert!(!whats.iter().any(|w| w.starts_with("Duration")));
    }

    #[test]
    fn locks_and_held_edges() {
        let m = parse(
            "struct S;\nimpl S {\n    fn ab(&self) {\n        let a = self.alpha.lock();\n        self.beta.lock().push(1);\n        helper();\n    }\n}\n",
        );
        let f = &m.fns[0];
        assert_eq!(f.locks.len(), 2);
        assert_eq!(f.locks[0].lock, "S.alpha");
        assert!(f.locks[0].bound);
        assert!(f.locks[0].held.is_empty());
        assert_eq!(f.locks[1].lock, "S.beta");
        assert!(!f.locks[1].bound);
        assert_eq!(f.locks[1].held, vec!["S.alpha".to_owned()]);
        let call = f
            .calls
            .iter()
            .find(|c| matches!(&c.target, CallTarget::Free(n) if n == "helper"))
            .expect("helper call");
        assert_eq!(call.holding, vec!["S.alpha".to_owned()]);
    }

    #[test]
    fn guard_released_at_block_close() {
        let m = parse(
            "fn f(m: &M) {\n    {\n        let g = m.lock();\n        inner1();\n    }\n    inner2();\n}\n",
        );
        let f = &m.fns[0];
        let holding: Vec<(String, Vec<String>)> = f
            .calls
            .iter()
            .map(|c| match &c.target {
                CallTarget::Free(n) => (n.clone(), c.holding.clone()),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(holding[0].0, "inner1");
        assert_eq!(holding[0].1, vec!["demo::m".to_owned()]);
        assert_eq!(holding[1].0, "inner2");
        assert!(holding[1].1.is_empty());
    }

    #[test]
    fn imports_map_and_globs() {
        let m = parse(
            "use crate::graph::{Workspace, resolve as res};\nuse eaao_core::cluster;\nuse super::util::*;\nfn f() {}\n",
        );
        assert_eq!(
            m.imports.get("Workspace"),
            Some(&vec!["crate".into(), "graph".into(), "Workspace".into()])
        );
        assert_eq!(
            m.imports.get("res"),
            Some(&vec!["crate".into(), "graph".into(), "resolve".into()])
        );
        assert_eq!(
            m.imports.get("cluster"),
            Some(&vec!["eaao_core".into(), "cluster".into()])
        );
        assert_eq!(m.globs, vec![vec!["super".to_owned(), "util".to_owned()]]);
    }

    #[test]
    fn structs_fields_and_derives_are_extracted() {
        let m = parse(
            "/// A sampler.\n#[derive(Debug, Clone)]\npub struct Sampler {\n    /// Shared lane.\n    tree: Arc<Vec<u64>>,\n    pub total: u64,\n}\n\npub struct Unit;\npub struct Pair(u32, u32);\n",
        );
        assert_eq!(m.structs.len(), 3);
        let s = &m.structs[0];
        assert_eq!(s.name, "Sampler");
        assert_eq!(s.kind, TypeDefKind::Struct);
        assert_eq!(s.line, 3);
        assert_eq!(s.derives, vec!["Clone".to_owned(), "Debug".to_owned()]);
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].name, "tree");
        assert_eq!(s.fields[0].ty, "Arc<Vec<u64>>");
        assert_eq!(s.fields[0].line, 5);
        assert_eq!(s.fields[1].name, "total");
        assert_eq!(s.fields[1].ty, "u64");
        assert!(m.structs[1].fields.is_empty());
        assert!(m.structs[2].fields.is_empty());
    }

    #[test]
    fn enum_variants_are_recorded_as_fields() {
        let m = parse(
            "#[derive(Debug)]\npub enum Any<E: Engine = Opt> {\n    CloudRun(CloudRunPolicy<E>),\n    Bare,\n}\n",
        );
        let s = &m.structs[0];
        assert_eq!(s.kind, TypeDefKind::Enum);
        assert_eq!(s.header, "<E: Engine = Opt>");
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].name, "CloudRun");
        assert_eq!(s.fields[0].ty, "(CloudRunPolicy<E>)");
        assert_eq!(s.fields[1].name, "Bare");
    }

    #[test]
    fn return_types_body_idents_and_end_lines() {
        let m = parse(
            "pub struct Clock;\nimpl Clock {\n    pub fn fork(&self) -> Clock {\n        Clock::starting_at(self.now())\n    }\n    pub fn share(&self) -> Self {\n        self.clone()\n    }\n    fn silent(&self) {}\n}\n",
        );
        let fork = &m.fns[0];
        assert_eq!(fork.ret, "Clock");
        assert_eq!(fork.line, 3);
        assert_eq!(fork.end_line, 5);
        assert!(fork.body_idents.contains("now"));
        assert!(fork.body_idents.contains("starting_at"));
        assert!(!fork.body_idents.contains("share"));
        assert_eq!(m.fns[1].ret, "Self");
        assert_eq!(m.fns[2].ret, "");
    }

    #[test]
    fn multi_line_signatures_capture_the_return_type() {
        let m = parse(
            "pub fn branch(\n    &self,\n    key: &str,\n) -> WorldSnapshot<E, P> {\n    self.freeze()\n}\n",
        );
        assert_eq!(m.fns[0].ret, "WorldSnapshot<E, P>");
        assert!(m.fns[0].body_idents.contains("freeze"));
    }

    #[test]
    fn test_gated_structs_are_skipped() {
        let m = parse(
            "pub struct Real {\n    x: u32,\n}\n#[cfg(test)]\nstruct Fake {\n    y: u32,\n}\n",
        );
        assert_eq!(m.structs.len(), 1);
        assert_eq!(m.structs[0].name, "Real");
    }

    #[test]
    fn test_gated_items_are_skipped() {
        let m = parse(
            "pub fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {\n        x.unwrap();\n    }\n}\n",
        );
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "real");
    }

    #[test]
    fn condvar_waits_are_recorded_instead_of_calls() {
        let m = parse(
            "impl P {\n    fn park(&self) {\n        let mut park = self.park.lock();\n        self.ready.wait(&mut park);\n        self.space.wait_while(&mut park, |s| s.full);\n        child.wait();\n    }\n}\n",
        );
        let f = &m.fns[0];
        let waits: Vec<(&str, &str)> = f
            .condvar_waits
            .iter()
            .map(|w| (w.what.as_str(), w.guard.as_str()))
            .collect();
        assert_eq!(waits, vec![("wait", "park"), ("wait_while", "park")]);
        // A `.wait()` without a `&mut guard` argument stays a plain call.
        assert!(f
            .calls
            .iter()
            .any(|c| c.target == CallTarget::Method("wait".into())));
        // The waits themselves produced no call sites.
        assert_eq!(
            f.calls
                .iter()
                .filter(|c| c.target == CallTarget::Method("wait".into()))
                .count(),
            1
        );
    }

    #[test]
    fn explicit_drop_releases_a_held_guard() {
        let m = parse(
            "impl P {\n    fn go(&self) {\n        let a = self.alpha.lock();\n        drop(a);\n        helper();\n        let b = self.beta.lock();\n        other();\n    }\n}\n",
        );
        let f = &m.fns[0];
        let helper = f
            .calls
            .iter()
            .find(|c| c.target == CallTarget::Free("helper".into()))
            .expect("helper call recorded");
        assert!(helper.holding.is_empty(), "drop(a) released the guard");
        let other = f
            .calls
            .iter()
            .find(|c| c.target == CallTarget::Free("other".into()))
            .expect("other call recorded");
        assert_eq!(other.holding, vec!["P.beta".to_owned()]);
    }

    #[test]
    fn spawn_sites_classify_the_handle_fate() {
        let m = parse(
            "fn f() {\n    std::thread::spawn(run);\n    let h = std::thread::spawn(run);\n    h.join().unwrap();\n    let leak = std::thread::spawn(run);\n    let v: Vec<_> = (0..2).map(|_| std::thread::spawn(run)).collect();\n}\n",
        );
        let s = &m.fns[0].spawns;
        assert_eq!(s.len(), 4);
        assert!(s[0].discarded && s[0].binding.is_none());
        assert_eq!(s[1].binding.as_deref(), Some("h"));
        assert!(s[1].binding_used, "h reappears on the join line");
        assert_eq!(s[2].binding.as_deref(), Some("leak"));
        assert!(!s[2].binding_used);
        assert!(
            !s[3].discarded && s[3].binding.as_deref() == Some("v"),
            "a collected spawn flows into the binding"
        );
    }

    #[test]
    fn multi_line_spawns_finish_at_the_closing_paren() {
        let m = parse(
            "fn f() {\n    std::thread::spawn(move || {\n        work();\n    });\n    let keep = std::thread::spawn(move || {\n        work();\n    });\n    keep.join().ok();\n}\n",
        );
        let s = &m.fns[0].spawns;
        assert_eq!(s.len(), 2);
        assert!(s[0].discarded);
        assert_eq!((s[0].line, s[0].end_line), (2, 4));
        assert!(!s[1].discarded && s[1].binding_used);
        assert_eq!((s[1].line, s[1].end_line), (5, 7));
    }

    #[test]
    fn builder_spawns_are_spawn_sites() {
        let m = parse(
            "fn f() {\n    let h = std::thread::Builder::new().name(n).spawn(run);\n    h.unwrap().join().unwrap();\n}\n",
        );
        let s = &m.fns[0].spawns;
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].binding.as_deref(), Some("h"));
        assert!(s[0].binding_used);
    }

    #[test]
    fn queue_sites_classify_bounds_and_annotations() {
        let m = parse(
            "fn f() {\n    let a: VecDeque<u32> = VecDeque::new();\n    let b = VecDeque::with_capacity(8);\n    let (tx, rx) = channel::bounded(4);\n    let (utx, urx) = channel::unbounded();\n    // bound: drained by callers\n    let c: VecDeque<u32> = VecDeque::new();\n    let d = VecDeque::default(); // bound: capped by push\n}\n",
        );
        let q = &m.fns[0].queues;
        let view: Vec<(&str, bool, bool)> = q
            .iter()
            .map(|s| (s.what.as_str(), s.bounded, s.bound_named))
            .collect();
        assert_eq!(
            view,
            vec![
                ("VecDeque::new", false, false),
                ("VecDeque::with_capacity", true, false),
                ("channel::bounded", true, false),
                ("channel::unbounded", false, false),
                ("VecDeque::new", false, true),
                ("VecDeque::default", false, true),
            ]
        );
    }

    #[test]
    fn must_use_attributes_are_captured() {
        let m = parse(
            "#[must_use]\npub fn a() -> bool {\n    true\n}\n\npub fn b() -> bool {\n    a()\n}\n",
        );
        assert!(m.fns[0].has_must_use);
        assert!(!m.fns[1].has_must_use);
    }

    #[test]
    fn statement_position_calls_are_marked() {
        let m = parse(
            "fn f() {\n    q.push(x);\n    let ok = q.push(x);\n    if q.push(x) {\n        helper();\n    }\n    q.push(make(\n        x,\n    ));\n    q.len().min(3);\n}\n",
        );
        let f = &m.fns[0];
        let stmts: Vec<(String, bool)> = f
            .calls
            .iter()
            .map(|c| {
                let name = match &c.target {
                    CallTarget::Free(n) | CallTarget::Method(n) => n.clone(),
                    CallTarget::Path(p) => p.join("::"),
                };
                (name, c.stmt)
            })
            .collect();
        // First push: whole statement, value dropped.
        assert_eq!(stmts[0], ("push".into(), true));
        // Bound and condition-position pushes are not discards.
        assert_eq!(stmts[1], ("push".into(), false));
        assert_eq!(stmts[2], ("push".into(), false));
        assert_eq!(stmts[3], ("helper".into(), true));
        // Multi-line argument list: the `;` after the matching `)` counts.
        assert_eq!(stmts[4], ("push".into(), true));
        assert!(!stmts[5].1, "inner make(...) flows into push");
        // `q.len().min(3);` — len is chained into min, not a statement.
        assert_eq!(stmts[6], ("len".into(), false));
    }

    #[test]
    fn catch_unwind_lines_are_recorded() {
        let m =
            parse("fn f() {\n    let r = std::panic::catch_unwind(|| work());\n    r.ok();\n}\n");
        assert_eq!(m.fns[0].catch_unwinds, vec![2]);
    }
}
