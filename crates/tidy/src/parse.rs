//! Item-level Rust parsing on top of the masking lexer.
//!
//! [`FileModel::parse`] walks the masked lines of one source file and
//! extracts the facts the semantic checks need: `use` imports, `fn` items
//! (with visibility, doc-`# Panics` presence, and body span), and per-body
//! facts — call sites, panic sources, determinism sources, and
//! `parking_lot` lock acquisitions. It is *not* a Rust parser: it tracks
//! brace depth on masked code and pattern-matches item keywords, exactly
//! deep enough for a call graph over a rustfmt-formatted workspace. Known
//! approximations (at most one item start per line, guards assumed held to
//! the end of their binding block) are documented in
//! `docs/STATIC_ANALYSIS.md`.

use std::collections::BTreeMap;

use crate::source::{Line, SourceFile};

/// Visibility of an `fn` item, as far as the pass distinguishes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// `pub fn` — part of the crate's public API surface.
    Public,
    /// `pub(crate)` / `pub(super)` / `pub(in …)` — crate-internal.
    Restricted,
    /// No `pub` at all.
    Private,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// `foo(…)` — a bare name.
    Free(String),
    /// `a::b::foo(…)` — a path; segments in order, callee last.
    Path(Vec<String>),
    /// `.foo(…)` — a method call on some receiver.
    Method(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// What the call names.
    pub target: CallTarget,
    /// 1-based line of the call.
    pub line: usize,
    /// Lock names (see [`LockAcquire::lock`]) held when the call is made.
    pub holding: Vec<String>,
}

/// One `.lock()` acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct LockAcquire {
    /// Canonical lock name: `Type.field` for `self.field.lock()` inside an
    /// `impl Type`, otherwise `file-stem::name` for locals and statics.
    pub lock: String,
    /// 1-based line of the acquisition.
    pub line: usize,
    /// Whether the guard is bound (`let g = m.lock();`) and therefore
    /// assumed held until its block closes, as opposed to a transient
    /// same-statement use (`m.lock().push(…)`).
    pub bound: bool,
    /// Locks already held at this acquisition (each yields an order edge).
    pub held: Vec<String>,
}

/// A panic or determinism source found in a function body.
#[derive(Debug, Clone)]
pub struct SourceSite {
    /// 1-based line.
    pub line: usize,
    /// Short description of the construct (`panic!`, `Instant`, `xs[i]`).
    pub what: String,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Simple name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub type_ctx: Option<String>,
    /// Module path inside the crate (inline `mod`s appended to the
    /// file-derived path).
    pub module: Vec<String>,
    /// 1-based signature line (the line carrying the `fn` token) — the
    /// anchor for diagnostics and inline suppressions.
    pub line: usize,
    /// 1-based line of the body's closing `}` (the signature line while
    /// the body is still open, or for bodyless signatures).
    pub end_line: usize,
    /// Visibility of the `fn` token itself.
    pub vis: Visibility,
    /// Return type text after `->` (empty for `()`), with any `where`
    /// clause stripped. Token-matched, never resolved.
    pub ret: String,
    /// Whether the doc comment above the item has a `# Panics` section.
    pub has_panics_doc: bool,
    /// Whether the item has a body (`false` for trait method signatures).
    pub has_body: bool,
    /// Call sites in the body.
    pub calls: Vec<CallSite>,
    /// Panic sources in the body (`panic!`, bare `unwrap()`, `todo!`,
    /// `unimplemented!`, non-literal slice indexing).
    pub panic_sources: Vec<SourceSite>,
    /// Determinism sources in the body (banned tokens plus names imported
    /// from banned `std` modules).
    pub det_sources: Vec<SourceSite>,
    /// Lock acquisitions in the body.
    pub locks: Vec<LockAcquire>,
    /// Every identifier token appearing in the body — the raw material of
    /// the per-field mention tracking behind the `fork-coverage` check.
    pub body_idents: std::collections::BTreeSet<String>,
}

/// Whether a type definition is a `struct` or an `enum`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeDefKind {
    /// `struct Name { … }` (or unit/tuple struct).
    Struct,
    /// `enum Name { … }` — variants are recorded as [`FieldItem`]s, the
    /// variant payload text standing in for a field type.
    Enum,
}

/// One named field of a struct, or one variant of an enum.
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Field (or variant) name.
    pub name: String,
    /// Declared type text for a field; payload text (`(CloudRunPolicy<E>)`)
    /// for an enum variant. First physical line only.
    pub ty: String,
    /// 1-based declaration line — the anchor for field-level diagnostics
    /// and inline suppressions.
    pub line: usize,
}

/// One associated-type binding (`type Name = Ty;`) inside an `impl` or
/// `trait` block — the edge that lets the fork-surface closure follow
/// `impl Engine for OptimizedEngine { type Sampler = FenwickSampler; }`
/// from the engine to the sampler it plugs in.
#[derive(Debug, Clone)]
pub struct AssocTypeItem {
    /// The enclosing block's type name (for `impl Trait for T`, `T`).
    pub owner: String,
    /// Associated-type name.
    pub name: String,
    /// Bound type text after `=`, up to `;`. First physical line only.
    pub ty: String,
    /// 1-based line of the binding.
    pub line: usize,
}

/// One parsed `struct`/`enum` definition.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Type name.
    pub name: String,
    /// Whether this is a struct or an enum.
    pub kind: TypeDefKind,
    /// Module path inside the crate.
    pub module: Vec<String>,
    /// 1-based line of the `struct`/`enum` keyword.
    pub line: usize,
    /// Declaration-header text after the name (generic parameters with
    /// their defaults, tuple-struct payload) up to `{`/`;`.
    pub header: String,
    /// Traits named in `#[derive(...)]` attributes directly above.
    pub derives: Vec<String>,
    /// Named fields (structs) or variants (enums), in source order.
    /// Tuple structs record none.
    pub fields: Vec<FieldItem>,
}

/// Everything the semantic pass knows about one file.
#[derive(Debug, Clone, Default)]
pub struct FileModel {
    /// `fn` items in source order (test-gated items excluded).
    pub fns: Vec<FnItem>,
    /// `struct`/`enum` definitions in source order (test-gated excluded).
    pub structs: Vec<StructItem>,
    /// Associated-type bindings in source order (test-gated excluded).
    pub assoc_types: Vec<AssocTypeItem>,
    /// Import map: local name → full path segments (`use a::b::c` maps
    /// `c → [a, b, c]`; `as` aliases and one-level groups handled).
    pub imports: BTreeMap<String, Vec<String>>,
    /// Glob import bases (`use a::b::*` records `[a, b]`).
    pub globs: Vec<Vec<String>>,
}

/// Identifier characters (same definition as the lexer).
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Reserved words that can never be call targets.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "mut", "ref", "move", "as", "in",
    "impl", "dyn", "where", "unsafe", "else", "break", "continue", "struct", "enum", "union",
    "trait", "type", "use", "mod", "pub", "crate", "super", "self", "Self", "const", "static",
    "await", "async", "box", "yield",
];

/// Names imported from these `std` modules count as determinism sources in
/// function bodies (`use std::fs::File` makes `File` a source token for
/// the file). `std::time` is *not* listed: `SystemTime`/`Instant` are
/// banned tokens in their own right while `Duration` is deterministic.
const BANNED_IMPORT_ROOTS: &[&str] = &["std::fs", "std::net", "std::process", "std::env"];

#[derive(Debug)]
enum Ctx {
    /// Inline `mod name {` — `depth` is the brace depth its `{` opened at.
    Mod(String, i64),
    /// `impl Type {` / `trait Name {`.
    Type(String, i64),
    /// A function body; index into `FileModel::fns`.
    Fn(usize, i64),
    /// A `struct`/`enum` body; index into `FileModel::structs`.
    Struct(usize, i64),
}

#[derive(Debug)]
struct PendingFn {
    item: FnItem,
    paren_depth: i64,
    /// Signature text accumulated so far (for return-type extraction).
    sig: String,
}

struct Parser<'a> {
    lines: &'a [Line],
    file_stem: String,
    model: FileModel,
    depth: i64,
    ctx: Vec<Ctx>,
    pending: Option<PendingFn>,
    /// `{` still owed to a just-seen `mod`/`impl`/`trait` header.
    pending_ctx: Option<Ctx>,
    /// Held lock guards: (lock name, depth the binding block opened at).
    held: Vec<(String, i64)>,
    /// Per-file derived determinism tokens (from banned imports).
    derived_tokens: Vec<String>,
    /// Lines with a justified `tidy:allow(determinism)` (sources there are
    /// trusted and do not taint) — only honored for determinism-critical
    /// crates by the caller; the parser records them unconditionally.
    det_suppressed: Vec<usize>,
    /// Names `let`-bound in the current function body. A bare call through
    /// one of these is a closure or function-pointer invocation, which the
    /// name-based resolver must not confuse with a workspace free fn.
    locals: std::collections::BTreeSet<String>,
    /// 1-based line currently being processed (for `FnItem::end_line`).
    cur_line: usize,
}

impl FileModel {
    /// Parses the masked `src` (as produced by [`SourceFile::parse`]) of
    /// the file `rel` into the item-level model. Test-gated lines are
    /// ignored except for brace tracking.
    pub fn parse(rel: &str, src: &SourceFile) -> FileModel {
        let file_stem = rel
            .rsplit('/')
            .next()
            .unwrap_or(rel)
            .trim_end_matches(".rs")
            .to_owned();
        let det_suppressed = src
            .suppressions
            .iter()
            .filter(|s| s.justified && s.check_name == "determinism")
            .map(|s| s.covers)
            .collect();
        let mut parser = Parser {
            lines: &src.lines,
            file_stem,
            model: FileModel::default(),
            depth: 0,
            ctx: Vec::new(),
            pending: None,
            pending_ctx: None,
            held: Vec::new(),
            derived_tokens: Vec::new(),
            det_suppressed,
            locals: std::collections::BTreeSet::new(),
            cur_line: 0,
        };
        parser.parse_imports();
        for idx in 0..src.lines.len() {
            parser.line(idx);
        }
        // A pending signature at EOF (malformed file) is dropped silently.
        parser.model
    }
}

impl Parser<'_> {
    /// Collects `use` items (which may span lines) into the import map.
    fn parse_imports(&mut self) {
        let mut i = 0;
        while i < self.lines.len() {
            let code = self.lines[i].code.trim();
            let in_test = self.lines[i].in_test;
            let after_use = code
                .strip_prefix("pub use ")
                .or_else(|| code.strip_prefix("pub(crate) use "))
                .or_else(|| code.strip_prefix("use "));
            let Some(first) = after_use else {
                i += 1;
                continue;
            };
            let mut text = first.to_owned();
            while !text.contains(';') && i + 1 < self.lines.len() {
                i += 1;
                text.push(' ');
                text.push_str(self.lines[i].code.trim());
            }
            if !in_test {
                let stmt = text.split(';').next().unwrap_or("");
                self.record_use(stmt);
            }
            i += 1;
        }
    }

    /// Records one `use` statement body (without `use` / `;`).
    fn record_use(&mut self, stmt: &str) {
        if let Some(open) = stmt.find('{') {
            let base: Vec<String> = stmt[..open]
                .split("::")
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_owned)
                .collect();
            let inner = stmt[open + 1..].trim_end().trim_end_matches('}');
            for item in split_group(inner) {
                self.record_use_leaf(&base, item.trim());
            }
        } else {
            self.record_use_leaf(&[], stmt.trim());
        }
    }

    /// Records one leaf of a `use` (possibly `path as alias`, `self`, `*`).
    fn record_use_leaf(&mut self, base: &[String], leaf: &str) {
        if leaf.contains('{') {
            // Nested groups are rare in this workspace; skip them rather
            // than guess.
            return;
        }
        let (path_part, alias) = match leaf.split_once(" as ") {
            Some((p, a)) => (p.trim(), Some(a.trim().to_owned())),
            None => (leaf, None),
        };
        let mut segs: Vec<String> = base.to_vec();
        let mut self_import = false;
        for seg in path_part
            .split("::")
            .map(str::trim)
            .filter(|s| !s.is_empty())
        {
            if seg == "*" {
                self.model.globs.push(segs.clone());
                return;
            }
            if seg == "self" && !segs.is_empty() {
                self_import = true;
                continue;
            }
            segs.push(seg.to_owned());
        }
        let _ = self_import;
        let Some(last) = segs.last().cloned() else {
            return;
        };
        let local = alias.unwrap_or(last);
        self.model.imports.insert(local, segs);
        self.record_banned_import(path_part, base);
    }

    /// If the import path sits under a banned `std` module, its local name
    /// becomes a derived determinism token for this file.
    fn record_banned_import(&mut self, path_part: &str, base: &[String]) {
        let full = if base.is_empty() {
            path_part.to_owned()
        } else {
            format!("{}::{}", base.join("::"), path_part)
        };
        for root in BANNED_IMPORT_ROOTS {
            if full == *root || full.starts_with(&format!("{root}::")) {
                if let Some(name) = full.rsplit("::").next() {
                    if name != "self" && !name.is_empty() {
                        self.derived_tokens.push(name.to_owned());
                    }
                }
                // `use std::fs;` — the module name itself is the token.
                if full == *root {
                    if let Some(name) = root.rsplit("::").next() {
                        self.derived_tokens.push(name.to_owned());
                    }
                }
            }
        }
    }

    fn module_path(&self) -> Vec<String> {
        self.ctx
            .iter()
            .filter_map(|c| match c {
                Ctx::Mod(name, _) => Some(name.clone()),
                _ => None,
            })
            .collect()
    }

    fn type_ctx(&self) -> Option<String> {
        self.ctx.iter().rev().find_map(|c| match c {
            Ctx::Type(name, _) => Some(name.clone()),
            _ => None,
        })
    }

    fn in_fn(&self) -> Option<usize> {
        self.ctx.iter().rev().find_map(|c| match c {
            Ctx::Fn(idx, _) => Some(*idx),
            _ => None,
        })
    }

    /// Processes one line: item detection, body facts, brace tracking.
    fn line(&mut self, idx: usize) {
        let lineno = idx + 1;
        self.cur_line = lineno;
        let code = self.lines[idx].code.clone();
        let in_test = self.lines[idx].in_test;

        if let Some(pending) = &mut self.pending {
            // Mid-signature: look for the body `{` or a `;` terminator.
            for (pos, c) in code.char_indices() {
                match c {
                    '(' | '[' => pending.paren_depth += 1,
                    ')' | ']' => pending.paren_depth -= 1,
                    ';' if pending.paren_depth == 0 => {
                        let pend = self.pending.take().expect("pending fn");
                        let mut item = pend.item;
                        item.has_body = false;
                        item.ret = ret_from_sig(&pend.sig);
                        if !in_test {
                            self.model.fns.push(item);
                        }
                        return self.scan_braces_only(&code);
                    }
                    '{' if pending.paren_depth == 0 => {
                        let pend = self.pending.take().expect("pending fn");
                        let mut item = pend.item;
                        item.ret = ret_from_sig(&pend.sig);
                        let fn_idx = self.model.fns.len();
                        if self.in_fn().is_none() {
                            self.locals.clear();
                        }
                        self.model.fns.push(item);
                        self.ctx.push(Ctx::Fn(fn_idx, self.depth));
                        self.depth += 1;
                        let rest: String = code[pos + c.len_utf8()..].to_owned();
                        return self.body_line(&rest, lineno, in_test);
                    }
                    _ => pending.sig.push(c),
                }
            }
            if let Some(pending) = &mut self.pending {
                pending.sig.push(' ');
            }
            return;
        }

        if self.in_fn().is_some() {
            return self.body_line(&code, lineno, in_test);
        }

        // Inside a struct/enum body at its own depth: field/variant lines.
        if let Some(&Ctx::Struct(s_idx, open_depth)) = self.ctx.last() {
            if self.depth == open_depth + 1 {
                if !in_test {
                    self.struct_body_line(s_idx, &code, lineno);
                }
                return self.scan_braces_only(&code);
            }
        }

        // Item position: detect at most one item start per line.
        if !in_test {
            if let Some(at) = crate::checks::find_token(&code, "fn") {
                if let Some(name) = ident_after(&code, at + 2) {
                    self.start_fn(idx, at, name);
                    // Re-process the remainder of this line as signature.
                    let rest = &code[at..];
                    let mut paren = 0i64;
                    for (pos, c) in rest.char_indices() {
                        match c {
                            '(' | '[' => paren += 1,
                            ')' | ']' => paren -= 1,
                            ';' if paren == 0 => {
                                let pend = self.pending.take().expect("pending fn");
                                let mut item = pend.item;
                                item.has_body = false;
                                item.ret = ret_from_sig(&pend.sig);
                                self.model.fns.push(item);
                                return self.scan_braces_only(&code);
                            }
                            '{' if paren == 0 => {
                                let pend = self.pending.take().expect("pending fn");
                                let mut item = pend.item;
                                item.ret = ret_from_sig(&pend.sig);
                                let fn_idx = self.model.fns.len();
                                if self.in_fn().is_none() {
                                    self.locals.clear();
                                }
                                self.model.fns.push(item);
                                self.ctx.push(Ctx::Fn(fn_idx, self.depth));
                                self.depth += 1;
                                let body_rest: String = rest[pos + c.len_utf8()..].to_owned();
                                return self.body_line(&body_rest, lineno, in_test);
                            }
                            c => {
                                if let Some(p) = &mut self.pending {
                                    p.sig.push(c);
                                }
                            }
                        }
                    }
                    // Signature continues on the next line: carry the
                    // bracket depth over so the body `{` is still found.
                    if let Some(p) = &mut self.pending {
                        p.paren_depth = paren;
                        p.sig.push(' ');
                    }
                    return;
                }
            }
            if let Some(at) = crate::checks::find_token(&code, "mod") {
                if let Some(name) = ident_after(&code, at + 3) {
                    if code.contains('{') || !code.trim_end().ends_with(';') {
                        self.pending_ctx = Some(Ctx::Mod(name, 0));
                    }
                }
            } else if let Some(at) = crate::checks::find_token(&code, "impl") {
                if let Some(name) = impl_type_name(&code[at + 4..]) {
                    self.pending_ctx = Some(Ctx::Type(name, 0));
                }
            } else if let Some(at) = crate::checks::find_token(&code, "trait") {
                if let Some(name) = ident_after(&code, at + 5) {
                    self.pending_ctx = Some(Ctx::Type(name, 0));
                }
            } else if let Some((at, kind)) = struct_or_enum_at(&code) {
                let kw_len = match kind {
                    TypeDefKind::Struct => "struct".len(),
                    TypeDefKind::Enum => "enum".len(),
                };
                if let Some(name) = ident_after(&code, at + kw_len) {
                    self.start_struct(idx, at + kw_len, name, kind);
                }
            } else if let Some(at) = crate::checks::find_token(&code, "type") {
                // Associated-type binding inside an impl/trait block:
                // `type Name = Ty;` (a bare declaration has no `=`).
                if let Some(owner) = self.type_ctx() {
                    if let Some(name) = ident_after(&code, at + 4) {
                        let rest = &code[at + 4..];
                        if let (Some(eq), Some(semi)) = (rest.find('='), rest.find(';')) {
                            if eq < semi {
                                self.model.assoc_types.push(AssocTypeItem {
                                    owner,
                                    name,
                                    ty: rest[eq + 1..semi].trim().to_owned(),
                                    line: lineno,
                                });
                            }
                        }
                    }
                }
            }
        }
        self.scan_braces_only(&code);
    }

    /// Records a `struct`/`enum` definition starting on line `idx` and, if
    /// it has a braced body, queues the struct context for its `{`.
    fn start_struct(&mut self, idx: usize, after_kw: usize, name: String, kind: TypeDefKind) {
        let code = self.lines[idx].code.clone();
        let header_end = code
            .find('{')
            .or_else(|| code.find(';'))
            .unwrap_or(code.len());
        let after_name = code[after_kw..header_end]
            .find(&name)
            .map_or(header_end, |p| after_kw + p + name.len());
        let header = code[after_name..header_end].trim().to_owned();
        let item = StructItem {
            name,
            kind,
            module: self.module_path(),
            line: idx + 1,
            header,
            derives: derives_above(self.lines, idx),
            fields: Vec::new(),
        };
        let s_idx = self.model.structs.len();
        self.model.structs.push(item);
        // `;` before `{` means a unit/tuple struct: no body to track. A
        // header continuing onto the next line queues the context; a later
        // `;` cancels it in `scan_braces_only` if no `{` ever opens.
        let has_body = match (code.find('{'), code.find(';')) {
            (Some(b), Some(s)) => b < s,
            (Some(_), None) | (None, None) => true,
            (None, Some(_)) => false,
        };
        if has_body {
            self.pending_ctx = Some(Ctx::Struct(s_idx, 0));
        }
    }

    /// Parses one line of a struct/enum body at field depth.
    fn struct_body_line(&mut self, s_idx: usize, code: &str, lineno: usize) {
        let Some(item) = self.model.structs.get_mut(s_idx) else {
            return;
        };
        let trimmed = code.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('}') {
            return;
        }
        match item.kind {
            TypeDefKind::Struct => {
                // `pub name: Type,` — strip visibility, split on the first
                // `:` (a `::` in the type never comes first).
                let mut rest = trimmed;
                if let Some(at) = crate::checks::find_token(rest, "pub") {
                    if at == 0 {
                        rest = rest[3..].trim_start();
                        if rest.starts_with('(') {
                            if let Some(close) = rest.find(')') {
                                rest = rest[close + 1..].trim_start();
                            }
                        }
                    }
                }
                let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
                if name.is_empty() || name.chars().next().is_some_and(char::is_numeric) {
                    return;
                }
                let after = rest[name.len()..].trim_start();
                let Some(ty_text) = after.strip_prefix(':') else {
                    return;
                };
                if after.starts_with("::") {
                    return;
                }
                let ty = ty_text.trim().trim_end_matches(',').trim().to_owned();
                item.fields.push(FieldItem {
                    name,
                    ty,
                    line: lineno,
                });
            }
            TypeDefKind::Enum => {
                // `Name`, `Name(Payload)`, or `Name { … }`.
                let name: String = trimmed.chars().take_while(|&c| is_ident(c)).collect();
                if name.is_empty() || !name.chars().next().is_some_and(char::is_uppercase) {
                    return;
                }
                let ty = trimmed[name.len()..]
                    .trim()
                    .trim_end_matches(',')
                    .trim()
                    .to_owned();
                item.fields.push(FieldItem {
                    name,
                    ty,
                    line: lineno,
                });
            }
        }
    }

    /// Starts a pending `fn` item from the signature line.
    fn start_fn(&mut self, idx: usize, fn_at: usize, name: String) {
        let code = &self.lines[idx].code;
        let before = &code[..fn_at];
        let vis = if let Some(pub_at) = crate::checks::find_token(before, "pub") {
            if before[pub_at + 3..].trim_start().starts_with('(') {
                Visibility::Restricted
            } else {
                Visibility::Public
            }
        } else {
            Visibility::Private
        };
        let item = FnItem {
            name,
            type_ctx: self.type_ctx(),
            module: self.module_path(),
            line: idx + 1,
            end_line: idx + 1,
            vis,
            ret: String::new(),
            has_panics_doc: docs_have_panics(self.lines, idx),
            has_body: true,
            calls: Vec::new(),
            panic_sources: Vec::new(),
            det_sources: Vec::new(),
            locks: Vec::new(),
            body_idents: std::collections::BTreeSet::new(),
        };
        self.pending = Some(PendingFn {
            item,
            paren_depth: 0,
            sig: String::new(),
        });
    }

    /// Tracks braces outside function bodies, attaching pending contexts.
    fn scan_braces_only(&mut self, code: &str) {
        for c in code.chars() {
            match c {
                '{' => {
                    if let Some(mut ctx) = self.pending_ctx.take() {
                        match &mut ctx {
                            Ctx::Mod(_, d)
                            | Ctx::Type(_, d)
                            | Ctx::Fn(_, d)
                            | Ctx::Struct(_, d) => *d = self.depth,
                        }
                        self.ctx.push(ctx);
                    }
                    self.depth += 1;
                }
                '}' => self.close_brace(),
                ';' => {
                    // `mod name;` / `impl Trait for T;` never opened.
                    self.pending_ctx = None;
                }
                _ => {}
            }
        }
    }

    fn close_brace(&mut self) {
        self.depth -= 1;
        let close_at = self.depth;
        let pop = matches!(
            self.ctx.last(),
            Some(Ctx::Mod(_, d) | Ctx::Type(_, d) | Ctx::Fn(_, d) | Ctx::Struct(_, d))
                if *d == close_at
        );
        if pop {
            if let Some(Ctx::Fn(fn_idx, _)) = self.ctx.pop() {
                if let Some(f) = self.model.fns.get_mut(fn_idx) {
                    f.end_line = self.cur_line;
                }
            }
        }
        self.held.retain(|(_, d)| *d <= close_at);
    }

    /// Scans one line of a function body: facts first, then braces.
    fn body_line(&mut self, code: &str, lineno: usize, in_test: bool) {
        if !in_test {
            self.scan_locals(code);
            self.scan_locks(code, lineno);
            self.scan_calls(code, lineno);
            self.scan_panic_sources(code, lineno);
            self.scan_det_sources(code, lineno);
            self.scan_body_idents(code);
        }
        self.scan_braces_only(code);
    }

    /// Collects every identifier token on a body line into the enclosing
    /// function's mention set.
    fn scan_body_idents(&mut self, code: &str) {
        let mut idents: Vec<String> = Vec::new();
        let mut cur = String::new();
        for c in code.chars() {
            if is_ident(c) {
                cur.push(c);
            } else if !cur.is_empty() {
                idents.push(std::mem::take(&mut cur));
            }
        }
        if !cur.is_empty() {
            idents.push(cur);
        }
        if let Some(f) = self.current_fn_mut() {
            for ident in idents {
                if !ident.chars().next().is_some_and(char::is_numeric) {
                    f.body_idents.insert(ident);
                }
            }
        }
    }

    fn current_fn_mut(&mut self) -> Option<&mut FnItem> {
        let idx = self.in_fn()?;
        self.model.fns.get_mut(idx)
    }

    fn held_names(&self) -> Vec<String> {
        self.held.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Records names bound by `let` (with optional `mut`) on this line, so
    /// later `name(...)` calls through closures and function pointers do
    /// not resolve to same-named workspace functions.
    fn scan_locals(&mut self, code: &str) {
        let mut from = 0;
        while let Some(at) = crate::checks::find_token(&code[from..], "let") {
            let mut rest = code[from + at + 3..].trim_start();
            from += at + 3;
            if let Some(stripped) = rest.strip_prefix("mut ") {
                rest = stripped.trim_start();
            }
            let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
            if !name.is_empty() && !name.chars().next().is_some_and(char::is_numeric) {
                self.locals.insert(name);
            }
        }
    }

    /// Detects `.lock()` acquisitions, derives lock names, and maintains
    /// the held-guard set.
    fn scan_locks(&mut self, code: &str, lineno: usize) {
        let has_let = crate::checks::find_token(code, "let").is_some();
        let type_ctx = self.type_ctx();
        let mut from = 0;
        while let Some(rel_at) = code[from..].find(".lock(") {
            let at = from + rel_at;
            from = at + ".lock(".len();
            // Receiver: walk back over `ident`, `.`, `:` chains.
            let recv: String = code[..at]
                .chars()
                .rev()
                .take_while(|&c| is_ident(c) || c == '.' || c == ':')
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            let recv = recv.trim_matches(|c| c == '.' || c == ':');
            let last = recv
                .rsplit(['.', ':'])
                .find(|s| !s.is_empty())
                .unwrap_or("");
            if last.is_empty() {
                continue;
            }
            let lock = if recv.starts_with("self.") {
                let owner = type_ctx.clone().unwrap_or_else(|| self.file_stem.clone());
                format!("{owner}.{last}")
            } else {
                format!("{}::{last}", self.file_stem)
            };
            // Bound guard: `let g = m.lock();` (the `)` directly followed
            // by `;`). Anything else is a transient same-statement use.
            let tail = &code[at + ".lock(".len()..];
            let bound = has_let && tail.trim_start().starts_with(");");
            let held = self.held_names();
            let bind_depth = self.depth;
            if let Some(f) = self.current_fn_mut() {
                f.locks.push(LockAcquire {
                    lock: lock.clone(),
                    line: lineno,
                    bound,
                    held,
                });
            }
            if bound {
                self.held.push((lock, bind_depth));
            }
        }
    }

    /// Detects call sites: `name(`, `a::b::name(`, `.name(` — with
    /// optional turbofish — skipping keywords and macro invocations.
    fn scan_calls(&mut self, code: &str, lineno: usize) {
        let chars: Vec<char> = code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if !is_ident(chars[i]) || chars[i].is_numeric() {
                i += 1;
                continue;
            }
            let start = i;
            while i < chars.len() && is_ident(chars[i]) {
                i += 1;
            }
            let name: String = chars[start..i].iter().collect();
            // Position after optional turbofish `::<…>`.
            let mut j = i;
            if chars.get(j) == Some(&':')
                && chars.get(j + 1) == Some(&':')
                && chars.get(j + 2) == Some(&'<')
            {
                let mut angle = 0i64;
                let mut k = j + 2;
                while k < chars.len() {
                    match chars[k] {
                        '<' => angle += 1,
                        '>' => {
                            angle -= 1;
                            if angle == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                if angle == 0 {
                    j = k + 1;
                }
            }
            if chars.get(j) != Some(&'(') {
                continue;
            }
            if KEYWORDS.contains(&name.as_str()) {
                continue;
            }
            // Macro invocation `name!(` never reaches here (the `!` breaks
            // the adjacency test above), but `name !(` would; reject any
            // `!` directly after the identifier.
            if chars.get(i) == Some(&'!') {
                continue;
            }
            let prev = chars[..start].iter().rev().find(|c| !c.is_whitespace());
            let target = match prev {
                Some('.') => {
                    if name == "lock" {
                        continue; // handled by scan_locks
                    }
                    CallTarget::Method(name)
                }
                Some(':') => {
                    // Collect the full leading path `a::b::name`.
                    let mut segs = vec![name];
                    let mut end = start;
                    loop {
                        let before: String = chars[..end].iter().collect();
                        let trimmed = before.trim_end();
                        if !trimmed.ends_with("::") {
                            break;
                        }
                        let upto = trimmed.len() - 2;
                        let seg_chars: &str = &trimmed[..upto];
                        let seg: String = seg_chars
                            .chars()
                            .rev()
                            .take_while(|&c| is_ident(c))
                            .collect::<String>()
                            .chars()
                            .rev()
                            .collect();
                        if seg.is_empty() {
                            break;
                        }
                        segs.insert(0, seg.clone());
                        end = seg_chars.len() - seg.len();
                        // Only the segment directly before `::` matters for
                        // further chaining; keep walking.
                        let before_seg: String = seg_chars[..end].to_owned();
                        if !before_seg.trim_end().ends_with("::") {
                            break;
                        }
                        end = before_seg.len();
                    }
                    if segs.len() == 1 {
                        CallTarget::Free(segs.remove(0))
                    } else {
                        CallTarget::Path(segs)
                    }
                }
                _ => CallTarget::Free(name),
            };
            if matches!(&target, CallTarget::Free(n) if self.locals.contains(n)) {
                continue;
            }
            let holding = self.held_names();
            if let Some(f) = self.current_fn_mut() {
                f.calls.push(CallSite {
                    target,
                    line: lineno,
                    holding,
                });
            }
        }
    }

    /// Detects panic sources: bare `unwrap()`, the panic macros, and
    /// slice indexing with a non-literal index.
    fn scan_panic_sources(&mut self, code: &str, lineno: usize) {
        let mut sources: Vec<String> = Vec::new();
        if has_bare_unwrap(code) {
            sources.push("unwrap()".to_owned());
        }
        for mac in ["panic", "todo", "unimplemented"] {
            if is_macro_call(code, mac) {
                sources.push(format!("{mac}!"));
            }
        }
        if has_non_literal_index(code) {
            sources.push("slice indexing".to_owned());
        }
        if let Some(f) = self.current_fn_mut() {
            for what in sources {
                f.panic_sources.push(SourceSite { line: lineno, what });
            }
        }
    }

    /// Detects determinism sources: the banned token list plus names
    /// imported from banned `std` modules. Lines under a justified
    /// `tidy:allow(determinism)` are trusted and skipped.
    fn scan_det_sources(&mut self, code: &str, lineno: usize) {
        if self.det_suppressed.contains(&lineno) {
            return;
        }
        let mut sources: Vec<String> = Vec::new();
        for &(token, _) in crate::checks::determinism::BANNED {
            if crate::checks::find_token(code, token).is_some() {
                sources.push(token.to_owned());
            }
        }
        for token in &self.derived_tokens {
            if crate::checks::find_token(code, token).is_some() {
                sources.push(format!("{token} (imported from a banned std module)"));
            }
        }
        sources.sort();
        sources.dedup();
        if let Some(f) = self.current_fn_mut() {
            for what in sources {
                f.det_sources.push(SourceSite { line: lineno, what });
            }
        }
    }
}

/// Splits a one-level `use` group body on top-level commas.
fn split_group(inner: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut cur = String::new();
    for c in inner.chars() {
        match c {
            '{' => {
                depth += 1;
                cur.push(c);
            }
            '}' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// The identifier starting at or after `from` (skipping whitespace), if
/// the very next token is one.
fn ident_after(code: &str, from: usize) -> Option<String> {
    let rest = code.get(from..)?.trim_start();
    let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_numeric()) {
        None
    } else {
        Some(name)
    }
}

/// Extracts the implemented type's name from the text after `impl`:
/// `<…> Trait for Type {` → `Type`; `Type<G> {` → `Type`.
fn impl_type_name(rest: &str) -> Option<String> {
    let mut rest = rest;
    // Skip the generic parameter list, if any.
    let trimmed = rest.trim_start();
    if let Some(stripped) = trimmed.strip_prefix('<') {
        let mut depth = 1i64;
        let mut end = None;
        for (pos, c) in stripped.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(pos);
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &stripped[end? + 1..];
    } else {
        rest = trimmed;
    }
    let head = rest.split('{').next().unwrap_or(rest);
    let head = match crate::checks::find_token(head, "for") {
        Some(at) => &head[at + 3..],
        None => head,
    };
    // Last path segment before generics/where.
    let head = head.split('<').next().unwrap_or(head);
    let head = match crate::checks::find_token(head, "where") {
        Some(at) => &head[..at],
        None => head,
    };
    head.trim()
        .rsplit("::")
        .next()
        .map(|s| s.trim().trim_start_matches('&').to_owned())
        .filter(|s| !s.is_empty() && s.chars().all(is_ident))
}

/// Finds a `struct` or `enum` keyword in item position on the line.
fn struct_or_enum_at(code: &str) -> Option<(usize, TypeDefKind)> {
    if let Some(at) = crate::checks::find_token(code, "struct") {
        return Some((at, TypeDefKind::Struct));
    }
    if let Some(at) = crate::checks::find_token(code, "enum") {
        return Some((at, TypeDefKind::Enum));
    }
    None
}

/// Collects the traits named in `#[derive(...)]` attributes in the
/// contiguous doc/attribute block above line `idx` (0-based).
fn derives_above(lines: &[Line], idx: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let line = &lines[i];
        let code = line.code.trim();
        if code.is_empty() {
            if line.comment.trim().is_empty() {
                break; // blank line ends the block
            }
            continue; // doc or plain comment
        }
        if !code.starts_with('#') {
            break;
        }
        if let Some(open) = code.find("derive(") {
            let inner = &code[open + "derive(".len()..];
            let inner = inner.split(')').next().unwrap_or("");
            for name in inner.split(',') {
                let name = name.trim();
                if !name.is_empty() {
                    out.push(name.rsplit("::").next().unwrap_or(name).to_owned());
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Extracts the return type from accumulated signature text: everything
/// after the last top-level `->`, with any `where` clause stripped.
fn ret_from_sig(sig: &str) -> String {
    let Some(at) = sig.rfind("->") else {
        return String::new();
    };
    let mut ret = &sig[at + 2..];
    if let Some(w) = crate::checks::find_token(ret, "where") {
        ret = &ret[..w];
    }
    ret.trim().to_owned()
}

/// Whether the contiguous doc/attribute block above line `idx` (0-based)
/// contains a `# Panics` section.
fn docs_have_panics(lines: &[Line], idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let line = &lines[i];
        let comment = line.comment.trim_start();
        let is_doc =
            comment.starts_with('/') || comment.starts_with('!') || comment.starts_with('*');
        let code = line.code.trim();
        if is_doc && code.is_empty() {
            if line.comment.contains("# Panics") {
                return true;
            }
            continue;
        }
        if code.starts_with("#[")
            || code.starts_with("#![")
            || code.ends_with(']') && code.starts_with('#')
        {
            continue; // attribute
        }
        if code.is_empty() && !line.comment.trim().is_empty() {
            continue; // plain comment (e.g. a tidy:allow line)
        }
        break;
    }
    false
}

/// `unwrap` immediately followed by `()` — same rule as the lexical
/// panic check.
fn has_bare_unwrap(code: &str) -> bool {
    let mut rest = code;
    while let Some(at) = crate::checks::find_token(rest, "unwrap") {
        let tail = rest[at + "unwrap".len()..].trim_start();
        if let Some(t) = tail.strip_prefix('(') {
            if t.trim_start().starts_with(')') {
                return true;
            }
        }
        rest = &rest[at + "unwrap".len()..];
    }
    false
}

/// `name` followed directly by `!`.
fn is_macro_call(code: &str, name: &str) -> bool {
    let mut rest = code;
    while let Some(at) = crate::checks::find_token(rest, name) {
        if rest[at + name.len()..].starts_with('!') {
            return true;
        }
        rest = &rest[at + name.len()..];
    }
    false
}

/// `expr[index]` where `index` is not a pure literal / literal range —
/// the detectable slice-indexing panic site (`xs[i]`, `map[&k]`). Array
/// *literals* (`[1, 2]`), attributes, and `xs[0]` / `xs[..]` forms are
/// not matched.
fn has_non_literal_index(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let prev = chars[..i].iter().rev().find(|c| !c.is_whitespace());
        let indexing = matches!(prev, Some(p) if is_ident(*p) || *p == ')' || *p == ']');
        if !indexing {
            continue;
        }
        // A keyword before `[` means an array *literal* position
        // (`for x in [a, b]`, `return [x]`), not a place expression.
        let before: String = chars[..i]
            .iter()
            .rev()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| is_ident(**c))
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        if matches!(
            before.as_str(),
            "in" | "return" | "break" | "else" | "match" | "mut" | "ref"
        ) {
            continue;
        }
        // Attribute `#[…]` — the `#` is never an identifier char, so the
        // check above already excluded it.
        let mut depth = 1i64;
        let mut j = i + 1;
        let mut content = String::new();
        while j < chars.len() && depth > 0 {
            match chars[j] {
                '[' => depth += 1,
                ']' => depth -= 1,
                _ => {}
            }
            if depth > 0 {
                content.push(chars[j]);
            }
            j += 1;
        }
        let content = content.trim();
        if content.is_empty() {
            continue;
        }
        let literal_only = content
            .chars()
            .all(|c| c.is_numeric() || c == '.' || c == '_' || c.is_whitespace());
        if !literal_only {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> FileModel {
        FileModel::parse("crates/x/src/demo.rs", &SourceFile::parse(text))
    }

    #[test]
    fn extracts_fns_with_visibility_and_docs() {
        let m = parse(
            "/// Does a thing.\n///\n/// # Panics\n/// On bad input.\npub fn a() {}\n\
             pub(crate) fn b() {}\nfn c() {}\n",
        );
        assert_eq!(m.fns.len(), 3);
        assert_eq!(m.fns[0].name, "a");
        assert_eq!(m.fns[0].vis, Visibility::Public);
        assert!(m.fns[0].has_panics_doc);
        assert_eq!(m.fns[0].line, 5);
        assert_eq!(m.fns[1].vis, Visibility::Restricted);
        assert_eq!(m.fns[2].vis, Visibility::Private);
        assert!(!m.fns[2].has_panics_doc);
    }

    #[test]
    fn attributes_between_docs_and_fn_are_transparent() {
        let m = parse("/// # Panics\n/// Yes.\n#[inline]\npub fn a() {}\n");
        assert!(m.fns[0].has_panics_doc);
    }

    #[test]
    fn impl_and_mod_contexts_qualify_items() {
        let m = parse(
            "pub struct W;\nimpl W {\n    pub fn go(&self) {}\n}\n\
             impl std::fmt::Debug for W {\n    fn fmt(&self) {}\n}\n\
             mod inner {\n    pub fn deep() {}\n}\n",
        );
        let names: Vec<(String, Option<String>, Vec<String>)> = m
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.type_ctx.clone(), f.module.clone()))
            .collect();
        assert_eq!(names[0], ("go".into(), Some("W".into()), vec![]));
        assert_eq!(names[1], ("fmt".into(), Some("W".into()), vec![]));
        assert_eq!(names[2], ("deep".into(), None, vec!["inner".into()]));
    }

    #[test]
    fn generic_impls_resolve_the_type_name() {
        let m = parse("impl<E: Engine> World<E> {\n    pub fn launch(&mut self) {}\n}\n");
        assert_eq!(m.fns[0].type_ctx.as_deref(), Some("World"));
    }

    #[test]
    fn trait_method_signatures_have_no_body() {
        let m = parse(
            "pub trait T {\n    fn must(&self) -> u32;\n    fn dflt(&self) -> u32 {\n        self.must()\n    }\n}\n",
        );
        assert_eq!(m.fns.len(), 2);
        assert!(!m.fns[0].has_body);
        assert!(m.fns[1].has_body);
        assert_eq!(m.fns[1].calls.len(), 1);
    }

    #[test]
    fn calls_are_extracted_with_kinds() {
        let m = parse(
            "fn f() {\n    helper();\n    crate::a::b();\n    Widget::new(1);\n    x.tick();\n    vec![1].len();\n}\n",
        );
        let f = &m.fns[0];
        let targets: Vec<&CallTarget> = f.calls.iter().map(|c| &c.target).collect();
        assert!(targets.contains(&&CallTarget::Free("helper".into())));
        assert!(targets.contains(&&CallTarget::Path(vec![
            "crate".into(),
            "a".into(),
            "b".into()
        ])));
        assert!(targets.contains(&&CallTarget::Path(vec!["Widget".into(), "new".into()])));
        assert!(targets.contains(&&CallTarget::Method("tick".into())));
        assert!(targets.contains(&&CallTarget::Method("len".into())));
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let m = parse("fn f() {\n    if ready(x) {\n        assert!(g());\n    }\n}\n");
        let f = &m.fns[0];
        let names: Vec<String> = f
            .calls
            .iter()
            .map(|c| match &c.target {
                CallTarget::Free(n) | CallTarget::Method(n) => n.clone(),
                CallTarget::Path(p) => p.join("::"),
            })
            .collect();
        assert_eq!(names, vec!["ready", "g"], "{:?}", f.calls);
    }

    #[test]
    fn panic_sources_detected() {
        let m = parse(
            "fn f(xs: &[u32], i: usize) -> u32 {\n    let a = xs[i];\n    let b = xs[0];\n    x.unwrap();\n    panic!(\"no\");\n    a\n}\n",
        );
        let whats: Vec<&str> = m.fns[0]
            .panic_sources
            .iter()
            .map(|s| s.what.as_str())
            .collect();
        assert!(whats.contains(&"slice indexing"));
        assert!(whats.contains(&"unwrap()"));
        assert!(whats.contains(&"panic!"));
        // xs[0] (literal index) contributes nothing.
        assert_eq!(
            m.fns[0]
                .panic_sources
                .iter()
                .filter(|s| s.what == "slice indexing")
                .count(),
            1
        );
    }

    #[test]
    fn array_literals_are_not_indexing() {
        let m = parse(
            "fn f(a: u32, b: u32, xs: &[u32], i: usize) -> u32 {\n    \
             for x in [a, b] {\n        let _ = x;\n    }\n    \
             let pair = [a, b];\n    \
             let margin = xs;\n    \
             margin[i] + pair[0]\n}\n",
        );
        let indexing = m.fns[0]
            .panic_sources
            .iter()
            .filter(|s| s.what == "slice indexing")
            .count();
        // Only `margin[i]`: the `in [a, b]` literal, the `= [a, b]`
        // literal, and the literal-index `pair[0]` contribute nothing.
        assert_eq!(indexing, 1);
    }

    #[test]
    fn det_sources_include_derived_imports() {
        let m = parse(
            "use std::fs::File;\nuse std::time::Duration;\nfn f() {\n    let h = File::create(p);\n    let t = Instant::now();\n    let d = Duration::from_secs(1);\n}\n",
        );
        let whats: Vec<&str> = m.fns[0]
            .det_sources
            .iter()
            .map(|s| s.what.as_str())
            .collect();
        assert!(whats.iter().any(|w| w.starts_with("File")), "{whats:?}");
        assert!(whats.contains(&"Instant"));
        assert!(!whats.iter().any(|w| w.starts_with("Duration")));
    }

    #[test]
    fn locks_and_held_edges() {
        let m = parse(
            "struct S;\nimpl S {\n    fn ab(&self) {\n        let a = self.alpha.lock();\n        self.beta.lock().push(1);\n        helper();\n    }\n}\n",
        );
        let f = &m.fns[0];
        assert_eq!(f.locks.len(), 2);
        assert_eq!(f.locks[0].lock, "S.alpha");
        assert!(f.locks[0].bound);
        assert!(f.locks[0].held.is_empty());
        assert_eq!(f.locks[1].lock, "S.beta");
        assert!(!f.locks[1].bound);
        assert_eq!(f.locks[1].held, vec!["S.alpha".to_owned()]);
        let call = f
            .calls
            .iter()
            .find(|c| matches!(&c.target, CallTarget::Free(n) if n == "helper"))
            .expect("helper call");
        assert_eq!(call.holding, vec!["S.alpha".to_owned()]);
    }

    #[test]
    fn guard_released_at_block_close() {
        let m = parse(
            "fn f(m: &M) {\n    {\n        let g = m.lock();\n        inner1();\n    }\n    inner2();\n}\n",
        );
        let f = &m.fns[0];
        let holding: Vec<(String, Vec<String>)> = f
            .calls
            .iter()
            .map(|c| match &c.target {
                CallTarget::Free(n) => (n.clone(), c.holding.clone()),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(holding[0].0, "inner1");
        assert_eq!(holding[0].1, vec!["demo::m".to_owned()]);
        assert_eq!(holding[1].0, "inner2");
        assert!(holding[1].1.is_empty());
    }

    #[test]
    fn imports_map_and_globs() {
        let m = parse(
            "use crate::graph::{Workspace, resolve as res};\nuse eaao_core::cluster;\nuse super::util::*;\nfn f() {}\n",
        );
        assert_eq!(
            m.imports.get("Workspace"),
            Some(&vec!["crate".into(), "graph".into(), "Workspace".into()])
        );
        assert_eq!(
            m.imports.get("res"),
            Some(&vec!["crate".into(), "graph".into(), "resolve".into()])
        );
        assert_eq!(
            m.imports.get("cluster"),
            Some(&vec!["eaao_core".into(), "cluster".into()])
        );
        assert_eq!(m.globs, vec![vec!["super".to_owned(), "util".to_owned()]]);
    }

    #[test]
    fn structs_fields_and_derives_are_extracted() {
        let m = parse(
            "/// A sampler.\n#[derive(Debug, Clone)]\npub struct Sampler {\n    /// Shared lane.\n    tree: Arc<Vec<u64>>,\n    pub total: u64,\n}\n\npub struct Unit;\npub struct Pair(u32, u32);\n",
        );
        assert_eq!(m.structs.len(), 3);
        let s = &m.structs[0];
        assert_eq!(s.name, "Sampler");
        assert_eq!(s.kind, TypeDefKind::Struct);
        assert_eq!(s.line, 3);
        assert_eq!(s.derives, vec!["Clone".to_owned(), "Debug".to_owned()]);
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].name, "tree");
        assert_eq!(s.fields[0].ty, "Arc<Vec<u64>>");
        assert_eq!(s.fields[0].line, 5);
        assert_eq!(s.fields[1].name, "total");
        assert_eq!(s.fields[1].ty, "u64");
        assert!(m.structs[1].fields.is_empty());
        assert!(m.structs[2].fields.is_empty());
    }

    #[test]
    fn enum_variants_are_recorded_as_fields() {
        let m = parse(
            "#[derive(Debug)]\npub enum Any<E: Engine = Opt> {\n    CloudRun(CloudRunPolicy<E>),\n    Bare,\n}\n",
        );
        let s = &m.structs[0];
        assert_eq!(s.kind, TypeDefKind::Enum);
        assert_eq!(s.header, "<E: Engine = Opt>");
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].name, "CloudRun");
        assert_eq!(s.fields[0].ty, "(CloudRunPolicy<E>)");
        assert_eq!(s.fields[1].name, "Bare");
    }

    #[test]
    fn return_types_body_idents_and_end_lines() {
        let m = parse(
            "pub struct Clock;\nimpl Clock {\n    pub fn fork(&self) -> Clock {\n        Clock::starting_at(self.now())\n    }\n    pub fn share(&self) -> Self {\n        self.clone()\n    }\n    fn silent(&self) {}\n}\n",
        );
        let fork = &m.fns[0];
        assert_eq!(fork.ret, "Clock");
        assert_eq!(fork.line, 3);
        assert_eq!(fork.end_line, 5);
        assert!(fork.body_idents.contains("now"));
        assert!(fork.body_idents.contains("starting_at"));
        assert!(!fork.body_idents.contains("share"));
        assert_eq!(m.fns[1].ret, "Self");
        assert_eq!(m.fns[2].ret, "");
    }

    #[test]
    fn multi_line_signatures_capture_the_return_type() {
        let m = parse(
            "pub fn branch(\n    &self,\n    key: &str,\n) -> WorldSnapshot<E, P> {\n    self.freeze()\n}\n",
        );
        assert_eq!(m.fns[0].ret, "WorldSnapshot<E, P>");
        assert!(m.fns[0].body_idents.contains("freeze"));
    }

    #[test]
    fn test_gated_structs_are_skipped() {
        let m = parse(
            "pub struct Real {\n    x: u32,\n}\n#[cfg(test)]\nstruct Fake {\n    y: u32,\n}\n",
        );
        assert_eq!(m.structs.len(), 1);
        assert_eq!(m.structs[0].name, "Real");
    }

    #[test]
    fn test_gated_items_are_skipped() {
        let m = parse(
            "pub fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {\n        x.unwrap();\n    }\n}\n",
        );
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "real");
    }
}
