//! The per-crate policy table: which checks apply to which crate.
//!
//! This table is the registry of workspace crates. A crate directory that
//! exists under `crates/` but has no row here is itself a finding — adding
//! a crate forces an explicit decision about which rules it lives under.

/// Where a source file sits in a crate's layout. Library sources carry the
/// full policy; test/example/bench targets are exempt from the determinism
/// and panic checks (they are allowed to assert, collect into `HashMap`s,
/// and measure wall-clock time) but never from the unsafe policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` — library (or binary) code shipped by the crate.
    LibSrc,
    /// `tests/**` — integration tests.
    Tests,
    /// `examples/**`.
    Examples,
    /// `benches/**`.
    Benches,
}

/// Policy row for one workspace crate.
#[derive(Debug, Clone, Copy)]
pub struct CratePolicy {
    /// Package name as in its `Cargo.toml`.
    pub name: &'static str,
    /// Crate directory relative to the workspace root (`""` for the root
    /// facade crate).
    pub dir: &'static str,
    /// Whether the determinism check applies to this crate's library
    /// sources. True for every crate on the simulation-critical path —
    /// anything whose behaviour can reach an oracle trajectory or a
    /// campaign record. False for host-side tools that legitimately read
    /// wall clocks and touch the filesystem.
    pub determinism: bool,
    /// Whether the crate's library sources feed the workspace call graph
    /// that the semantic checks (panic-reachability, determinism-taint,
    /// lock-order) run over. True for the model and host crates whose
    /// APIs call each other (including `serve`, whose dispatcher path the
    /// concurrency checks walk); false for the root facade binary,
    /// `bench`, and this crate — self-analysis of the analyzer would
    /// dominate the findings with its own parser internals.
    pub call_graph: bool,
    /// Whether the crate is sanctioned to open sockets (`std::net`).
    /// True only for `eaao-serve`, whose entire purpose is the wire
    /// protocol; everywhere else the `net-policy` check keeps network
    /// I/O out, so the service boundary stays in exactly one crate.
    pub net: bool,
    /// Whether the crate's types participate in the snapshot/branch
    /// contract, so the field-level checks (`fork-coverage`,
    /// `cow-aliasing`) model its structs. True for the model crates plus
    /// `campaign` (which tees worlds across trials); false for host
    /// tools whose `Clone`s never cross a `World::branch()`.
    pub fork_surface: bool,
    /// Whether the `float-determinism` check scans the crate's library
    /// sources. True exactly for the simulation-critical crates — the
    /// ones whose arithmetic must replay byte-identically — so it tracks
    /// the `determinism` column today but is its own axis: a future
    /// host-side crate could be determinism-exempt (wall clocks fine)
    /// while still barred from unordered float math it feeds back into
    /// records.
    pub float_det: bool,
    /// Whether the concurrency-lifecycle checks (`thread-lifecycle`,
    /// `queue-bounds`, `error-policy`) scan the crate's library sources.
    /// True for the long-running service runtime — `eaao-serve` and the
    /// shared `eaao-campaign` executor — whose threads, queues, and
    /// swallowed errors are exactly the PR 6 bug classes (dead
    /// dispatcher, leaked per-connection handles, unbounded snapshots).
    /// Implies `call_graph`: the panic-barrier half of thread-lifecycle
    /// walks callees.
    pub concurrency: bool,
}

/// The workspace policy table.
///
/// Simulation-critical (`determinism: true`): `simcore`, `tsc`,
/// `cloudsim`, `orchestrator`, `core`, `oracle`. Host tools
/// (`determinism: false`): the root facade/CLI (`eaao`), the `campaign`
/// runner (walls clocks for elapsed-time reporting, owns the JSONL sink),
/// `obs` (trace files are explicit ambient I/O), `bench` (timing is its
/// job), `serve` (the only crate sanctioned to open sockets), and this
/// crate (a filesystem scanner by definition).
pub const POLICIES: &[CratePolicy] = &[
    CratePolicy {
        name: "eaao",
        dir: "",
        determinism: false,
        call_graph: false,
        net: false,
        fork_surface: false,
        float_det: false,
        concurrency: false,
    },
    CratePolicy {
        name: "eaao-simcore",
        dir: "crates/simcore",
        determinism: true,
        call_graph: true,
        net: false,
        fork_surface: true,
        float_det: true,
        concurrency: false,
    },
    CratePolicy {
        name: "eaao-tsc",
        dir: "crates/tsc",
        determinism: true,
        call_graph: true,
        net: false,
        fork_surface: true,
        float_det: true,
        concurrency: false,
    },
    CratePolicy {
        name: "eaao-cloudsim",
        dir: "crates/cloudsim",
        determinism: true,
        call_graph: true,
        net: false,
        fork_surface: true,
        float_det: true,
        concurrency: false,
    },
    CratePolicy {
        name: "eaao-orchestrator",
        dir: "crates/orchestrator",
        determinism: true,
        call_graph: true,
        net: false,
        fork_surface: true,
        float_det: true,
        concurrency: false,
    },
    CratePolicy {
        name: "eaao-core",
        dir: "crates/core",
        determinism: true,
        call_graph: true,
        net: false,
        fork_surface: true,
        float_det: true,
        concurrency: false,
    },
    CratePolicy {
        name: "eaao-oracle",
        dir: "crates/oracle",
        determinism: true,
        call_graph: true,
        net: false,
        fork_surface: true,
        float_det: true,
        concurrency: false,
    },
    CratePolicy {
        name: "eaao-campaign",
        dir: "crates/campaign",
        determinism: false,
        call_graph: true,
        net: false,
        fork_surface: true,
        float_det: false,
        concurrency: true,
    },
    CratePolicy {
        name: "eaao-obs",
        dir: "crates/obs",
        determinism: false,
        call_graph: true,
        net: false,
        fork_surface: false,
        float_det: false,
        concurrency: false,
    },
    CratePolicy {
        name: "eaao-bench",
        dir: "crates/bench",
        determinism: false,
        call_graph: false,
        net: false,
        fork_surface: false,
        float_det: false,
        concurrency: false,
    },
    CratePolicy {
        name: "eaao-tidy",
        dir: "crates/tidy",
        determinism: false,
        call_graph: false,
        net: false,
        fork_surface: false,
        float_det: false,
        concurrency: false,
    },
    CratePolicy {
        name: "eaao-serve",
        dir: "crates/serve",
        determinism: false,
        call_graph: true,
        net: true,
        fork_surface: false,
        float_det: false,
        concurrency: true,
    },
];

/// Files (workspace-relative, forward slashes) allowed to contain
/// `unsafe`. Currently empty: the workspace is 100% safe Rust, and any
/// future entry must pair with a `// SAFETY:` comment at each block.
pub const UNSAFE_ALLOWLIST: &[&str] = &[];

/// Looks up the policy row for a crate directory.
pub fn policy_for_dir(dir: &str) -> Option<&'static CratePolicy> {
    POLICIES.iter().find(|p| p.dir == dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_unique_and_lookup_works() {
        for (i, a) in POLICIES.iter().enumerate() {
            for b in &POLICIES[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate policy row");
                assert_ne!(a.dir, b.dir, "duplicate policy dir");
            }
        }
        assert!(policy_for_dir("crates/simcore").is_some_and(|p| p.determinism));
        assert!(policy_for_dir("crates/campaign").is_some_and(|p| !p.determinism));
        assert!(policy_for_dir("crates/unknown").is_none());
    }

    #[test]
    fn field_level_columns_cover_the_model_crates() {
        // float-determinism scans exactly the simulation-critical crates.
        for p in POLICIES {
            assert_eq!(
                p.float_det, p.determinism,
                "float_det drifted from determinism for {}",
                p.name
            );
            // Every float-det crate is also modelled by the field pass.
            assert!(
                !p.float_det || p.fork_surface,
                "{} has float_det without fork_surface",
                p.name
            );
        }
        // campaign tees worlds across trials: fork surface, but its
        // wall-clock timing math is not replayed.
        assert!(policy_for_dir("crates/campaign").is_some_and(|p| p.fork_surface && !p.float_det));
        assert!(policy_for_dir("crates/serve").is_some_and(|p| !p.fork_surface));
    }

    #[test]
    fn concurrency_covers_exactly_the_service_runtime() {
        for p in POLICIES {
            assert_eq!(
                p.concurrency,
                matches!(p.name, "eaao-serve" | "eaao-campaign"),
                "concurrency scope drifted for {}",
                p.name
            );
            // The panic-barrier half of thread-lifecycle needs call
            // edges, so every concurrency crate must feed the graph.
            assert!(
                !p.concurrency || p.call_graph,
                "{} has concurrency without call_graph",
                p.name
            );
        }
    }

    #[test]
    fn only_the_service_crate_may_open_sockets() {
        for p in POLICIES {
            assert_eq!(
                p.net,
                p.name == "eaao-serve",
                "net allowance drifted for {}",
                p.name
            );
        }
    }
}
