//! `eaao-tidy` — the workspace's determinism & hygiene static-analysis pass.
//!
//! Everything this reproduction claims rests on byte-identical determinism:
//! the differential oracle validates the placement/reaper/spill model by
//! byte-equal JSONL trajectories, and campaign results must be identical at
//! any `--jobs`. Tests enforce that contract *after the fact*; this crate
//! enforces it *at the source level*, in the style of rustc's `tidy` — a
//! dependency-free pass built on a masking lexer, which is exactly what a
//! hermetic, registry-free workspace can support.
//!
//! The pass has four layers. The **lexical** checks look at one masked
//! line at a time. The **semantic** checks parse every `src/` file into an
//! item-level model ([`parse`]), assemble a workspace call graph
//! ([`graph`]), and reason about what functions *reach*, not just what
//! they spell — so a wrapper in a host crate can no longer launder
//! `Instant::now()` into the simulation, and a `pub fn` three calls above
//! an `unwrap()` still owes its callers a `# Panics` section. The
//! **field-level** checks ([`fields`]) model the snapshot/branch fork
//! surface — which types flow through `clone`/`fork`/`branch`/`snapshot`,
//! and what each of their fields is made of — so a fork path that forgets
//! a field, an `Arc` lane written around `Arc::make_mut`, or a float
//! reduction outside the fixed-point lanes is a finding. The
//! **concurrency** checks model the service runtime's thread lifecycle —
//! spawn sites and the fate of each `JoinHandle`, queue constructions
//! with bounded/unbounded classification, swallowed `Result`s, and the
//! wire-protocol enums against the peers and docs that must track them —
//! so a detached worker, an unbounded daemon queue, or a frame the
//! server no longer handles is a finding.
//!
//! # Checks
//!
//! | check | layer | what it forbids |
//! |---|---|---|
//! | `determinism` | lexical | `HashMap`/`HashSet`, `SystemTime`/`Instant`, `std::env`, `std::fs`/`std::net`/`std::process`, and non-seeded RNG construction in simulation-critical crates |
//! | `unsafe-policy` | lexical | `unsafe` outside the allowlist (currently empty); allowlisted blocks must carry `// SAFETY:` |
//! | `crate-header` | lexical | a `lib.rs` missing the standard lint set, or an `#[allow(...)]` without a justification comment |
//! | `panic-policy` | lexical | `unwrap()` / `panic!` / `todo!` / `unimplemented!` in library code (`expect("invariant")` is the sanctioned form) |
//! | `net-policy` | lexical | `std::net` imports and socket types in any crate whose policy row lacks the `net` allowance (only `eaao-serve` has it) |
//! | `hermeticity` | lexical | registry or git dependencies in any `Cargo.toml` (workspace/`vendor/` path deps only) |
//! | `suppression` | lexical | malformed, unknown, or unused `tidy:allow` suppressions |
//! | `panic-reachability` | semantic | a public API that transitively reaches an undocumented panic source |
//! | `determinism-taint` | semantic | a simulation-critical function calling a host-crate function that transitively reaches a nondeterminism source |
//! | `lock-order` | semantic | cycles in the `Mutex` acquisition-order graph; locks held across calls into lock-taking functions |
//! | `fork-coverage` | field-level | a fork-surface type whose fork path does not decide every field's share-vs-detach fate (a `derive(Clone)` sharing an `Arc` field, or a fork body that never names a field) |
//! | `cow-aliasing` | field-level | writes to fork-surface `Arc` lanes that dodge `Arc::make_mut`; interior mutability inside a shared `Arc` or on a `Clone` fork-surface type |
//! | `float-determinism` | field-level | unordered float reductions, float `==`/`!=`, and truncating `as`-casts from floats in `float_det` crates |
//! | `thread-lifecycle` | concurrency | discarded or leaked `JoinHandle`s, and spawned workers that can die to an uncaught panic, in `concurrency` crates |
//! | `queue-bounds` | concurrency | queue constructions that neither fix a capacity nor name their bound in a `// bound: …` comment |
//! | `error-policy` | concurrency | `let _ =` / statement-`.ok()` discards and dropped `#[must_use]` results in service-crate library code |
//! | `wire-schema` | concurrency | protocol-enum variants unhandled by the peer or out of sync with the `docs/SERVICE.md` frame tables |
//! | `baseline` | meta | stale, duplicate, unjustified, or malformed `tidy-baseline.json` entries |
//!
//! The per-crate policy table lives in [`policy`]; which checks apply where
//! is data, not convention.
//!
//! # Suppressions and the baseline
//!
//! A finding is silenced inline with
//!
//! ```text
//! // tidy:allow(check-name) -- justification
//! ```
//!
//! A trailing comment covers its own line; a comment standing alone on a
//! line covers the next line. The justification is mandatory (a suppression
//! without one is itself a finding), the check name must exist, and a
//! suppression that no longer silences anything is reported as unused so
//! stale escapes cannot accumulate. For the semantic checks a suppression
//! on a function's signature line is also a propagation *barrier*.
//!
//! Semantic findings can alternatively be carried as known debt in
//! `tidy-baseline.json` ([`baseline`]) — a one-way ratchet: new findings
//! fail, fixed findings must be deleted, every entry needs a
//! justification. See `docs/STATIC_ANALYSIS.md` for when to suppress
//! inline versus baseline.
//!
//! # Running
//!
//! ```text
//! cargo run -p eaao-tidy                       # non-zero exit on any finding
//! cargo run -p eaao-tidy -- --json findings.json
//! cargo run -p eaao-tidy -- --write-baseline
//! cargo run -p eaao-tidy -- --list-checks      # registry: contract + scope per check
//! ```
//!
//! Diagnostics are `file:line: [check-name] message`, sorted by path, and
//! byte-identical across runs on the same tree. The same driver backs the
//! root CLI's `eaao tidy` subcommand.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod checks;
pub mod cli;
pub mod diag;
pub mod fields;
pub mod graph;
pub mod jsonio;
pub mod parse;
pub mod policy;
pub mod source;
pub mod walk;

pub use diag::{CheckId, Diagnostic};
pub use policy::{CratePolicy, FileKind, POLICIES};
pub use source::SourceFile;
pub use walk::{run_workspace, scan_workspace, ScanOutcome};
