//! `eaao-tidy` — the workspace's determinism & hygiene static-analysis pass.
//!
//! Everything this reproduction claims rests on byte-identical determinism:
//! the differential oracle validates the placement/reaper/spill model by
//! byte-equal JSONL trajectories, and campaign results must be identical at
//! any `--jobs`. Tests enforce that contract *after the fact*; this crate
//! enforces it *at the source level*, in the style of rustc's `tidy` — a
//! pure line/lexical pass with no parser dependencies, which is exactly
//! what a hermetic, registry-free workspace can support.
//!
//! # Checks
//!
//! | check | what it forbids |
//! |---|---|
//! | `determinism` | `HashMap`/`HashSet`, `SystemTime`/`Instant`, `std::env`, `std::fs`/`std::net`/`std::process`, and non-seeded RNG construction in simulation-critical crates |
//! | `unsafe-policy` | `unsafe` outside the allowlist (currently empty); allowlisted blocks must carry `// SAFETY:` |
//! | `crate-header` | a `lib.rs` missing the standard lint set, or an `#[allow(...)]` without a justification comment |
//! | `panic-policy` | `unwrap()` / `panic!` / `todo!` / `unimplemented!` in library code (`expect("invariant")` is the sanctioned form) |
//! | `hermeticity` | registry or git dependencies in any `Cargo.toml` (workspace/`vendor/` path deps only) |
//! | `suppression` | malformed, unknown, or unused `tidy:allow` suppressions |
//!
//! The per-crate policy table lives in [`policy`]; which checks apply where
//! is data, not convention.
//!
//! # Suppressions
//!
//! A finding is silenced inline with
//!
//! ```text
//! // tidy:allow(check-name) -- justification
//! ```
//!
//! A trailing comment covers its own line; a comment standing alone on a
//! line covers the next line. The justification is mandatory (a suppression
//! without one is itself a finding), the check name must exist, and a
//! suppression that no longer silences anything is reported as unused so
//! stale escapes cannot accumulate.
//!
//! # Running
//!
//! ```text
//! cargo run -p eaao-tidy          # non-zero exit on any finding
//! ```
//!
//! Diagnostics are `file:line: [check-name] message`, sorted by path. See
//! `docs/STATIC_ANALYSIS.md` for the full policy rationale.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checks;
pub mod diag;
pub mod policy;
pub mod source;
pub mod walk;

pub use diag::{CheckId, Diagnostic};
pub use policy::{CratePolicy, FileKind, POLICIES};
pub use source::SourceFile;
pub use walk::run_workspace;
