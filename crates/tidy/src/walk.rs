//! Workspace traversal and the scan pipeline.
//!
//! The walk is driven by the policy table, not by globbing: each
//! registered crate contributes its `src/`, `tests/`, `examples/`, and
//! `benches/` trees (with [`FileKind`] deciding which checks apply), and
//! every manifest — root, per-crate, and the vendor stand-ins — goes
//! through the hermeticity check. `vendor/` sources are third-party
//! stand-ins and are not style-checked; `tests/fixtures/` subtrees are the
//! analyzer's own known-bad corpus and are skipped by contract.
//!
//! The scan runs in phases over files that are each read and lexed
//! **once**:
//!
//! 1. lexical per-file checks collect raw findings,
//! 2. the item models of all `src/` files feed the workspace call graph,
//!    over which the semantic checks (panic-reachability,
//!    determinism-taint, lock-order) run — consulting and consuming
//!    inline suppressions through a [`SuppressionOracle`] — alongside
//!    the field-level checks and the concurrency-lifecycle checks
//!    (thread-lifecycle, queue-bounds, error-policy, wire-schema),
//! 3. suppressions are applied and accounted centrally, and
//! 4. surviving *semantic* findings pass through the baseline ratchet
//!    (`tidy-baseline.json`).
//!
//! Each phase is timed; `--timings` renders the breakdown so the
//! analysis' own runtime stays an explicit budget.

use std::fs;
use std::path::{Path, PathBuf};

use crate::baseline::{self, Baseline, BASELINE_FILE};
use crate::checks::{self, SuppressionOracle};
use crate::diag::{CheckId, Diagnostic};
use crate::fields::{self, FieldModel};
use crate::graph::{GraphInput, Workspace};
use crate::parse::FileModel;
use crate::policy::{policy_for_dir, CratePolicy, FileKind, POLICIES};
use crate::source::SourceFile;

/// The result of a full workspace scan.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Everything that fails the run: lexical findings, post-baseline
    /// semantic findings, suppression and baseline meta-findings. Sorted
    /// by (file, line, check) and deduplicated.
    pub findings: Vec<Diagnostic>,
    /// Semantic findings *before* baseline filtering (post-suppression),
    /// in the same sorted order — the input `--write-baseline` ratchets
    /// from.
    pub semantic: Vec<Diagnostic>,
    /// Wall-clock milliseconds per scan phase, in execution order — what
    /// `--timings` renders, and what the CI runtime-budget gate reads.
    pub timings: Vec<(&'static str, f64)>,
}

/// One scanned Rust file, read and lexed once for all phases.
struct FileCtx {
    rel: String,
    policy: &'static CratePolicy,
    kind: FileKind,
    src: SourceFile,
    used: Vec<bool>,
    raw: Vec<Diagnostic>,
}

/// Adapter giving the semantic checks suppression access across files.
struct WorkspaceSuppressions<'a> {
    files: &'a mut [FileCtx],
}

impl SuppressionOracle for WorkspaceSuppressions<'_> {
    fn suppressed(&mut self, file_idx: usize, line: usize, check: CheckId) -> bool {
        let ctx = &mut self.files[file_idx];
        ctx.src.is_suppressed(line, check, &mut ctx.used)
    }
}

/// Runs every check over the workspace rooted at `root` and returns the
/// findings sorted by file, line, and check.
pub fn run_workspace(root: &Path) -> Vec<Diagnostic> {
    scan_workspace(root).findings
}

/// Runs the full scan pipeline; see the module docs for the phases.
pub fn scan_workspace(root: &Path) -> ScanOutcome {
    let mut findings: Vec<Diagnostic> = Vec::new();
    let mut files: Vec<FileCtx> = Vec::new();
    let mut timings: Vec<(&'static str, f64)> = Vec::new();
    let mut mark = std::time::Instant::now();
    let mut lap = |label: &'static str, timings: &mut Vec<(&'static str, f64)>| {
        let now = std::time::Instant::now();
        timings.push((label, (now - mark).as_secs_f64() * 1e3));
        mark = now;
    };

    // Read + lex every file once.
    for policy in POLICIES {
        collect_crate(root, policy, &mut files, &mut findings);
    }
    lap("read+lex", &mut timings);

    // Phase 1: lexical checks, raw findings per file.
    for ctx in &mut files {
        checks::lexical_checks(ctx.policy, ctx.kind, &ctx.rel, &ctx.src, &mut ctx.raw);
    }
    lap("lexical", &mut timings);

    // Phase 2: the call graph and the semantic checks. Only `src/` files
    // of graph-participating crates contribute (tests/examples/benches
    // are not part of any API surface; see `CratePolicy::call_graph`).
    let models: Vec<(usize, FileModel)> = files
        .iter()
        .enumerate()
        .filter(|(_, ctx)| ctx.kind == FileKind::LibSrc && ctx.policy.call_graph)
        .map(|(idx, ctx)| (idx, FileModel::parse(&ctx.rel, &ctx.src)))
        .collect();
    let inputs: Vec<GraphInput<'_>> = models
        .iter()
        .map(|(idx, model)| GraphInput {
            rel: &files[*idx].rel,
            file_idx: *idx,
            policy: files[*idx].policy,
            model,
        })
        .collect();
    let ws = Workspace::build(&inputs);
    drop(inputs);
    lap("model+graph", &mut timings);

    // Phase 2b: the field-level model and checks (fork-coverage,
    // cow-aliasing, float-determinism) plus the concurrency-lifecycle
    // checks (thread-lifecycle, queue-bounds, error-policy, wire-schema)
    // over the same parsed models. Raw pairs are collected while `files`
    // is still borrowed immutably; the suppression oracle (which needs
    // `&mut files`) filters them below.
    let mut field_raw: Vec<(usize, Diagnostic)> = Vec::new();
    {
        let field_inputs: Vec<fields::FileInput<'_>> = models
            .iter()
            .map(|(idx, model)| fields::FileInput {
                rel: &files[*idx].rel,
                file_idx: *idx,
                policy: files[*idx].policy,
                src: &files[*idx].src,
                model,
            })
            .collect();
        let fm = FieldModel::build(&field_inputs);
        checks::fork_cov::check(&fm, &mut field_raw);
        checks::cow::check(&fm, &field_inputs, &mut field_raw);
        for input in &field_inputs {
            if input.policy.float_det {
                checks::float_det::check(input, &mut field_raw);
            }
        }
        checks::threads::check(&ws, &mut field_raw);
        checks::queues::check(&ws, &mut field_raw);
        checks::error_policy::check(&ws, &field_inputs, &mut field_raw);
        let service_doc = fs::read_to_string(root.join("docs/SERVICE.md")).ok();
        checks::wire::check(&field_inputs, service_doc.as_deref(), &mut field_raw);
    }
    lap("field+concurrency", &mut timings);

    let mut semantic: Vec<Diagnostic> = Vec::new();
    {
        let mut oracle = WorkspaceSuppressions { files: &mut files };
        checks::panic_reach::check(&ws, &mut oracle, &mut semantic);
        checks::taint::check(&ws, &mut oracle, &mut semantic);
        checks::lock_order::check(&ws, &mut oracle, &mut semantic);
        for (file_idx, diag) in field_raw {
            if !oracle.suppressed(file_idx, diag.line, diag.check) {
                semantic.push(diag);
            }
        }
    }
    sort_diags(&mut semantic);
    semantic.dedup();
    lap("semantic", &mut timings);

    // Phase 3: apply + account suppressions for the lexical findings.
    // (Semantic findings consulted the oracle when they were emitted.)
    for ctx in &mut files {
        let raw = std::mem::take(&mut ctx.raw);
        checks::filter_suppressed(&ctx.src, raw, &mut ctx.used, &mut findings);
        checks::account_suppressions(&ctx.rel, &ctx.src, &ctx.used, &mut findings);
    }

    // Phase 4: the baseline ratchet over the semantic findings.
    let (surviving, meta) = match load_baseline(root) {
        Ok(b) => baseline::apply(&b, semantic.clone()),
        Err(d) => (semantic.clone(), vec![d]),
    };
    findings.extend(surviving);
    findings.extend(meta);

    check_manifests(root, &mut findings);
    check_registration(root, &mut findings);
    sort_diags(&mut findings);
    findings.dedup();
    lap("suppress+baseline", &mut timings);
    ScanOutcome {
        findings,
        semantic,
        timings,
    }
}

/// Loads and parses `tidy-baseline.json`; a missing file is an empty
/// baseline, an unreadable or malformed one is a finding.
pub fn load_baseline(root: &Path) -> Result<Baseline, Diagnostic> {
    let path = root.join(BASELINE_FILE);
    if !path.is_file() {
        return Ok(Baseline::default());
    }
    match fs::read_to_string(&path) {
        Ok(text) => Baseline::parse(&text).map_err(|err| {
            Diagnostic::new(
                BASELINE_FILE,
                1,
                CheckId::Baseline,
                format!("cannot parse baseline: {err}"),
            )
        }),
        Err(err) => Err(Diagnostic::new(
            BASELINE_FILE,
            1,
            CheckId::Baseline,
            format!("cannot read baseline: {err}"),
        )),
    }
}

fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.check.name(), a.symbol.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.check.name(),
            b.symbol.as_str(),
        ))
    });
}

fn collect_crate(
    root: &Path,
    policy: &'static CratePolicy,
    files: &mut Vec<FileCtx>,
    findings: &mut Vec<Diagnostic>,
) {
    const SUBDIRS: &[(&str, FileKind)] = &[
        ("src", FileKind::LibSrc),
        ("tests", FileKind::Tests),
        ("examples", FileKind::Examples),
        ("benches", FileKind::Benches),
    ];
    let crate_root = root.join(policy.dir);
    for &(subdir, kind) in SUBDIRS {
        let dir = crate_root.join(subdir);
        if !dir.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        collect_rs(&dir, &mut paths);
        paths.sort();
        for path in paths {
            let rel = rel_path(root, &path);
            match fs::read_to_string(&path) {
                Ok(text) => {
                    let src = SourceFile::parse(&text);
                    let used = vec![false; src.suppressions.len()];
                    files.push(FileCtx {
                        rel,
                        policy,
                        kind,
                        src,
                        used,
                        raw: Vec::new(),
                    });
                }
                Err(err) => findings.push(Diagnostic::new(
                    &rel,
                    1,
                    CheckId::CrateHeader,
                    format!("cannot read source file: {err}"),
                )),
            }
        }
    }
}

/// Recursively collects `.rs` files, skipping `fixtures/` subtrees (the
/// analyzer's deliberately-bad test corpus).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn check_manifests(root: &Path, diags: &mut Vec<Diagnostic>) {
    // A policy row whose crate directory is absent contributes nothing:
    // fixture mini-workspaces legitimately materialize only a couple of
    // the registered crates. (A *present* crate with an unreadable
    // manifest is still a finding.)
    let mut manifests: Vec<PathBuf> = POLICIES
        .iter()
        .filter(|p| p.dir.is_empty() || root.join(p.dir).is_dir())
        .map(|p| root.join(p.dir).join("Cargo.toml"))
        .collect();
    if let Ok(entries) = fs::read_dir(root.join("vendor")) {
        let mut vendor: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path().join("Cargo.toml"))
            .filter(|p| p.is_file())
            .collect();
        vendor.sort();
        manifests.extend(vendor);
    }
    for path in manifests {
        let rel = rel_path(root, &path);
        match fs::read_to_string(&path) {
            Ok(text) => checks::hermeticity::check(&rel, &text, diags),
            Err(err) => diags.push(Diagnostic::new(
                &rel,
                1,
                CheckId::Hermeticity,
                format!("cannot read manifest: {err}"),
            )),
        }
    }
}

/// Every directory under `crates/` must have a row in the policy table —
/// adding a crate forces an explicit decision about its rules.
fn check_registration(root: &Path, diags: &mut Vec<Diagnostic>) {
    let Ok(entries) = fs::read_dir(root.join("crates")) else {
        return;
    };
    let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    dirs.sort();
    for dir in dirs.into_iter().filter(|d| d.is_dir()) {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if policy_for_dir(&format!("crates/{name}")).is_none() {
            diags.push(Diagnostic::new(
                &format!("crates/{name}/Cargo.toml"),
                1,
                CheckId::CrateHeader,
                format!(
                    "crate `{name}` is not registered in eaao-tidy's policy \
                     table (crates/tidy/src/policy.rs); every workspace crate \
                     must declare which checks it lives under"
                ),
            ));
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
