//! Workspace traversal: which files are scanned, under which policy.
//!
//! The walk is driven by the policy table, not by globbing: each
//! registered crate contributes its `src/`, `tests/`, `examples/`, and
//! `benches/` trees (with [`FileKind`] deciding which checks apply), and
//! every manifest — root, per-crate, and the vendor stand-ins — goes
//! through the hermeticity check. `vendor/` sources are third-party
//! stand-ins and are not style-checked; `tests/fixtures/` subtrees are the
//! analyzer's own known-bad corpus and are skipped by contract.

use std::fs;
use std::path::{Path, PathBuf};

use crate::checks;
use crate::diag::{CheckId, Diagnostic};
use crate::policy::{policy_for_dir, CratePolicy, FileKind, POLICIES};

/// Runs every check over the workspace rooted at `root` and returns the
/// findings sorted by file, line, and check.
pub fn run_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for policy in POLICIES {
        check_crate(root, policy, &mut diags);
    }
    check_manifests(root, &mut diags);
    check_registration(root, &mut diags);
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.check.name()).cmp(&(b.file.as_str(), b.line, b.check.name()))
    });
    diags.dedup();
    diags
}

fn check_crate(root: &Path, policy: &CratePolicy, diags: &mut Vec<Diagnostic>) {
    const SUBDIRS: &[(&str, FileKind)] = &[
        ("src", FileKind::LibSrc),
        ("tests", FileKind::Tests),
        ("examples", FileKind::Examples),
        ("benches", FileKind::Benches),
    ];
    let crate_root = root.join(policy.dir);
    for &(subdir, kind) in SUBDIRS {
        let dir = crate_root.join(subdir);
        if !dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs(&dir, &mut files);
        files.sort();
        for path in files {
            let rel = rel_path(root, &path);
            match fs::read_to_string(&path) {
                Ok(text) => checks::check_rust_file(policy, kind, &rel, &text, diags),
                Err(err) => diags.push(Diagnostic::new(
                    &rel,
                    1,
                    CheckId::CrateHeader,
                    format!("cannot read source file: {err}"),
                )),
            }
        }
    }
}

/// Recursively collects `.rs` files, skipping `fixtures/` subtrees (the
/// analyzer's deliberately-bad test corpus).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn check_manifests(root: &Path, diags: &mut Vec<Diagnostic>) {
    let mut manifests: Vec<PathBuf> = POLICIES
        .iter()
        .map(|p| root.join(p.dir).join("Cargo.toml"))
        .collect();
    if let Ok(entries) = fs::read_dir(root.join("vendor")) {
        let mut vendor: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path().join("Cargo.toml"))
            .filter(|p| p.is_file())
            .collect();
        vendor.sort();
        manifests.extend(vendor);
    }
    for path in manifests {
        let rel = rel_path(root, &path);
        match fs::read_to_string(&path) {
            Ok(text) => checks::hermeticity::check(&rel, &text, diags),
            Err(err) => diags.push(Diagnostic::new(
                &rel,
                1,
                CheckId::Hermeticity,
                format!("cannot read manifest: {err}"),
            )),
        }
    }
}

/// Every directory under `crates/` must have a row in the policy table —
/// adding a crate forces an explicit decision about its rules.
fn check_registration(root: &Path, diags: &mut Vec<Diagnostic>) {
    let Ok(entries) = fs::read_dir(root.join("crates")) else {
        return;
    };
    let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    dirs.sort();
    for dir in dirs.into_iter().filter(|d| d.is_dir()) {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if policy_for_dir(&format!("crates/{name}")).is_none() {
            diags.push(Diagnostic::new(
                &format!("crates/{name}/Cargo.toml"),
                1,
                CheckId::CrateHeader,
                format!(
                    "crate `{name}` is not registered in eaao-tidy's policy \
                     table (crates/tidy/src/policy.rs); every workspace crate \
                     must declare which checks it lives under"
                ),
            ));
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
