//! `eaao-tidy` CLI: scan the workspace, print findings, exit non-zero on
//! any.
//!
//! ```text
//! cargo run -p eaao-tidy            # scan the enclosing workspace
//! cargo run -p eaao-tidy -- --root PATH
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use eaao_tidy::run_workspace;

fn main() -> ExitCode {
    let root = match parse_root() {
        Ok(root) => root,
        Err(msg) => {
            eprintln!("eaao-tidy: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let diags = run_workspace(&root);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("eaao-tidy: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "eaao-tidy: {} finding(s); see docs/STATIC_ANALYSIS.md for the \
             policy and the `// tidy:allow(check) -- why` suppression syntax",
            diags.len()
        );
        ExitCode::FAILURE
    }
}

/// `--root PATH` if given, else the workspace that built this binary
/// (`CARGO_MANIFEST_DIR/../..`), else the current directory.
fn parse_root() -> Result<PathBuf, String> {
    let mut args = std::env::args().skip(1);
    if let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let path = args.next().ok_or("--root needs a path")?;
                if let Some(extra) = args.next() {
                    return Err(format!("unexpected argument `{extra}`"));
                }
                return Ok(PathBuf::from(path));
            }
            "--help" | "-h" => {
                println!("usage: eaao-tidy [--root WORKSPACE_DIR]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if let Some(manifest_dir) = std::env::var_os("CARGO_MANIFEST_DIR") {
        let dir = PathBuf::from(manifest_dir);
        if let Some(root) = dir.ancestors().nth(2) {
            if root.join("Cargo.toml").is_file() {
                return Ok(root.to_path_buf());
            }
        }
    }
    Ok(PathBuf::from("."))
}
