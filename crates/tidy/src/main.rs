//! `eaao-tidy` binary: scan the workspace, print findings, exit non-zero
//! on any.
//!
//! ```text
//! cargo run -p eaao-tidy                       # scan the enclosing workspace
//! cargo run -p eaao-tidy -- --root PATH
//! cargo run -p eaao-tidy -- --json findings.json
//! cargo run -p eaao-tidy -- --write-baseline   # ratchet current semantic debt
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(eaao_tidy::cli::run(&args))
}
