//! The `eaao-tidy` command-line driver, shared by the standalone binary
//! and the root `eaao tidy` subcommand.
//!
//! ```text
//! eaao-tidy [--root DIR] [--json PATH] [--write-baseline] [--list-checks]
//!           [--timings]
//! ```
//!
//! * `--json PATH` additionally writes the findings as a machine-readable
//!   JSON document (`-` for stdout). The document is byte-identical
//!   across runs on the same tree.
//! * `--timings` prints a per-phase wall-clock breakdown after the scan,
//!   so the analysis' own runtime stays an explicit budget (the CI smoke
//!   step gates on the total).
//! * `--write-baseline` rewrites `tidy-baseline.json` so the current
//!   semantic findings are accepted as known debt, carrying over
//!   justifications for keys that already had them. New entries get an
//!   empty justification, which is itself a finding until a human fills
//!   it in — accepting debt takes two deliberate steps.
//! * `--list-checks` prints every registered check with its one-line
//!   contract and policy scope, straight from the registry the scanner
//!   runs — the listing cannot drift from the implementation.

use std::fs;
use std::path::PathBuf;

use crate::baseline::{self, BASELINE_FILE};
use crate::diag::{Diagnostic, CHECK_REGISTRY};
use crate::jsonio;
use crate::walk;

/// Parsed command line.
#[derive(Debug, Default)]
struct Options {
    root: Option<PathBuf>,
    json: Option<String>,
    write_baseline: bool,
    list_checks: bool,
    timings: bool,
}

const USAGE: &str = "usage: eaao-tidy [--root WORKSPACE_DIR] [--json PATH|-] [--write-baseline] \
     [--list-checks] [--timings]";

/// Runs the CLI on already-split arguments (exclusive of the program
/// name). Returns the process exit code: 0 clean, 1 findings, 2 usage
/// error.
pub fn run(args: &[String]) -> u8 {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(path) => opts.root = Some(PathBuf::from(path)),
                None => return usage_error("--root needs a path"),
            },
            "--json" => match it.next() {
                Some(path) => opts.json = Some(path.clone()),
                None => return usage_error("--json needs a path (or `-` for stdout)"),
            },
            "--write-baseline" => opts.write_baseline = true,
            "--list-checks" => opts.list_checks = true,
            "--timings" => opts.timings = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if opts.list_checks {
        print!("{}", render_check_list());
        return 0;
    }
    let root = opts.root.unwrap_or_else(default_root);

    let outcome = walk::scan_workspace(&root);

    if opts.write_baseline {
        let previous = walk::load_baseline(&root).unwrap_or_default();
        let next = baseline::rebuild(&previous, &outcome.semantic);
        let holes = next
            .entries
            .iter()
            .filter(|e| e.justification.trim().is_empty())
            .count();
        if let Err(err) = fs::write(root.join(BASELINE_FILE), next.render()) {
            eprintln!("eaao-tidy: cannot write {BASELINE_FILE}: {err}");
            return 2;
        }
        println!(
            "eaao-tidy: wrote {BASELINE_FILE} with {} entr{} ({holes} missing a \
             justification — fill those in before committing)",
            next.entries.len(),
            if next.entries.len() == 1 { "y" } else { "ies" },
        );
        return 0;
    }

    for d in &outcome.findings {
        println!("{d}");
    }
    if opts.timings {
        print!("{}", render_timings(&outcome.timings));
    }
    if let Some(path) = &opts.json {
        let doc = render_json(&outcome.findings);
        if path == "-" {
            print!("{doc}");
        } else if let Err(err) = fs::write(path, doc) {
            eprintln!("eaao-tidy: cannot write {path}: {err}");
            return 2;
        }
    }
    if outcome.findings.is_empty() {
        println!("eaao-tidy: clean");
        0
    } else {
        eprintln!(
            "eaao-tidy: {} finding(s); see docs/STATIC_ANALYSIS.md for the \
             policy, the `// tidy:allow(check) -- why` suppression syntax, \
             and the {BASELINE_FILE} ratchet",
            outcome.findings.len()
        );
        1
    }
}

/// Renders the `--list-checks` table: one line per registered check with
/// its layer, contract, and policy scope, straight from [`CHECK_REGISTRY`].
pub fn render_check_list() -> String {
    let width = CHECK_REGISTRY
        .iter()
        .map(|info| info.check.name().len())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for info in CHECK_REGISTRY {
        out.push_str(&format!(
            "{:width$}  [{}] {}\n{:width$}  scope: {}\n",
            info.check.name(),
            info.layer,
            info.contract,
            "",
            info.scope,
        ));
    }
    out
}

/// Renders the `--timings` breakdown: one line per scan phase plus the
/// total, in milliseconds. The `total-ms` line is the machine-readable
/// hook the CI runtime-budget gate greps for.
pub fn render_timings(timings: &[(&'static str, f64)]) -> String {
    let width = timings
        .iter()
        .map(|(label, _)| label.len())
        .max()
        .unwrap_or(0)
        .max("total-ms".len());
    let mut out = String::from("eaao-tidy timings:\n");
    let mut total = 0.0;
    for (label, ms) in timings {
        total += ms;
        out.push_str(&format!("  {label:width$}  {ms:9.2}\n"));
    }
    out.push_str(&format!("  {:width$}  {total:9.2}\n", "total-ms"));
    out
}

/// Renders the findings document: a stable, versioned JSON array sorted
/// the same way the text output is.
pub fn render_json(findings: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, d) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\n      \"file\": {},\n      \"line\": {},\n      \"check\": {},\n      \
             \"symbol\": {},\n      \"message\": {}\n    }}",
            jsonio::quote(&d.file),
            d.line,
            jsonio::quote(d.check.name()),
            jsonio::quote(&d.symbol),
            jsonio::quote(&d.message),
        ));
    }
    if findings.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

fn usage_error(msg: &str) -> u8 {
    eprintln!("eaao-tidy: {msg}");
    eprintln!("{USAGE}");
    2
}

/// The workspace that built this binary (`CARGO_MANIFEST_DIR`'s
/// grandparent when that looks like a workspace), else the current
/// directory.
fn default_root() -> PathBuf {
    if let Some(manifest_dir) = std::env::var_os("CARGO_MANIFEST_DIR") {
        let dir = PathBuf::from(manifest_dir);
        for up in dir.ancestors().skip(1) {
            if up.join("Cargo.toml").is_file() && up.join("crates").is_dir() {
                return up.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::CheckId;

    #[test]
    fn json_document_shape_is_stable() {
        let findings = vec![
            Diagnostic::new("a.rs", 3, CheckId::Determinism, "msg \"quoted\""),
            Diagnostic::new("b.rs", 7, CheckId::LockOrder, "cycle").with_symbol("x -> y -> x"),
        ];
        let doc = render_json(&findings);
        let parsed = jsonio::parse(&doc).expect("valid JSON");
        let Some(jsonio::Json::Arr(items)) = parsed.get("findings") else {
            panic!("findings array missing");
        };
        assert_eq!(items.len(), 2);
        assert_eq!(
            items[0].get("file").and_then(jsonio::Json::as_str),
            Some("a.rs")
        );
        assert_eq!(
            items[1].get("symbol").and_then(jsonio::Json::as_str),
            Some("x -> y -> x")
        );
        assert_eq!(render_json(&findings), doc, "byte-stable");
    }

    #[test]
    fn check_list_names_every_registered_check_once() {
        let listing = render_check_list();
        for info in CHECK_REGISTRY {
            let headers = listing
                .lines()
                .filter(|l| {
                    l.starts_with(&format!("{} ", info.check.name()))
                        && l.contains(&format!("[{}]", info.layer))
                })
                .count();
            assert_eq!(
                headers,
                1,
                "check `{}` must appear exactly once in --list-checks",
                info.check.name()
            );
            assert!(
                listing.contains(info.contract),
                "contract for `{}` missing from --list-checks",
                info.check.name()
            );
            assert!(
                listing.contains(info.scope),
                "scope for `{}` missing from --list-checks",
                info.check.name()
            );
        }
        assert_eq!(render_check_list(), listing, "byte-stable");
    }

    #[test]
    fn empty_findings_render_an_empty_array() {
        let doc = render_json(&[]);
        let parsed = jsonio::parse(&doc).expect("valid JSON");
        assert_eq!(parsed.get("findings"), Some(&jsonio::Json::Arr(Vec::new())));
    }
}
