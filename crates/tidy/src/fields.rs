//! Field-level workspace model: the struct/field layer under the
//! `fork-coverage`, `cow-aliasing`, and `float-determinism` checks.
//!
//! The call graph ([`crate::graph`]) reasons about what functions *reach*;
//! this model reasons about what types *carry*. It collects every
//! `struct`/`enum` definition in the fork-surface crates (the
//! [`CratePolicy::fork_surface`] policy column), classifies each field's
//! declared type (`Arc`-shared, interior-mutable, float), attaches the
//! fork-path functions (`clone`/`fork`/`branch`/`snapshot` impls), and
//! computes the **fork surface**: the transitive closure of types that
//! participate in the snapshot/branch contract.
//!
//! A type is in the fork surface if it has an inherent `fork`, `branch`,
//! or `snapshot` function, or if it is (transitively) named in a field —
//! or a generic-parameter default, an enum-variant payload, or an
//! associated-type binding (`type Sampler = FenwickSampler;`) of an
//! `impl` for a type — that does. `World` roots the closure; `SimClock`
//! and `DataCenter` are pulled in through its fields, `OptimizedEngine`
//! through the header default `E: Engine = OptimizedEngine`, and
//! `FenwickSampler` / `IncrementalCapacity` through the engine's
//! associated types — so the checks see exactly the structs a
//! `World::branch()` shares, even when the world only names them as
//! `E::Sampler`.

use std::collections::BTreeMap;

use crate::parse::{FileModel, FnItem, StructItem, TypeDefKind};
use crate::policy::CratePolicy;
use crate::source::SourceFile;

/// Function names that constitute the fork path of a type. `clone` is
/// included because `Clone` *is* the sharing half of the snapshot
/// contract (`SimClock`: Clone shares, `fork` detaches).
pub const FORK_FN_NAMES: &[&str] = &["branch", "clone", "fork", "snapshot"];

/// The names that make a type a fork-surface *root* (having `clone` alone
/// does not opt a type into the surface — everything is `Clone`).
pub const FORK_ROOT_NAMES: &[&str] = &["branch", "fork", "snapshot"];

/// Interior-mutability wrapper tokens, matched with identifier
/// boundaries (`OnceCell` does not match `Cell`).
pub const INTERIOR_TOKENS: &[&str] = &[
    "AtomicBool",
    "AtomicI64",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "Cell",
    "Mutex",
    "OnceCell",
    "OnceLock",
    "RefCell",
    "RwLock",
    "UnsafeCell",
];

/// One file's worth of input to the field model (and to the per-file
/// `float-determinism` scan): the lexed source and the item model of a
/// `src/` file, tagged with its crate policy.
#[derive(Debug, Clone, Copy)]
pub struct FileInput<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Index into the driver's file table (for the suppression oracle).
    pub file_idx: usize,
    /// The crate's policy row.
    pub policy: &'static CratePolicy,
    /// The lexed source (masked lines).
    pub src: &'a SourceFile,
    /// The parsed item model.
    pub model: &'a FileModel,
}

/// How a field's declared type participates in sharing.
#[derive(Debug, Clone, Copy, Default)]
pub struct FieldClass {
    /// The type text names `Arc` — cloning shares the pointee.
    pub arc: bool,
    /// The first interior-mutability wrapper token found, if any.
    pub interior: Option<&'static str>,
    /// The interior wrapper sits *inside* the `Arc` (`Arc<Mutex<T>>`):
    /// writes through it are visible to every clone.
    pub interior_in_arc: bool,
}

/// Classifies a field's declared type text.
pub fn classify(ty: &str) -> FieldClass {
    let arc_at = crate::checks::find_token(ty, "Arc");
    let mut interior = None;
    let mut interior_at = usize::MAX;
    for &token in INTERIOR_TOKENS {
        if let Some(at) = crate::checks::find_token(ty, token) {
            if at < interior_at {
                interior_at = at;
                interior = Some(token);
            }
        }
    }
    FieldClass {
        arc: arc_at.is_some(),
        interior,
        interior_in_arc: matches!((arc_at, interior), (Some(a), Some(_)) if a < interior_at),
    }
}

/// One workspace type with everything the field-level checks need.
#[derive(Debug, Clone)]
pub struct TypeRecord {
    /// File the definition lives in (workspace-relative).
    pub rel: String,
    /// Index of that file in the driver's table.
    pub file_idx: usize,
    /// The crate's policy row.
    pub policy: &'static CratePolicy,
    /// The parsed definition (name, line, fields, derives, header).
    pub def: StructItem,
    /// `clone`/`fork`/`branch`/`snapshot` items whose `impl` names this
    /// type, from any file of the same crate.
    pub fork_fns: Vec<FnItem>,
    /// Whether the type is `Clone` (derived or via a manual `clone` fn).
    pub is_clone: bool,
    /// Whether the type is in the fork surface (root or transitive).
    pub fork_surface: bool,
}

impl TypeRecord {
    /// Whether the type derives `Clone` (as opposed to a manual impl).
    pub fn derives_clone(&self) -> bool {
        self.def.derives.iter().any(|d| d == "Clone")
    }
}

/// The workspace field-level model.
#[derive(Debug, Clone, Default)]
pub struct FieldModel {
    /// Every type defined in a fork-surface crate, in deterministic
    /// (crate dir, name, file, line) order.
    pub types: Vec<TypeRecord>,
}

impl FieldModel {
    /// Builds the model from the parsed `src/` files of fork-surface
    /// crates (other inputs are ignored).
    pub fn build(inputs: &[FileInput<'_>]) -> FieldModel {
        // (crate dir, type name) -> index. Re-declarations (e.g. the same
        // name behind mutually exclusive cfgs) keep the first definition.
        let mut index: BTreeMap<(&'static str, String), usize> = BTreeMap::new();
        let mut types: Vec<TypeRecord> = Vec::new();
        let mut sorted: Vec<&FileInput<'_>> =
            inputs.iter().filter(|f| f.policy.fork_surface).collect();
        sorted.sort_by_key(|f| f.rel);
        for input in &sorted {
            for def in &input.model.structs {
                let key = (input.policy.dir, def.name.clone());
                if index.contains_key(&key) {
                    continue;
                }
                index.insert(key, types.len());
                types.push(TypeRecord {
                    rel: input.rel.to_owned(),
                    file_idx: input.file_idx,
                    policy: input.policy,
                    def: def.clone(),
                    fork_fns: Vec::new(),
                    is_clone: false,
                    fork_surface: false,
                });
            }
        }
        // Attach fork-path fns (same crate, impl type name matches).
        for input in &sorted {
            for f in &input.model.fns {
                if !f.has_body || !FORK_FN_NAMES.contains(&f.name.as_str()) {
                    continue;
                }
                let Some(ty) = &f.type_ctx else { continue };
                if let Some(&idx) = index.get(&(input.policy.dir, ty.clone())) {
                    types[idx].fork_fns.push(f.clone());
                }
            }
        }
        for t in &mut types {
            t.is_clone = t.derives_clone() || t.fork_fns.iter().any(|f| f.name == "clone");
        }
        // Fork-surface closure: roots have an inherent fork/branch/
        // snapshot; membership propagates into every workspace type named
        // in a member's field types, enum-variant payloads,
        // generic-parameter defaults, or associated-type bindings of an
        // `impl` for a member (`impl Engine for OptimizedEngine { type
        // Sampler = FenwickSampler; }` carries the surface from the
        // engine to the concrete sampler a `World<E>` field only spells
        // as `E::Sampler`).
        let names: Vec<String> = types.iter().map(|t| t.def.name.clone()).collect();
        // (owner index, bound type text) for every associated-type
        // binding whose owner is a workspace type of the same crate.
        let assoc: Vec<(usize, String)> = sorted
            .iter()
            .flat_map(|input| {
                input.model.assoc_types.iter().filter_map(|a| {
                    index
                        .get(&(input.policy.dir, a.owner.clone()))
                        .map(|&idx| (idx, a.ty.clone()))
                })
            })
            .collect();
        let mut surface: Vec<bool> = types
            .iter()
            .map(|t| {
                t.fork_fns
                    .iter()
                    .any(|f| FORK_ROOT_NAMES.contains(&f.name.as_str()))
            })
            .collect();
        loop {
            let mut changed = false;
            for i in 0..types.len() {
                if !surface[i] {
                    continue;
                }
                let mention = |text: &str, surface: &mut Vec<bool>, changed: &mut bool| {
                    for (j, name) in names.iter().enumerate() {
                        if !surface[j] && crate::checks::find_token(text, name).is_some() {
                            surface[j] = true;
                            *changed = true;
                        }
                    }
                };
                let header = types[i].def.header.clone();
                mention(&header, &mut surface, &mut changed);
                let fields: Vec<String> =
                    types[i].def.fields.iter().map(|f| f.ty.clone()).collect();
                for ty in &fields {
                    mention(ty, &mut surface, &mut changed);
                }
            }
            for (owner, ty) in &assoc {
                if !surface[*owner] {
                    continue;
                }
                for (j, name) in names.iter().enumerate() {
                    if !surface[j] && crate::checks::find_token(ty, name).is_some() {
                        surface[j] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for (t, s) in types.iter_mut().zip(surface) {
            t.fork_surface = s;
        }
        FieldModel { types }
    }

    /// The fork-surface types, in model order.
    pub fn fork_surface(&self) -> impl Iterator<Item = &TypeRecord> {
        self.types.iter().filter(|t| t.fork_surface)
    }
}

/// Whether a fork-path fn's return type re-produces the type itself —
/// only those fns owe per-field coverage (`World::snapshot` returns
/// `WorldSnapshot`, so it answers for *that* type's fields, not
/// `World`'s).
pub fn returns_self(f: &FnItem, type_name: &str) -> bool {
    crate::checks::find_token(&f.ret, "Self").is_some()
        || crate::checks::find_token(&f.ret, type_name).is_some()
}

/// Whether `def` is a braced definition with named fields or variants
/// (unit and tuple structs have nothing to cover).
pub fn has_named_fields(def: &StructItem) -> bool {
    !def.fields.is_empty() || def.kind == TypeDefKind::Enum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::FileModel;
    use crate::policy::policy_for_dir;
    use crate::source::SourceFile;

    fn build(files: &[(&str, &str, &str)]) -> FieldModel {
        let parsed: Vec<(&str, &'static CratePolicy, SourceFile)> = files
            .iter()
            .map(|(dir, rel, text)| {
                (
                    *rel,
                    policy_for_dir(dir).expect("registered dir"),
                    SourceFile::parse(text),
                )
            })
            .collect();
        let models: Vec<FileModel> = parsed
            .iter()
            .map(|(rel, _, src)| FileModel::parse(rel, src))
            .collect();
        let inputs: Vec<FileInput<'_>> = parsed
            .iter()
            .zip(&models)
            .enumerate()
            .map(|(i, ((rel, policy, src), model))| FileInput {
                rel,
                file_idx: i,
                policy,
                src,
                model,
            })
            .collect();
        FieldModel::build(&inputs)
    }

    #[test]
    fn classification_distinguishes_arc_orderings() {
        let c = classify("Arc<Mutex<SimTime>>");
        assert!(c.arc && c.interior == Some("Mutex") && c.interior_in_arc);
        let c = classify("Vec<OnceCell<Arc<Shard>>>");
        assert!(c.arc && c.interior == Some("OnceCell") && !c.interior_in_arc);
        let c = classify("Arc<Vec<u64>>");
        assert!(c.arc && c.interior.is_none());
        let c = classify("BTreeMap<String, u64>");
        assert!(!c.arc && c.interior.is_none());
        // Token boundaries: `OnceCell` is not `Cell`.
        assert_eq!(classify("OnceCell<u64>").interior, Some("OnceCell"));
    }

    #[test]
    fn fork_surface_closes_over_fields_and_defaults() {
        let fm = build(&[(
            "crates/orchestrator",
            "crates/orchestrator/src/lib.rs",
            "pub struct World<P = AnyPolicy> {\n    clock: Clock,\n    idle: u64,\n}\n\
             impl World {\n    pub fn branch(&self) -> Self {\n        self.clone()\n    }\n}\n\
             pub struct Clock {\n    now: Arc<Mutex<u64>>,\n}\n\
             pub enum AnyPolicy {\n    Fixed(FixedPolicy),\n}\n\
             pub struct FixedPolicy {\n    pop: Arc<Vec<u64>>,\n}\n\
             pub struct Unrelated {\n    x: u64,\n}\n",
        )]);
        let surface: Vec<&str> = fm.fork_surface().map(|t| t.def.name.as_str()).collect();
        assert_eq!(surface, vec!["World", "Clock", "AnyPolicy", "FixedPolicy"]);
    }

    #[test]
    fn fork_surface_follows_associated_type_bindings() {
        // World names the engine only through a header default and its
        // fields only as `E::Sampler`; the sampler must still join the
        // surface, via `impl Engine for FastEngine { type Sampler = … }`.
        let fm = build(&[(
            "crates/orchestrator",
            "crates/orchestrator/src/lib.rs",
            "pub struct World<E: Engine = FastEngine> {\n    sampler: E::Sampler,\n}\n\
             impl<E: Engine> World<E> {\n    pub fn branch(&self) -> Self {\n        self.clone()\n    }\n}\n\
             pub struct FastEngine;\n\
             impl Engine for FastEngine {\n    type Sampler = TreeSampler;\n}\n\
             pub struct TreeSampler {\n    tree: Arc<Vec<u64>>,\n}\n\
             pub struct SlowEngine;\n\
             impl Engine for SlowEngine {\n    type Sampler = ScanSampler;\n}\n\
             pub struct ScanSampler {\n    weights: Vec<u64>,\n}\n",
        )]);
        let surface: Vec<&str> = fm.fork_surface().map(|t| t.def.name.as_str()).collect();
        assert!(
            surface.contains(&"FastEngine"),
            "header default: {surface:?}"
        );
        assert!(
            surface.contains(&"TreeSampler"),
            "assoc binding: {surface:?}"
        );
        // SlowEngine is never named by a surface type, so its binding
        // must not leak its sampler in.
        assert!(!surface.contains(&"ScanSampler"), "surface: {surface:?}");
    }

    #[test]
    fn fork_fns_attach_and_clone_is_detected() {
        let fm = build(&[(
            "crates/simcore",
            "crates/simcore/src/lib.rs",
            "#[derive(Debug, Clone)]\npub struct Rng {\n    s: u64,\n}\n\
             impl Rng {\n    pub fn fork(&mut self) -> Rng {\n        Rng { s: 1 }\n    }\n}\n",
        )]);
        let rng = &fm.types[0];
        assert!(rng.fork_surface);
        assert!(rng.is_clone && rng.derives_clone());
        assert_eq!(rng.fork_fns.len(), 1);
        assert!(returns_self(&rng.fork_fns[0], "Rng"));
    }

    #[test]
    fn non_fork_surface_crates_contribute_nothing() {
        let fm = build(&[(
            "crates/serve",
            "crates/serve/src/lib.rs",
            "pub struct Conn {\n    buf: Arc<Vec<u8>>,\n}\n\
             impl Conn {\n    pub fn snapshot(&self) -> Self {\n        unreachable!()\n    }\n}\n",
        )]);
        assert!(fm.types.is_empty());
    }
}
