//! The workspace symbol table and call graph.
//!
//! [`Workspace::build`] collects every [`crate::parse::FnItem`]
//! from the library sources of every registered crate, then resolves call
//! sites to workspace functions by name: same-file first, then the file's
//! import map, then a capped whole-workspace fallback. Method calls
//! resolve to *every* workspace method of that name (static dispatch is
//! out of reach for a lexical pass, so the graph over-approximates trait
//! calls) except for a denylist of ubiquitous `std` method names, which
//! would otherwise connect everything to everything.
//!
//! Everything is ordered: functions by (file, line), edges by callee id,
//! traversals by sorted neighbor lists — so every downstream diagnostic
//! is byte-stable across runs.

use std::collections::BTreeMap;

use crate::parse::{CallTarget, FileModel, FnItem, Visibility};
use crate::policy::CratePolicy;

/// Method names that never resolve to workspace functions: they are
/// overwhelmingly `std`/vendored receivers, and edges through them would
/// connect the whole graph through `len()`/`push()`-style noise.
const METHOD_DENYLIST: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_nanos",
    "as_ref",
    "as_str",
    "borrow",
    "borrow_mut",
    "bytes",
    "ceil",
    "chars",
    "checked_add",
    "checked_mul",
    "checked_sub",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "expect",
    "extend",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "flush",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "get_or_insert",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "map",
    "map_err",
    "max",
    "min",
    "ne",
    "next",
    "next_back",
    "notify_all",
    "notify_one",
    "ok",
    "or_else",
    "parse",
    "partial_cmp",
    "pop",
    "position",
    "product",
    "push",
    "read",
    "remove",
    "replace",
    "reserve",
    "retain",
    "rev",
    "round",
    "saturating_add",
    "saturating_sub",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "split_once",
    "starts_with",
    "sum",
    "swap",
    "take",
    "then",
    "then_with",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "try_from",
    "try_into",
    "unwrap_err",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "wait",
    "with_capacity",
    "wrapping_add",
    "write",
    "write_all",
    "zip",
];

/// External roots a path call can never resolve into.
const EXTERNAL_ROOTS: &[&str] = &[
    "std",
    "core",
    "alloc",
    "serde",
    "serde_json",
    "rand",
    "proptest",
    "criterion",
    "crossbeam",
    "parking_lot",
];

/// A free-call fallback only fires when the simple name is this rare in
/// the workspace; an ambiguous name resolves to every candidate, and a
/// name more ambiguous than this resolves to none.
const AMBIGUITY_CAP: usize = 8;

/// One function in the workspace table.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// The parsed item.
    pub item: FnItem,
    /// Workspace-relative file path.
    pub rel: String,
    /// Index of the file in the scan (for suppression lookups).
    pub file_idx: usize,
    /// Fully-qualified display name
    /// (`crate_name::module::Type::name`).
    pub qual: String,
    /// Policy of the owning crate.
    pub policy: &'static CratePolicy,
    /// Resolved call edges: (callee fn id, call-site line, locks held at
    /// the call). Sorted by (line, callee).
    pub edges: Vec<(usize, usize, Vec<String>)>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Workspace {
    /// All functions, sorted by (file, line). Ids are indices.
    pub fns: Vec<FnNode>,
    by_simple: BTreeMap<String, Vec<usize>>,
    by_type_method: BTreeMap<(String, String), Vec<usize>>,
}

/// One library source file contributed to the symbol table.
pub struct GraphInput<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Index of the file in the scan (opaque to the graph; carried
    /// through to [`FnNode::file_idx`]).
    pub file_idx: usize,
    /// Owning crate's policy row.
    pub policy: &'static CratePolicy,
    /// The parsed item model.
    pub model: &'a FileModel,
}

impl std::fmt::Debug for GraphInput<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphInput")
            .field("rel", &self.rel)
            .finish_non_exhaustive()
    }
}

/// `eaao-core` → `eaao_core`: the lib name used in cross-crate paths.
pub fn crate_lib_name(policy: &CratePolicy) -> String {
    policy.name.replace('-', "_")
}

/// Module path of a file inside its crate: `src/lib.rs`/`src/main.rs` →
/// empty, `src/a/b.rs` → `a::b`, `src/a/mod.rs` → `a`.
fn file_module_path(rel: &str, crate_dir: &str) -> Vec<String> {
    let within = rel
        .strip_prefix(crate_dir)
        .unwrap_or(rel)
        .trim_start_matches('/');
    let within = within.strip_prefix("src/").unwrap_or(within);
    let mut parts: Vec<String> = within
        .trim_end_matches(".rs")
        .split('/')
        .map(str::to_owned)
        .collect();
    if parts
        .last()
        .is_some_and(|p| p == "lib" || p == "main" || p == "mod")
    {
        parts.pop();
    }
    parts
}

impl Workspace {
    /// Builds the symbol table and resolves every call site.
    pub fn build(inputs: &[GraphInput<'_>]) -> Workspace {
        let mut ws = Workspace::default();
        // Per-fn file model index (parallel to ws.fns) for resolution.
        let mut model_of: Vec<usize> = Vec::new();
        for (input_idx, input) in inputs.iter().enumerate() {
            let crate_name = crate_lib_name(input.policy);
            let file_mods = file_module_path(input.rel, input.policy.dir);
            for item in &input.model.fns {
                let mut qual = vec![crate_name.clone()];
                qual.extend(file_mods.iter().cloned());
                qual.extend(item.module.iter().cloned());
                if let Some(ty) = &item.type_ctx {
                    qual.push(ty.clone());
                }
                qual.push(item.name.clone());
                let id = ws.fns.len();
                ws.by_simple.entry(item.name.clone()).or_default().push(id);
                if let Some(ty) = &item.type_ctx {
                    ws.by_type_method
                        .entry((ty.clone(), item.name.clone()))
                        .or_default()
                        .push(id);
                }
                ws.fns.push(FnNode {
                    item: item.clone(),
                    rel: input.rel.to_owned(),
                    file_idx: input.file_idx,
                    qual: qual.join("::"),
                    policy: input.policy,
                    edges: Vec::new(),
                });
                model_of.push(input_idx);
            }
        }
        // Resolve calls.
        for id in 0..ws.fns.len() {
            let input = &inputs[model_of[id]];
            let calls = ws.fns[id].item.calls.clone();
            let mut edges: Vec<(usize, usize, Vec<String>)> = Vec::new();
            for call in &calls {
                for callee in ws.resolve(id, input, &call.target) {
                    if callee != id {
                        edges.push((callee, call.line, call.holding.clone()));
                    }
                }
            }
            edges.sort_by_key(|a| (a.1, a.0));
            edges.dedup();
            ws.fns[id].edges = edges;
        }
        ws
    }

    /// All function ids whose simple name is `name`.
    fn simple(&self, name: &str) -> &[usize] {
        self.by_simple.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Resolves one call target from the body of `caller` to candidate
    /// callee ids (sorted, possibly empty).
    fn resolve(&self, caller: usize, input: &GraphInput<'_>, target: &CallTarget) -> Vec<usize> {
        let mut out = match target {
            CallTarget::Method(name) => self.resolve_method(name),
            CallTarget::Free(name) => self.resolve_free(caller, input, name),
            CallTarget::Path(segs) => self.resolve_path(caller, input, segs),
        };
        out.sort_unstable();
        out.dedup();
        out
    }

    fn resolve_method(&self, name: &str) -> Vec<usize> {
        if METHOD_DENYLIST.binary_search(&name).is_ok() {
            return Vec::new();
        }
        let candidates: Vec<usize> = self
            .simple(name)
            .iter()
            .copied()
            .filter(|&id| self.fns[id].item.type_ctx.is_some())
            .collect();
        if candidates.len() > AMBIGUITY_CAP {
            Vec::new()
        } else {
            candidates
        }
    }

    fn resolve_free(&self, caller: usize, input: &GraphInput<'_>, name: &str) -> Vec<usize> {
        // 1. A free function in the same file.
        let caller_file = self.fns[caller].file_idx;
        let same_file: Vec<usize> = self
            .simple(name)
            .iter()
            .copied()
            .filter(|&id| {
                self.fns[id].file_idx == caller_file && self.fns[id].item.type_ctx.is_none()
            })
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        // 2. The file's import map.
        if let Some(path) = input.model.imports.get(name) {
            let resolved = self.resolve_suffix(caller, path);
            if !resolved.is_empty() {
                return resolved;
            }
            if is_external_path(path) {
                return Vec::new();
            }
        }
        // 2b. Glob imports.
        for base in &input.model.globs {
            let mut path = base.clone();
            path.push(name.to_owned());
            let resolved = self.resolve_suffix(caller, &path);
            if !resolved.is_empty() {
                return resolved;
            }
        }
        // 3. Capped whole-workspace fallback on the bare name.
        let all: Vec<usize> = self
            .simple(name)
            .iter()
            .copied()
            .filter(|&id| self.fns[id].item.type_ctx.is_none())
            .collect();
        if all.is_empty() || all.len() > AMBIGUITY_CAP {
            Vec::new()
        } else {
            all
        }
    }

    fn resolve_path(&self, caller: usize, input: &GraphInput<'_>, segs: &[String]) -> Vec<usize> {
        if segs.len() < 2 {
            return Vec::new();
        }
        if is_external_path(segs) {
            return Vec::new();
        }
        let name = segs.last().expect("path has segments").as_str();
        let qualifier = &segs[..segs.len() - 1];
        let ql = qualifier.last().expect("qualifier non-empty");
        // `Type::assoc(…)` / `Self::assoc(…)`.
        if ql == "Self" {
            if let Some(ty) = &self.fns[caller].item.type_ctx {
                return self
                    .by_type_method
                    .get(&(ty.clone(), name.to_owned()))
                    .cloned()
                    .unwrap_or_default();
            }
            return Vec::new();
        }
        if ql.chars().next().is_some_and(char::is_uppercase) {
            // The type name may itself be an import alias; the simple
            // (type, method) index covers both spellings.
            return self
                .by_type_method
                .get(&(ql.clone(), name.to_owned()))
                .cloned()
                .unwrap_or_default();
        }
        // Module-qualified call: expand a leading import alias
        // (`helper::step()` with `use crate::deep::helper;`), then match
        // the path suffix against qualified names.
        let mut expanded: Vec<String> = segs.to_vec();
        if let Some(mapped) = input.model.imports.get(&segs[0]) {
            let mut full = mapped.clone();
            full.extend(segs[1..].iter().cloned());
            expanded = full;
        }
        self.resolve_suffix(caller, &expanded)
    }

    /// Matches a (possibly `crate`/`super`-relative) path against the
    /// qualified names in the table.
    fn resolve_suffix(&self, caller: usize, path: &[String]) -> Vec<usize> {
        if path.is_empty() {
            return Vec::new();
        }
        let mut segs: Vec<String> = Vec::new();
        let mut require_crate: Option<String> = None;
        for (i, seg) in path.iter().enumerate() {
            match seg.as_str() {
                "crate" if i == 0 => {
                    require_crate = Some(crate_lib_name(self.fns[caller].policy));
                }
                "super" | "self" => {} // fuzzy: match by suffix only
                _ => segs.push(seg.clone()),
            }
        }
        let Some(name) = segs.last().cloned() else {
            return Vec::new();
        };
        if segs.first().is_some_and(|s| s.starts_with("eaao")) {
            require_crate = Some(segs[0].clone());
        }
        let suffix = format!("::{}", segs.join("::"));
        self.simple(&name)
            .iter()
            .copied()
            .filter(|&id| {
                let q = &self.fns[id].qual;
                if let Some(c) = &require_crate {
                    // A crate-anchored path must stay in that crate.
                    if !q.starts_with(&format!("{c}::")) {
                        return false;
                    }
                }
                q.ends_with(&suffix) || *q == segs.join("::")
            })
            .collect()
    }

    /// Ids of every function, in deterministic (file, line) order — the
    /// order they were inserted.
    pub fn ids(&self) -> impl Iterator<Item = usize> + '_ {
        0..self.fns.len()
    }

    /// Whether the function is part of a crate's surface: `pub` and not a
    /// bodiless trait signature.
    pub fn is_public_api(&self, id: usize) -> bool {
        self.fns[id].item.vis == Visibility::Public
    }
}

fn is_external_path(path: &[String]) -> bool {
    path.first()
        .is_some_and(|p| EXTERNAL_ROOTS.contains(&p.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::FileModel;
    use crate::policy::policy_for_dir;
    use crate::source::SourceFile;

    fn build(files: &[(&str, &str, &str)]) -> Workspace {
        let models: Vec<(String, &'static CratePolicy, FileModel)> = files
            .iter()
            .map(|(dir, rel, text)| {
                let policy = policy_for_dir(dir).expect("registered dir");
                let model = FileModel::parse(rel, &SourceFile::parse(text));
                ((*rel).to_owned(), policy, model)
            })
            .collect();
        let inputs: Vec<GraphInput<'_>> = models
            .iter()
            .enumerate()
            .map(|(i, (rel, policy, model))| GraphInput {
                rel,
                file_idx: i,
                policy,
                model,
            })
            .collect();
        Workspace::build(&inputs)
    }

    fn find(ws: &Workspace, qual: &str) -> usize {
        ws.ids()
            .find(|&id| ws.fns[id].qual == qual)
            .unwrap_or_else(|| {
                panic!(
                    "{qual} not in {:?}",
                    ws.fns.iter().map(|f| &f.qual).collect::<Vec<_>>()
                )
            })
    }

    fn callees(ws: &Workspace, id: usize) -> Vec<String> {
        ws.fns[id]
            .edges
            .iter()
            .map(|&(callee, _, _)| ws.fns[callee].qual.clone())
            .collect()
    }

    #[test]
    fn method_denylist_is_sorted_for_binary_search() {
        assert!(METHOD_DENYLIST.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn same_file_calls_resolve_first() {
        let ws = build(&[(
            "crates/core",
            "crates/core/src/lib.rs",
            "pub fn entry() {\n    step();\n}\nfn step() {}\n",
        )]);
        let entry = find(&ws, "eaao_core::entry");
        assert_eq!(callees(&ws, entry), vec!["eaao_core::step"]);
    }

    #[test]
    fn cross_crate_calls_resolve_via_imports_and_paths() {
        let ws = build(&[
            (
                "crates/core",
                "crates/core/src/lib.rs",
                "use eaao_campaign::wall_now;\npub fn record() {\n    wall_now();\n    eaao_campaign::other();\n}\n",
            ),
            (
                "crates/campaign",
                "crates/campaign/src/lib.rs",
                "pub fn wall_now() {}\npub fn other() {}\n",
            ),
        ]);
        let record = find(&ws, "eaao_core::record");
        assert_eq!(
            callees(&ws, record),
            vec!["eaao_campaign::wall_now", "eaao_campaign::other"]
        );
    }

    #[test]
    fn type_methods_resolve_by_type_and_name() {
        let ws = build(&[(
            "crates/obs",
            "crates/obs/src/lib.rs",
            "pub struct C;\nimpl C {\n    pub fn new() -> C {\n        C::init();\n        C\n    }\n    fn init() {}\n}\nfn f(c: &C) {\n    c.poke();\n}\nimpl C {\n    pub fn poke(&self) {}\n}\n",
        )]);
        let new = find(&ws, "eaao_obs::C::new");
        assert_eq!(callees(&ws, new), vec!["eaao_obs::C::init"]);
        let f = find(&ws, "eaao_obs::f");
        assert_eq!(callees(&ws, f), vec!["eaao_obs::C::poke"]);
    }

    #[test]
    fn denylisted_and_external_calls_resolve_to_nothing() {
        let ws = build(&[(
            "crates/core",
            "crates/core/src/lib.rs",
            "pub fn f(xs: &mut Vec<u32>) {\n    xs.push(1);\n    std::mem::take(xs);\n    serde_json::to_string(xs);\n}\npub fn push() {}\n",
        )]);
        let f = find(&ws, "eaao_core::f");
        assert!(callees(&ws, f).is_empty(), "{:?}", callees(&ws, f));
    }

    #[test]
    fn module_files_get_module_paths() {
        let ws = build(&[(
            "crates/core",
            "crates/core/src/strategies/naive.rs",
            "pub fn run() {}\n",
        )]);
        find(&ws, "eaao_core::strategies::naive::run");
    }
}
