//! Lexical source model: comment/string masking, `#[cfg(test)]` region
//! tracking, and `tidy:allow` suppression parsing.
//!
//! The pass never parses Rust properly — like rustc's `tidy`, it masks
//! string/char literals and comments out of each line and pattern-matches
//! the remaining code tokens. That keeps the analyzer dependency-free and
//! immune to the "my banned word appeared in a doc comment" class of false
//! positives.

use crate::diag::CheckId;

/// One analyzed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line with comments and literal *contents* replaced by spaces
    /// (delimiters are kept, so `"HashMap"` contributes no tokens).
    pub code: String,
    /// The concatenated comment text on the line (without `//` markers).
    pub comment: String,
    /// Whether the line sits inside a `#[cfg(test)]`-gated region.
    pub in_test: bool,
}

/// One `tidy:allow(...)` suppression found in comments.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line the suppression covers (its own line for a trailing
    /// comment, the next line for a comment standing alone).
    pub covers: usize,
    /// 1-based line the suppression is written on.
    pub declared_at: usize,
    /// The check name inside the parentheses, verbatim.
    pub check_name: String,
    /// The check it resolves to, if the name is known.
    pub check: Option<CheckId>,
    /// Whether a non-empty justification follows ` -- `.
    pub justified: bool,
}

/// A parsed source file: masked lines plus suppressions.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Masked lines, index 0 = line 1.
    pub lines: Vec<Line>,
    /// All suppressions declared in the file.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Parses `text` into the lexical model.
    pub fn parse(text: &str) -> SourceFile {
        let (mut lines, raw_comments) = mask(text);
        mark_test_regions(&mut lines);
        let suppressions = parse_suppressions(&lines, &raw_comments);
        SourceFile {
            lines,
            suppressions,
        }
    }

    /// Whether `line` (1-based) is suppressed for `check`. Marks matching
    /// suppressions in `used` (same indexing as `self.suppressions`).
    pub fn is_suppressed(&self, line: usize, check: CheckId, used: &mut [bool]) -> bool {
        let mut hit = false;
        for (i, s) in self.suppressions.iter().enumerate() {
            if s.covers == line && s.check == Some(check) && s.justified {
                used[i] = true;
                hit = true;
            }
        }
        hit
    }
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Masks comments and literal contents out of `text`, producing per-line
/// code and comment strings. Handles line comments, nested block comments,
/// string/char/byte literals, raw strings (`r"…"`, `r#"…"#`, byte
/// variants), and the lifetime-vs-char-literal ambiguity.
fn mask(text: &str) -> (Vec<Line>, Vec<String>) {
    let chars: Vec<char> = text.chars().collect();
    let mut code: Vec<String> = vec![String::new()];
    let mut comment: Vec<String> = vec![String::new()];

    #[derive(PartialEq)]
    enum State {
        Normal,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut state = State::Normal;
    let mut i = 0;
    let push = |v: &mut Vec<String>, c: char| {
        v.last_mut().expect("line buffer exists").push(c);
    };
    let blank = |v: &mut Vec<String>| {
        v.last_mut().expect("line buffer exists").push(' ');
    };
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            code.push(String::new());
            comment.push(String::new());
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                let next = chars.get(i + 1).copied();
                let prev_ident = i > 0 && is_ident(chars[i - 1]);
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    blank(&mut code);
                    blank(&mut code);
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    blank(&mut code);
                    blank(&mut code);
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    push(&mut code, '"');
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_ident {
                    // Possible raw/byte literal prefix: r" r#" b" br" rb#" …
                    let mut j = i;
                    while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') && j - i < 2 {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    let raw = chars[i..j].contains(&'r');
                    while raw && chars.get(j + hashes as usize) == Some(&'#') {
                        hashes += 1;
                    }
                    let open = j + hashes as usize;
                    if chars.get(open) == Some(&'"') {
                        for _ in i..open {
                            blank(&mut code);
                        }
                        push(&mut code, '"');
                        state = if raw {
                            State::RawStr(hashes)
                        } else {
                            State::Str
                        };
                        i = open + 1;
                    } else {
                        push(&mut code, c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Lifetime or char literal?
                    let is_char = match next {
                        Some('\\') => true,
                        Some(n) if is_ident(n) => {
                            let mut j = i + 1;
                            while j < chars.len() && is_ident(chars[j]) {
                                j += 1;
                            }
                            chars.get(j) == Some(&'\'')
                        }
                        Some('\'') => true,
                        Some(_) => true,
                        None => false,
                    };
                    push(&mut code, '\'');
                    if is_char {
                        state = State::Char;
                    }
                    i += 1;
                } else {
                    push(&mut code, c);
                    i += 1;
                }
            }
            State::LineComment => {
                push(&mut comment, c);
                blank(&mut code);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    blank(&mut code);
                    blank(&mut code);
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    blank(&mut code);
                    blank(&mut code);
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    push(&mut comment, c);
                    blank(&mut code);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    blank(&mut code);
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        blank(&mut code);
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    push(&mut code, '"');
                    state = State::Normal;
                    i += 1;
                } else {
                    blank(&mut code);
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        push(&mut code, '"');
                        for _ in 0..hashes {
                            blank(&mut code);
                        }
                        state = State::Normal;
                        i += 1 + hashes as usize;
                    } else {
                        blank(&mut code);
                        i += 1;
                    }
                } else {
                    blank(&mut code);
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    blank(&mut code);
                    if i + 1 < chars.len() {
                        blank(&mut code);
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    push(&mut code, '\'');
                    state = State::Normal;
                    i += 1;
                } else {
                    blank(&mut code);
                    i += 1;
                }
            }
        }
    }
    let comments = comment.clone();
    let lines = code
        .into_iter()
        .zip(comment)
        .map(|(code, comment)| Line {
            code,
            comment,
            in_test: false,
        })
        .collect();
    (lines, comments)
}

/// Marks lines inside `#[cfg(test)]`-gated items. Tracks brace depth on the
/// masked code; a pending `#[cfg(test)]` attribute opens a region at the
/// next `{` (a whole `mod tests { … }` / gated fn), or covers a single
/// braceless item ending in `;` (`#[cfg(test)] use …;`).
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut region_entry: Option<i64> = None;
    for line in lines.iter_mut() {
        if region_entry.is_some() {
            line.in_test = true;
        }
        if line.code.contains("cfg(test)") && region_entry.is_none() {
            pending = true;
            line.in_test = true;
        }
        let mut line_has_open = false;
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending {
                        region_entry = Some(depth);
                        pending = false;
                        line.in_test = true;
                    }
                    depth += 1;
                    line_has_open = true;
                }
                '}' => {
                    depth -= 1;
                    if region_entry.is_some_and(|entry| depth <= entry) {
                        region_entry = None;
                    }
                }
                _ => {}
            }
        }
        // `#[cfg(test)] use …;` — a gated braceless item.
        if pending && !line_has_open && line.code.trim_end().ends_with(';') {
            line.in_test = true;
            pending = false;
        }
    }
}

/// Extracts `tidy:allow(name) -- justification` suppressions from comment
/// text. `raw_comments` is the per-line comment text from [`mask`].
///
/// Doc comments never declare suppressions: after masking, the text of
/// `/// …` starts with `/`, of `//! …` with `!`, and of a block-doc
/// continuation line with `*` — all skipped, so documentation may quote
/// the syntax without activating it.
fn parse_suppressions(lines: &[Line], raw_comments: &[String]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (idx, comment) in raw_comments.iter().enumerate() {
        if matches!(comment.trim_start().chars().next(), Some('/' | '!' | '*')) {
            continue;
        }
        let lineno = idx + 1;
        let mut rest = comment.as_str();
        while let Some(pos) = rest.find("tidy:allow") {
            rest = &rest[pos + "tidy:allow".len()..];
            let Some(open) = rest.find('(') else {
                break;
            };
            let Some(close) = rest.find(')') else {
                break;
            };
            if open > close {
                break;
            }
            let check_name = rest[open + 1..close].trim().to_owned();
            let tail = &rest[close + 1..];
            let justified = tail
                .trim_start()
                .strip_prefix("--")
                .is_some_and(|j| !j.trim().is_empty());
            let code_is_blank = lines[idx].code.trim().is_empty();
            let covers = if code_is_blank { lineno + 1 } else { lineno };
            out.push(Suppression {
                covers,
                declared_at: lineno,
                check: CheckId::from_name(&check_name),
                check_name,
                justified,
            });
            rest = tail;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_strings_and_comments() {
        let f = SourceFile::parse("let x = \"HashMap\"; // HashMap here\nuse std::fs;\n");
        assert!(!f.lines[0].code.contains("HashMap"), "{}", f.lines[0].code);
        assert!(f.lines[0].comment.contains("HashMap"));
        assert!(f.lines[1].code.contains("std::fs"));
    }

    #[test]
    fn masks_raw_strings_and_char_literals() {
        let f = SourceFile::parse(
            "let a = r#\"unsafe { HashMap }\"#;\nlet b: &'static str = x;\nlet c = '{';\nlet d = b\"unsafe\";\n",
        );
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(f.lines[1].code.contains("'static"), "{}", f.lines[1].code);
        assert!(!f.lines[2].code.contains('{'), "{}", f.lines[2].code);
        assert!(!f.lines[3].code.contains("unsafe"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let f = SourceFile::parse("/* a /* b */ HashMap */\nHashMap\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[1].code.contains("HashMap"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src =
            "use a;\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\nuse b;\n";
        let f = SourceFile::parse(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn cfg_test_single_item() {
        let f = SourceFile::parse("#[cfg(test)]\nuse proptest::prelude::*;\nuse b;\n");
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn suppression_trailing_and_standalone() {
        let src = "use x; // tidy:allow(determinism) -- keyed lookups only\n\
                   // tidy:allow(panic-policy) -- invariant documented\n\
                   let y = 1;\n\
                   // tidy:allow(determinism)\n\
                   let z = 2;\n\
                   // tidy:allow(bogus-check) -- whatever\n";
        let f = SourceFile::parse(src);
        assert_eq!(f.suppressions.len(), 4);
        assert_eq!(f.suppressions[0].covers, 1);
        assert!(f.suppressions[0].justified);
        assert_eq!(f.suppressions[0].check, Some(CheckId::Determinism));
        assert_eq!(f.suppressions[1].covers, 3);
        assert_eq!(f.suppressions[2].covers, 5);
        assert!(!f.suppressions[2].justified, "missing justification");
        assert!(f.suppressions[3].check.is_none(), "unknown check name");
    }

    #[test]
    fn doc_comments_do_not_declare_suppressions() {
        let src = "/// tidy:allow(determinism) -- quoted in docs\n\
                   //! tidy:allow(panic-policy) -- quoted in docs\n\
                   /* * tidy:allow(determinism) -- x */\n\
                   let a = 1;\n";
        let f = SourceFile::parse(src);
        assert!(f.suppressions.is_empty(), "{:?}", f.suppressions);
    }
}
