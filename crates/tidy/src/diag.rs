//! Structured diagnostics: `file:line: [check-name] message`.

use std::fmt;

/// The checks this pass can report. The string form (used in diagnostics
/// and in `tidy:allow(...)` suppressions) is kebab-case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckId {
    /// Iteration-order hazards, wall-clock reads, ambient I/O, and
    /// non-seeded RNG construction in simulation-critical crates.
    Determinism,
    /// `unsafe` outside the (currently empty) allowlist, or an allowlisted
    /// block missing its `// SAFETY:` comment.
    UnsafePolicy,
    /// Missing standard lint headers on a `lib.rs`, unjustified
    /// `#[allow(...)]`, or a crate absent from the policy table.
    CrateHeader,
    /// `unwrap()` / `panic!` / `todo!` / `unimplemented!` in library code.
    PanicPolicy,
    /// Socket types (`std::net`) in a crate whose policy row does not
    /// sanction network I/O — the service boundary lives in one crate.
    NetPolicy,
    /// Registry or git dependencies in a `Cargo.toml`.
    Hermeticity,
    /// A malformed, unknown, or unused `tidy:allow` suppression.
    Suppression,
    /// A public API that can transitively reach an undocumented panic
    /// source (call-graph check).
    PanicReach,
    /// A simulation-critical function calling into a host-crate function
    /// that transitively reaches a nondeterminism source (call-graph
    /// check).
    DeterminismTaint,
    /// A potential lock-order cycle, or a lock held across a call into
    /// another lock-taking function (call-graph check).
    LockOrder,
    /// A fork-surface type whose fork-path impl (`clone`/`fork`/
    /// `branch`/`snapshot`) does not mention every field, so a new field's
    /// share-vs-detach behavior was never decided (field-level check).
    ForkCoverage,
    /// An `Arc` field of a fork-surface type written around
    /// `Arc::make_mut`, or interior mutability visible through a sharing
    /// clone (field-level check).
    CowAliasing,
    /// Unordered float reduction, float `==`/`!=` comparison, or
    /// truncating `as` cast on a float in a simulation-critical crate
    /// (field-level check).
    FloatDeterminism,
    /// A spawned thread whose `JoinHandle` is discarded or never joined,
    /// or a dispatcher-path worker closure that can panic without a
    /// `catch_unwind` barrier (concurrency check).
    ThreadLifecycle,
    /// A cross-thread queue built unbounded with no `bound:` comment
    /// naming the enforcing mechanism (concurrency check).
    QueueBounds,
    /// A swallowed `Result` in service-crate library code: `let _ =`,
    /// `.ok()`-discard, or a statement-dropped `#[must_use]` value
    /// (concurrency check).
    ErrorPolicy,
    /// Drift between the `proto.rs` wire enums, the frames the peer
    /// actually handles, and the frame tables in `docs/SERVICE.md`
    /// (concurrency check).
    WireSchema,
    /// A stale, duplicate, unjustified, or unparsable entry in
    /// `tidy-baseline.json`.
    Baseline,
}

impl CheckId {
    /// The kebab-case name used in diagnostics and suppressions.
    pub fn name(self) -> &'static str {
        match self {
            CheckId::Determinism => "determinism",
            CheckId::UnsafePolicy => "unsafe-policy",
            CheckId::CrateHeader => "crate-header",
            CheckId::PanicPolicy => "panic-policy",
            CheckId::NetPolicy => "net-policy",
            CheckId::Hermeticity => "hermeticity",
            CheckId::Suppression => "suppression",
            CheckId::PanicReach => "panic-reachability",
            CheckId::DeterminismTaint => "determinism-taint",
            CheckId::LockOrder => "lock-order",
            CheckId::ForkCoverage => "fork-coverage",
            CheckId::CowAliasing => "cow-aliasing",
            CheckId::FloatDeterminism => "float-determinism",
            CheckId::ThreadLifecycle => "thread-lifecycle",
            CheckId::QueueBounds => "queue-bounds",
            CheckId::ErrorPolicy => "error-policy",
            CheckId::WireSchema => "wire-schema",
            CheckId::Baseline => "baseline",
        }
    }

    /// Resolves a suppression name back to a check. `suppression` and
    /// `baseline` are not suppressible — meta-findings must be fixed, not
    /// silenced.
    pub fn from_name(name: &str) -> Option<CheckId> {
        match name {
            "determinism" => Some(CheckId::Determinism),
            "unsafe-policy" => Some(CheckId::UnsafePolicy),
            "crate-header" => Some(CheckId::CrateHeader),
            "panic-policy" => Some(CheckId::PanicPolicy),
            "net-policy" => Some(CheckId::NetPolicy),
            "hermeticity" => Some(CheckId::Hermeticity),
            "panic-reachability" => Some(CheckId::PanicReach),
            "determinism-taint" => Some(CheckId::DeterminismTaint),
            "lock-order" => Some(CheckId::LockOrder),
            "fork-coverage" => Some(CheckId::ForkCoverage),
            "cow-aliasing" => Some(CheckId::CowAliasing),
            "float-determinism" => Some(CheckId::FloatDeterminism),
            "thread-lifecycle" => Some(CheckId::ThreadLifecycle),
            "queue-bounds" => Some(CheckId::QueueBounds),
            "error-policy" => Some(CheckId::ErrorPolicy),
            "wire-schema" => Some(CheckId::WireSchema),
            _ => None,
        }
    }

    /// Whether the check is one of the workspace-model (semantic) checks
    /// — call-graph, field-level, or concurrency — the only findings the
    /// baseline ratchet may carry.
    pub fn is_semantic(self) -> bool {
        matches!(
            self,
            CheckId::PanicReach
                | CheckId::DeterminismTaint
                | CheckId::LockOrder
                | CheckId::ForkCoverage
                | CheckId::CowAliasing
                | CheckId::FloatDeterminism
                | CheckId::ThreadLifecycle
                | CheckId::QueueBounds
                | CheckId::ErrorPolicy
                | CheckId::WireSchema
        )
    }
}

impl fmt::Display for CheckId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One row of the check registry: what `--list-checks` prints, and what
/// the drift test holds against the policy table and the docs.
#[derive(Debug, Clone, Copy)]
pub struct CheckInfo {
    /// The check.
    pub check: CheckId,
    /// Analysis layer: `lexical` (per-line), `call-graph` (workspace
    /// function graph), `field-level` (struct/field model), `concurrency`
    /// (thread/queue/wire lifecycle model), or `meta` (findings about the
    /// tool's own inputs).
    pub layer: &'static str,
    /// One-line contract: what a finding means.
    pub contract: &'static str,
    /// Which crates the check scans, in terms of the policy table.
    pub scope: &'static str,
}

/// Every registered check, in `CheckId` order. `--list-checks` renders
/// this table; tests assert it stays in sync with [`CheckId`], the
/// suppressible-check list, and `docs/STATIC_ANALYSIS.md`.
pub const CHECK_REGISTRY: &[CheckInfo] = &[
    CheckInfo {
        check: CheckId::Determinism,
        layer: "lexical",
        contract: "no iteration-order, wall-clock, ambient-I/O, or unseeded-RNG hazards",
        scope: "library sources of crates with policy determinism=true",
    },
    CheckInfo {
        check: CheckId::UnsafePolicy,
        layer: "lexical",
        contract: "no `unsafe` outside the allowlist; allowlisted blocks carry // SAFETY:",
        scope: "every Rust file in the workspace",
    },
    CheckInfo {
        check: CheckId::CrateHeader,
        layer: "lexical",
        contract: "lib.rs lint headers present; #[allow] justified; crate has a policy row",
        scope: "every workspace crate",
    },
    CheckInfo {
        check: CheckId::PanicPolicy,
        layer: "lexical",
        contract: "no unwrap/panic!/todo!/unimplemented! in library code",
        scope: "library sources of every crate",
    },
    CheckInfo {
        check: CheckId::NetPolicy,
        layer: "lexical",
        contract: "socket types only in crates with policy net=true",
        scope: "library sources of crates with policy net=false",
    },
    CheckInfo {
        check: CheckId::Hermeticity,
        layer: "lexical",
        contract: "no registry or git dependencies in any Cargo.toml",
        scope: "every manifest in the workspace",
    },
    CheckInfo {
        check: CheckId::Suppression,
        layer: "meta",
        contract: "every tidy:allow is well-formed, known, justified, and used",
        scope: "every Rust file in the workspace",
    },
    CheckInfo {
        check: CheckId::PanicReach,
        layer: "call-graph",
        contract: "no public API transitively reaches an undocumented panic source",
        scope: "library sources of crates with policy call_graph=true",
    },
    CheckInfo {
        check: CheckId::DeterminismTaint,
        layer: "call-graph",
        contract: "no simulation-critical function reaches a nondeterminism source",
        scope: "crates with policy determinism=true, through call_graph=true callees",
    },
    CheckInfo {
        check: CheckId::LockOrder,
        layer: "call-graph",
        contract: "no lock-order cycles; no lock held across a lock-taking call",
        scope: "library sources of crates with policy call_graph=true",
    },
    CheckInfo {
        check: CheckId::ForkCoverage,
        layer: "field-level",
        contract: "fork-surface types mention every field in each fork-path impl",
        scope: "library sources of crates with policy fork_surface=true",
    },
    CheckInfo {
        check: CheckId::CowAliasing,
        layer: "field-level",
        contract: "Arc fields of fork-surface types written only through Arc::make_mut; no interior mutability visible through a sharing clone",
        scope: "library sources of crates with policy fork_surface=true",
    },
    CheckInfo {
        check: CheckId::FloatDeterminism,
        layer: "field-level",
        contract: "no unordered float reductions, float ==/!=, or truncating float casts",
        scope: "library sources of crates with policy float_det=true",
    },
    CheckInfo {
        check: CheckId::ThreadLifecycle,
        layer: "concurrency",
        contract: "every spawned thread is joined, tracked, or justified; dispatcher-path workers carry catch_unwind barriers",
        scope: "library sources of crates with policy concurrency=true",
    },
    CheckInfo {
        check: CheckId::QueueBounds,
        layer: "concurrency",
        contract: "every cross-thread queue is bounded or names its bound in a `bound:` comment",
        scope: "library sources of crates with policy concurrency=true",
    },
    CheckInfo {
        check: CheckId::ErrorPolicy,
        layer: "concurrency",
        contract: "no `let _ =`, `.ok()`-discard, or dropped #[must_use] value in library code",
        scope: "library sources of crates with policy concurrency=true",
    },
    CheckInfo {
        check: CheckId::WireSchema,
        layer: "concurrency",
        contract: "proto.rs wire enums, peer match arms, and docs/SERVICE.md frame tables agree",
        scope: "the service crate's proto.rs/server.rs/client.rs plus docs/SERVICE.md",
    },
    CheckInfo {
        check: CheckId::Baseline,
        layer: "meta",
        contract: "every tidy-baseline.json entry is live, unique, and justified",
        scope: "tidy-baseline.json at the workspace root",
    },
];

/// One finding, anchored to a workspace-relative file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line the finding anchors to.
    pub line: usize,
    /// The check that fired.
    pub check: CheckId,
    /// What is wrong and what to do instead.
    pub message: String,
    /// Stable symbol the finding is about (a qualified function name for
    /// the call-graph checks, a cycle signature for lock-order). Empty
    /// for purely lexical findings. Baseline entries match on
    /// `(check, file, symbol)` so line churn never invalidates them.
    pub symbol: String,
}

impl Diagnostic {
    /// Builds a diagnostic with no symbol (lexical findings).
    pub fn new(file: &str, line: usize, check: CheckId, message: impl Into<String>) -> Self {
        Diagnostic {
            file: file.to_owned(),
            line,
            check,
            message: message.into(),
            symbol: String::new(),
        }
    }

    /// Attaches the stable symbol used for baseline matching.
    pub fn with_symbol(mut self, symbol: impl Into<String>) -> Self {
        self.symbol = symbol.into();
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.check, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_contract() {
        let d = Diagnostic::new("crates/x/src/lib.rs", 7, CheckId::Determinism, "no HashMap");
        assert_eq!(
            d.to_string(),
            "crates/x/src/lib.rs:7: [determinism] no HashMap"
        );
    }

    #[test]
    fn names_round_trip() {
        for check in [
            CheckId::Determinism,
            CheckId::UnsafePolicy,
            CheckId::CrateHeader,
            CheckId::PanicPolicy,
            CheckId::NetPolicy,
            CheckId::Hermeticity,
            CheckId::PanicReach,
            CheckId::DeterminismTaint,
            CheckId::LockOrder,
            CheckId::ForkCoverage,
            CheckId::CowAliasing,
            CheckId::FloatDeterminism,
            CheckId::ThreadLifecycle,
            CheckId::QueueBounds,
            CheckId::ErrorPolicy,
            CheckId::WireSchema,
        ] {
            assert_eq!(CheckId::from_name(check.name()), Some(check));
        }
        assert_eq!(CheckId::from_name("suppression"), None);
        assert_eq!(CheckId::from_name("baseline"), None);
        assert_eq!(CheckId::from_name("bogus"), None);
    }

    #[test]
    fn only_workspace_model_checks_are_semantic() {
        assert!(CheckId::PanicReach.is_semantic());
        assert!(CheckId::DeterminismTaint.is_semantic());
        assert!(CheckId::LockOrder.is_semantic());
        assert!(CheckId::ForkCoverage.is_semantic());
        assert!(CheckId::CowAliasing.is_semantic());
        assert!(CheckId::FloatDeterminism.is_semantic());
        assert!(CheckId::ThreadLifecycle.is_semantic());
        assert!(CheckId::QueueBounds.is_semantic());
        assert!(CheckId::ErrorPolicy.is_semantic());
        assert!(CheckId::WireSchema.is_semantic());
        assert!(!CheckId::Determinism.is_semantic());
        assert!(!CheckId::Baseline.is_semantic());
    }

    #[test]
    fn the_registry_covers_every_check_exactly_once() {
        // CHECK_REGISTRY is in CheckId order and total: strictly
        // ascending ids, one per variant, with the name round-trip
        // confirming each entry is a real check.
        for pair in CHECK_REGISTRY.windows(2) {
            assert!(pair[0].check < pair[1].check, "registry out of order");
        }
        assert_eq!(CHECK_REGISTRY.len(), 18, "new CheckId? register it here");
        for info in CHECK_REGISTRY {
            assert_eq!(
                CheckId::from_name(info.check.name()).is_some(),
                info.check != CheckId::Suppression && info.check != CheckId::Baseline,
                "suppressibility drifted for {}",
                info.check
            );
            assert!(!info.contract.is_empty() && !info.scope.is_empty());
            assert!(matches!(
                info.layer,
                "lexical" | "call-graph" | "field-level" | "concurrency" | "meta"
            ));
        }
        // Semantic checks are exactly the call-graph, field-level, and
        // concurrency layers.
        for info in CHECK_REGISTRY {
            assert_eq!(
                info.check.is_semantic(),
                matches!(info.layer, "call-graph" | "field-level" | "concurrency"),
                "layer/semantic drift for {}",
                info.check
            );
        }
    }
}
