//! Structured diagnostics: `file:line: [check-name] message`.

use std::fmt;

/// The checks this pass can report. The string form (used in diagnostics
/// and in `tidy:allow(...)` suppressions) is kebab-case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckId {
    /// Iteration-order hazards, wall-clock reads, ambient I/O, and
    /// non-seeded RNG construction in simulation-critical crates.
    Determinism,
    /// `unsafe` outside the (currently empty) allowlist, or an allowlisted
    /// block missing its `// SAFETY:` comment.
    UnsafePolicy,
    /// Missing standard lint headers on a `lib.rs`, unjustified
    /// `#[allow(...)]`, or a crate absent from the policy table.
    CrateHeader,
    /// `unwrap()` / `panic!` / `todo!` / `unimplemented!` in library code.
    PanicPolicy,
    /// Socket types (`std::net`) in a crate whose policy row does not
    /// sanction network I/O — the service boundary lives in one crate.
    NetPolicy,
    /// Registry or git dependencies in a `Cargo.toml`.
    Hermeticity,
    /// A malformed, unknown, or unused `tidy:allow` suppression.
    Suppression,
    /// A public API that can transitively reach an undocumented panic
    /// source (call-graph check).
    PanicReach,
    /// A simulation-critical function calling into a host-crate function
    /// that transitively reaches a nondeterminism source (call-graph
    /// check).
    DeterminismTaint,
    /// A potential lock-order cycle, or a lock held across a call into
    /// another lock-taking function (call-graph check).
    LockOrder,
    /// A stale, duplicate, unjustified, or unparsable entry in
    /// `tidy-baseline.json`.
    Baseline,
}

impl CheckId {
    /// The kebab-case name used in diagnostics and suppressions.
    pub fn name(self) -> &'static str {
        match self {
            CheckId::Determinism => "determinism",
            CheckId::UnsafePolicy => "unsafe-policy",
            CheckId::CrateHeader => "crate-header",
            CheckId::PanicPolicy => "panic-policy",
            CheckId::NetPolicy => "net-policy",
            CheckId::Hermeticity => "hermeticity",
            CheckId::Suppression => "suppression",
            CheckId::PanicReach => "panic-reachability",
            CheckId::DeterminismTaint => "determinism-taint",
            CheckId::LockOrder => "lock-order",
            CheckId::Baseline => "baseline",
        }
    }

    /// Resolves a suppression name back to a check. `suppression` and
    /// `baseline` are not suppressible — meta-findings must be fixed, not
    /// silenced.
    pub fn from_name(name: &str) -> Option<CheckId> {
        match name {
            "determinism" => Some(CheckId::Determinism),
            "unsafe-policy" => Some(CheckId::UnsafePolicy),
            "crate-header" => Some(CheckId::CrateHeader),
            "panic-policy" => Some(CheckId::PanicPolicy),
            "net-policy" => Some(CheckId::NetPolicy),
            "hermeticity" => Some(CheckId::Hermeticity),
            "panic-reachability" => Some(CheckId::PanicReach),
            "determinism-taint" => Some(CheckId::DeterminismTaint),
            "lock-order" => Some(CheckId::LockOrder),
            _ => None,
        }
    }

    /// Whether the check is one of the call-graph (semantic) checks —
    /// the only findings the baseline ratchet may carry.
    pub fn is_semantic(self) -> bool {
        matches!(
            self,
            CheckId::PanicReach | CheckId::DeterminismTaint | CheckId::LockOrder
        )
    }
}

impl fmt::Display for CheckId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, anchored to a workspace-relative file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line the finding anchors to.
    pub line: usize,
    /// The check that fired.
    pub check: CheckId,
    /// What is wrong and what to do instead.
    pub message: String,
    /// Stable symbol the finding is about (a qualified function name for
    /// the call-graph checks, a cycle signature for lock-order). Empty
    /// for purely lexical findings. Baseline entries match on
    /// `(check, file, symbol)` so line churn never invalidates them.
    pub symbol: String,
}

impl Diagnostic {
    /// Builds a diagnostic with no symbol (lexical findings).
    pub fn new(file: &str, line: usize, check: CheckId, message: impl Into<String>) -> Self {
        Diagnostic {
            file: file.to_owned(),
            line,
            check,
            message: message.into(),
            symbol: String::new(),
        }
    }

    /// Attaches the stable symbol used for baseline matching.
    pub fn with_symbol(mut self, symbol: impl Into<String>) -> Self {
        self.symbol = symbol.into();
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.check, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_contract() {
        let d = Diagnostic::new("crates/x/src/lib.rs", 7, CheckId::Determinism, "no HashMap");
        assert_eq!(
            d.to_string(),
            "crates/x/src/lib.rs:7: [determinism] no HashMap"
        );
    }

    #[test]
    fn names_round_trip() {
        for check in [
            CheckId::Determinism,
            CheckId::UnsafePolicy,
            CheckId::CrateHeader,
            CheckId::PanicPolicy,
            CheckId::NetPolicy,
            CheckId::Hermeticity,
            CheckId::PanicReach,
            CheckId::DeterminismTaint,
            CheckId::LockOrder,
        ] {
            assert_eq!(CheckId::from_name(check.name()), Some(check));
        }
        assert_eq!(CheckId::from_name("suppression"), None);
        assert_eq!(CheckId::from_name("baseline"), None);
        assert_eq!(CheckId::from_name("bogus"), None);
    }

    #[test]
    fn only_graph_checks_are_semantic() {
        assert!(CheckId::PanicReach.is_semantic());
        assert!(CheckId::DeterminismTaint.is_semantic());
        assert!(CheckId::LockOrder.is_semantic());
        assert!(!CheckId::Determinism.is_semantic());
        assert!(!CheckId::Baseline.is_semantic());
    }
}
