//! Error-policy analysis: swallowed `Result`s in service-crate library
//! code.
//!
//! A long-running daemon that discards a send or I/O error keeps serving
//! a wedged stream as if it were healthy, so in crates with policy
//! `concurrency=true` every discard is a finding:
//!
//! * `let _ = …;` — the classic swallow;
//! * a statement ending in `.ok();` — the same swallow wearing a method;
//! * a statement that drops the result of a workspace `#[must_use]`
//!   function (resolved by simple name when exactly one workspace
//!   function of that name carries the attribute — generic `Result`
//!   returners are rustc's `unused_must_use` lint's job, not ours).
//!
//! Deliberate best-effort discards (socket-tuning hints, wakeup nudges)
//! carry a justified `tidy:allow(error-policy)` naming why losing the
//! error is sound.

use std::collections::BTreeMap;

use crate::checks::lib_code_lines;
use crate::diag::{CheckId, Diagnostic};
use crate::fields::FileInput;
use crate::graph::Workspace;
use crate::parse::CallTarget;

/// Runs both halves, appending raw `(file_idx, diagnostic)` pairs (the
/// driver applies suppressions).
pub fn check(ws: &Workspace, inputs: &[FileInput<'_>], out: &mut Vec<(usize, Diagnostic)>) {
    // Lexical half: `let _ =` and `.ok();` discards.
    for input in inputs {
        if !input.policy.concurrency {
            continue;
        }
        for (lineno, line) in lib_code_lines(input.src) {
            let code = line.code.trim();
            if code.contains("let _ =") {
                out.push((
                    input.file_idx,
                    Diagnostic::new(
                        input.rel,
                        lineno,
                        CheckId::ErrorPolicy,
                        "`let _ =` swallows this result; handle or log the \
                         error, or carry a justified tidy:allow(error-policy) \
                         for a deliberate best-effort discard",
                    )
                    .with_symbol(enclosing_fn(input, lineno)),
                ));
            }
            if code.ends_with(".ok();") {
                out.push((
                    input.file_idx,
                    Diagnostic::new(
                        input.rel,
                        lineno,
                        CheckId::ErrorPolicy,
                        "`.ok()` in statement position discards this error; \
                         handle or log it, or carry a justified \
                         tidy:allow(error-policy)",
                    )
                    .with_symbol(enclosing_fn(input, lineno)),
                ));
            }
        }
    }

    // Semantic half: statement-dropped #[must_use] results.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if f.item.has_must_use {
            by_name.entry(f.item.name.as_str()).or_default().push(id);
        }
    }
    for f in &ws.fns {
        if !f.policy.concurrency {
            continue;
        }
        for call in &f.item.calls {
            if !call.stmt {
                continue;
            }
            let name = match &call.target {
                CallTarget::Free(n) | CallTarget::Method(n) => n.as_str(),
                CallTarget::Path(p) => p.last().map(String::as_str).unwrap_or(""),
            };
            let Some(cands) = by_name.get(name) else {
                continue;
            };
            // Resolution by simple name: only an unambiguous hit fires.
            if cands.len() != 1 {
                continue;
            }
            let callee = &ws.fns[cands[0]];
            out.push((
                f.file_idx,
                Diagnostic::new(
                    &f.rel,
                    call.line,
                    CheckId::ErrorPolicy,
                    format!(
                        "statement drops the #[must_use] result of `{}`; act \
                         on the value or carry a justified \
                         tidy:allow(error-policy)",
                        callee.qual
                    ),
                )
                .with_symbol(format!("{}@{}", f.qual, name)),
            ));
        }
    }
}

/// Name of the innermost function enclosing `lineno` in this file, for
/// the finding's stable symbol (empty outside any function).
fn enclosing_fn(input: &FileInput<'_>, lineno: usize) -> String {
    input
        .model
        .fns
        .iter()
        .rfind(|f| f.line <= lineno && lineno <= f.end_line)
        .map(|f| f.name.clone())
        .unwrap_or_default()
}
