//! The unsafe policy: no `unsafe` anywhere, with an explicit allowlist.
//!
//! The workspace is 100% safe Rust and the allowlist
//! ([`UNSAFE_ALLOWLIST`]) is empty. If a
//! future crate genuinely needs `unsafe` (an accelerator FFI boundary,
//! say), its file goes on the allowlist *and* every block must carry a
//! `// SAFETY:` comment on the block or the lines directly above it —
//! both are enforced here.

use crate::checks::find_token;
use crate::diag::{CheckId, Diagnostic};
use crate::policy::UNSAFE_ALLOWLIST;
use crate::source::SourceFile;

/// How many lines above an allowlisted `unsafe` block may carry the
/// `SAFETY:` comment.
const SAFETY_COMMENT_WINDOW: usize = 3;

/// Scans all code (tests included — memory safety has no test exemption)
/// for `unsafe`.
pub fn check(rel: &str, src: &SourceFile, out: &mut Vec<Diagnostic>) {
    let allowlisted = UNSAFE_ALLOWLIST.contains(&rel);
    for (idx, line) in src.lines.iter().enumerate() {
        if find_token(&line.code, "unsafe").is_none() {
            continue;
        }
        if !allowlisted {
            out.push(Diagnostic::new(
                rel,
                idx + 1,
                CheckId::UnsafePolicy,
                "`unsafe` outside the allowlist (crates/tidy/src/policy.rs); \
                 the workspace is safe Rust by policy",
            ));
            continue;
        }
        let has_safety = (idx.saturating_sub(SAFETY_COMMENT_WINDOW)..=idx)
            .any(|i| src.lines[i].comment.contains("SAFETY:"));
        if !has_safety {
            out.push(Diagnostic::new(
                rel,
                idx + 1,
                CheckId::UnsafePolicy,
                "allowlisted `unsafe` without a `// SAFETY:` comment on the \
                 block or directly above it",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unsafe_everywhere_even_in_tests() {
        let src =
            SourceFile::parse("#[cfg(test)]\nmod tests {\n    fn f() { unsafe { g() } }\n}\n");
        let mut out = Vec::new();
        check("x.rs", &src, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
        assert_eq!(out[0].check, CheckId::UnsafePolicy);
    }

    #[test]
    fn ignores_mentions_in_comments_and_strings() {
        let src = SourceFile::parse("// unsafe in prose\nlet s = \"unsafe\";\n");
        let mut out = Vec::new();
        check("x.rs", &src, &mut out);
        assert!(out.is_empty());
    }
}
