//! Determinism taint: nondeterminism laundered through host-crate calls.
//!
//! The lexical `determinism` check bans wall-clock/ambient-I/O tokens
//! *inside* simulation-critical crates, but a wrapper defeats it: put
//! `Instant::now()` in a host crate (`campaign`, `obs`, …, where the
//! token is legal) and call the wrapper from `core`. This check closes
//! that hole by propagating **taint** — reachability of a determinism
//! source — through the call graph, and flagging every *frontier edge*:
//! a call from a function in a determinism-critical crate to a
//! host-crate function that transitively reaches a source.
//!
//! Flagging only the frontier keeps one laundering chain to one finding
//! (anchored at the critical-side call, where the fix belongs) instead of
//! re-flagging every function above it. Sanctioned boundaries — e.g. obs
//! instrumentation that reads wall time for spans but never feeds results
//! back into the model — carry a justified `tidy:allow(determinism-taint)`
//! on the callee's signature line, which is a propagation **barrier**.
//! Sources under a justified `tidy:allow(determinism)` are already trusted
//! by the parser and never taint.

use crate::checks::SuppressionOracle;
use crate::diag::{CheckId, Diagnostic};
use crate::graph::Workspace;

/// Runs the check over the workspace graph, appending post-suppression
/// findings to `out`.
pub fn check(ws: &Workspace, supp: &mut dyn SuppressionOracle, out: &mut Vec<Diagnostic>) {
    let n = ws.fns.len();
    let direct: Vec<bool> = ws
        .fns
        .iter()
        .map(|f| !f.item.det_sources.is_empty())
        .collect();

    // Like panic-reachability: consume barrier suppressions only on
    // functions that are genuinely tainted, so stray ones stay "unused".
    let tainted0 = taint_fixpoint(ws, &direct, &[]);
    let mut barrier = vec![false; n];
    for id in ws.ids() {
        if tainted0[id]
            && supp.suppressed(
                ws.fns[id].file_idx,
                ws.fns[id].item.line,
                CheckId::DeterminismTaint,
            )
        {
            barrier[id] = true;
        }
    }
    let tainted = taint_fixpoint(ws, &direct, &barrier);

    // Frontier edges, deduplicated to one finding per (caller, callee)
    // pair at the first call site.
    let mut flagged: std::collections::BTreeSet<(usize, usize)> = std::collections::BTreeSet::new();
    for id in ws.ids() {
        let caller = &ws.fns[id];
        if !caller.policy.determinism {
            continue;
        }
        for &(callee, line, _) in &caller.edges {
            let target = &ws.fns[callee];
            if target.policy.determinism || !tainted[callee] || barrier[callee] {
                continue;
            }
            if !flagged.insert((id, callee)) {
                continue;
            }
            if supp.suppressed(caller.file_idx, line, CheckId::DeterminismTaint) {
                continue;
            }
            let Some((path, src_id, site_line, what)) =
                witness(ws, callee, &direct, &tainted, &barrier)
            else {
                continue; // unreachable: tainted[callee] implies a witness
            };
            let via = if path.len() > 1 {
                let hops: Vec<String> = path[1..]
                    .iter()
                    .map(|&p| format!("`{}`", ws.fns[p].qual))
                    .collect();
                format!(" via {}", hops.join(" -> "))
            } else {
                String::new()
            };
            out.push(
                Diagnostic::new(
                    &caller.rel,
                    line,
                    CheckId::DeterminismTaint,
                    format!(
                        "simulation-critical `{}` calls `{}`, which reaches nondeterminism \
                         source `{}` at {}:{}{via}: thread the value in explicitly, or mark \
                         the callee's signature with a justified tidy:allow(determinism-taint) \
                         if the nondeterminism provably never feeds back into the model",
                        caller.qual, target.qual, what, ws.fns[src_id].rel, site_line
                    ),
                )
                .with_symbol(format!("{} -> {}", caller.qual, target.qual)),
            );
        }
    }
}

/// Backward fixpoint: `tainted[i]` iff `i` has a direct source or calls a
/// non-barrier function that is tainted.
fn taint_fixpoint(ws: &Workspace, direct: &[bool], barrier: &[bool]) -> Vec<bool> {
    let n = ws.fns.len();
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for id in 0..n {
        for &(callee, _, _) in &ws.fns[id].edges {
            rev[callee].push(id);
        }
    }
    let mut tainted = direct.to_vec();
    let mut work: Vec<usize> = (0..n).filter(|&i| tainted[i]).collect();
    while let Some(j) = work.pop() {
        if barrier.get(j).copied().unwrap_or(false) {
            continue;
        }
        for &i in &rev[j] {
            if !tainted[i] {
                tainted[i] = true;
                work.push(i);
            }
        }
    }
    tainted
}

/// Shortest chain from `start` to a direct source, in deterministic edge
/// order. Returns the path (starting at `start`), the source-holding
/// function, and the source's line/description.
fn witness(
    ws: &Workspace,
    start: usize,
    direct: &[bool],
    tainted: &[bool],
    barrier: &[bool],
) -> Option<(Vec<usize>, usize, usize, String)> {
    let n = ws.fns.len();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    while let Some(at) = queue.pop_front() {
        if direct[at] {
            let mut path = vec![at];
            while let Some(p) = parent[path[path.len() - 1]] {
                path.push(p);
            }
            path.reverse();
            let site = &ws.fns[at].item.det_sources[0];
            return Some((path, at, site.line, site.what.clone()));
        }
        for &(callee, _, _) in &ws.fns[at].edges {
            if !seen[callee] && tainted[callee] && !barrier[callee] {
                seen[callee] = true;
                parent[callee] = Some(at);
                queue.push_back(callee);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphInput, Workspace};
    use crate::parse::FileModel;
    use crate::policy::{policy_for_dir, CratePolicy};
    use crate::source::SourceFile;

    struct NoSupp;
    impl SuppressionOracle for NoSupp {
        fn suppressed(&mut self, _: usize, _: usize, _: CheckId) -> bool {
            false
        }
    }

    fn run(files: &[(&str, &str, &str)]) -> Vec<Diagnostic> {
        let parsed: Vec<(&str, &'static CratePolicy, FileModel)> = files
            .iter()
            .map(|(dir, rel, text)| {
                let policy = policy_for_dir(dir).expect("registered dir");
                let model = FileModel::parse(rel, &SourceFile::parse(text));
                (*rel, policy, model)
            })
            .collect();
        let inputs: Vec<GraphInput<'_>> = parsed
            .iter()
            .enumerate()
            .map(|(i, (rel, policy, model))| GraphInput {
                rel,
                file_idx: i,
                policy,
                model,
            })
            .collect();
        let ws = Workspace::build(&inputs);
        let mut out = Vec::new();
        check(&ws, &mut NoSupp, &mut out);
        out
    }

    #[test]
    fn laundering_through_a_host_wrapper_is_flagged_at_the_call() {
        let d = run(&[
            (
                "crates/core",
                "crates/core/src/lib.rs",
                "use eaao_campaign::wall_now;\npub fn place() {\n    let _t = wall_now();\n}\n",
            ),
            (
                "crates/campaign",
                "crates/campaign/src/lib.rs",
                "pub fn wall_now() -> u64 {\n    inner()\n}\nfn inner() -> u64 {\n    let _i = std::time::Instant::now();\n    0\n}\n",
            ),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].file, "crates/core/src/lib.rs");
        assert_eq!(d[0].line, 3);
        assert_eq!(d[0].symbol, "eaao_core::place -> eaao_campaign::wall_now");
        assert!(d[0].message.contains("Instant"), "{}", d[0].message);
    }

    #[test]
    fn host_to_host_calls_are_not_frontier_edges() {
        let d = run(&[(
            "crates/campaign",
            "crates/campaign/src/lib.rs",
            "pub fn run() {\n    stamp();\n}\nfn stamp() {\n    let _i = std::time::Instant::now();\n}\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn untainted_host_calls_are_fine() {
        let d = run(&[
            (
                "crates/core",
                "crates/core/src/lib.rs",
                "use eaao_campaign::pure;\npub fn place() {\n    pure();\n}\n",
            ),
            (
                "crates/campaign",
                "crates/campaign/src/lib.rs",
                "pub fn pure() -> u64 {\n    42\n}\n",
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }
}
