//! Panic-reachability: public APIs that can transitively reach a panic.
//!
//! The lexical `panic-policy` check sees `unwrap()` on the line it is
//! written; this check follows the call graph, so a `pub fn` that calls a
//! private helper that calls something that slices with a non-literal
//! index is still on the hook. Panic **sources** are `panic!`, `todo!`,
//! `unimplemented!`, bare `unwrap()`, and non-literal indexing (`xs[i]`;
//! `xs[0]` and range slices are exempt). `expect("...")` is deliberately
//! *not* a source: it is the sanctioned spelling for checked invariants.
//!
//! Propagation stops at **barriers**: a function whose docs carry a
//! `# Panics` section (the contract is stated — callers can read it), or
//! one whose signature line carries a justified
//! `tidy:allow(panic-reachability)`. Only `pub` functions are required to
//! document; private helpers merely conduct reachability.

use crate::checks::SuppressionOracle;
use crate::diag::{CheckId, Diagnostic};
use crate::graph::Workspace;

/// Runs the check over the workspace graph, appending post-suppression
/// findings to `out`.
pub fn check(ws: &Workspace, supp: &mut dyn SuppressionOracle, out: &mut Vec<Diagnostic>) {
    let n = ws.fns.len();
    let direct: Vec<bool> = ws
        .fns
        .iter()
        .map(|f| !f.item.panic_sources.is_empty())
        .collect();
    let doc_barrier: Vec<bool> = ws.fns.iter().map(|f| f.item.has_panics_doc).collect();

    // First pass ignores suppression barriers so we only consume a
    // suppression on a function that genuinely reaches a panic — a
    // panic-reachability suppression on a panic-free function stays
    // unused and is flagged by the suppression meta-check.
    let reach0 = reach_fixpoint(ws, &direct, &doc_barrier);
    let mut barrier = doc_barrier.clone();
    let mut self_suppressed = vec![false; n];
    for id in ws.ids() {
        if reach0[id]
            && supp.suppressed(
                ws.fns[id].file_idx,
                ws.fns[id].item.line,
                CheckId::PanicReach,
            )
        {
            barrier[id] = true;
            self_suppressed[id] = true;
        }
    }
    let reach = reach_fixpoint(ws, &direct, &barrier);

    for id in ws.ids() {
        let f = &ws.fns[id];
        if !ws.is_public_api(id)
            || !f.item.has_body
            || f.item.has_panics_doc
            || self_suppressed[id]
            || !reach[id]
        {
            continue;
        }
        let Some((path, src_id, site_line, what)) = witness(ws, id, &direct, &reach, &barrier)
        else {
            continue; // unreachable: reach[id] implies a witness exists
        };
        let via = if path.len() > 1 {
            let hops: Vec<String> = path[1..]
                .iter()
                .map(|&p| format!("`{}`", ws.fns[p].qual))
                .collect();
            format!(" via {}", hops.join(" -> "))
        } else {
            String::new()
        };
        out.push(
            Diagnostic::new(
                &f.rel,
                f.item.line,
                CheckId::PanicReach,
                format!(
                    "public `{}` can reach a panic (`{}` at {}:{}){via}: document it with a \
                     `# Panics` section, or suppress/baseline with a justification",
                    f.qual, what, ws.fns[src_id].rel, site_line
                ),
            )
            .with_symbol(&f.qual),
        );
    }
}

/// Backward fixpoint: `reach[i]` iff `i` has a direct source or calls a
/// non-barrier function that reaches one.
fn reach_fixpoint(ws: &Workspace, direct: &[bool], barrier: &[bool]) -> Vec<bool> {
    let n = ws.fns.len();
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for id in 0..n {
        for &(callee, _, _) in &ws.fns[id].edges {
            rev[callee].push(id);
        }
    }
    let mut reach = direct.to_vec();
    let mut work: Vec<usize> = (0..n).filter(|&i| reach[i]).collect();
    while let Some(j) = work.pop() {
        if barrier[j] {
            continue; // reachability does not escape a documented/suppressed fn
        }
        for &i in &rev[j] {
            if !reach[i] {
                reach[i] = true;
                work.push(i);
            }
        }
    }
    reach
}

/// Shortest witness from `id` to a direct source, walking edges in
/// deterministic order. Returns the call path (starting at `id`), the
/// function holding the source, and the source's line/description.
fn witness(
    ws: &Workspace,
    id: usize,
    direct: &[bool],
    reach: &[bool],
    barrier: &[bool],
) -> Option<(Vec<usize>, usize, usize, String)> {
    let n = ws.fns.len();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[id] = true;
    queue.push_back(id);
    while let Some(at) = queue.pop_front() {
        if direct[at] {
            let mut path = vec![at];
            while let Some(p) = parent[path[path.len() - 1]] {
                path.push(p);
            }
            path.reverse();
            let site = &ws.fns[at].item.panic_sources[0];
            return Some((path, at, site.line, site.what.clone()));
        }
        for &(callee, _, _) in &ws.fns[at].edges {
            if !seen[callee] && reach[callee] && !barrier[callee] {
                seen[callee] = true;
                parent[callee] = Some(at);
                queue.push_back(callee);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphInput, Workspace};
    use crate::parse::FileModel;
    use crate::policy::policy_for_dir;
    use crate::source::SourceFile;

    struct NoSupp;
    impl SuppressionOracle for NoSupp {
        fn suppressed(&mut self, _: usize, _: usize, _: CheckId) -> bool {
            false
        }
    }

    fn run(text: &str) -> Vec<Diagnostic> {
        let policy = policy_for_dir("crates/core").expect("registered");
        let src = SourceFile::parse(text);
        let model = FileModel::parse("crates/core/src/lib.rs", &src);
        let inputs = [GraphInput {
            rel: "crates/core/src/lib.rs",
            file_idx: 0,
            policy,
            model: &model,
        }];
        let ws = Workspace::build(&inputs);
        let mut out = Vec::new();
        check(&ws, &mut NoSupp, &mut out);
        out
    }

    #[test]
    fn two_hop_reachability_is_flagged_with_a_witness() {
        let d = run(
            "pub fn api() {\n    mid();\n}\nfn mid() {\n    deep();\n}\nfn deep(xs: &[u32], i: usize) -> u32 {\n    xs[i]\n}\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
        assert_eq!(d[0].symbol, "eaao_core::api");
        assert!(d[0].message.contains("slice indexing"), "{}", d[0].message);
        assert!(
            d[0].message
                .contains("`eaao_core::mid` -> `eaao_core::deep`"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn panics_doc_is_an_absorbing_barrier() {
        // `mid` documents its panic: neither it (documented) nor `api`
        // (shielded by the barrier) is flagged.
        let d = run(
            "pub fn api() {\n    mid();\n}\n/// # Panics\n/// When out of range.\npub fn mid(xs: &[u32], i: usize) -> u32 {\n    xs[i]\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn private_functions_are_not_required_to_document() {
        let d = run("fn quiet() {\n    panic!(\"boom\");\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn expect_is_not_a_source() {
        let d = run("pub fn api(x: Option<u32>) -> u32 {\n    x.expect(\"checked above\")\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }
}
