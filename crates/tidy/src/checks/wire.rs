//! Wire-schema conformance: the protocol enums, the peers, and the docs
//! must agree.
//!
//! The service wire protocol is defined once, in the service crate's
//! `src/proto.rs` (`ClientFrame`/`ServerFrame`), but *used* in three
//! places that can silently drift: the server must handle every client
//! frame, the client must handle every server frame, and the frame
//! tables in `docs/SERVICE.md` are the operator-facing contract. This
//! check cross-references all three:
//!
//! * every `ClientFrame` variant must appear as a `ClientFrame::V` token
//!   in `src/server.rs` (and `ServerFrame` in `src/client.rs`) — an
//!   unmatched variant is exactly the frame a peer answers with a
//!   runtime `Garbage`/`Error` instead of a compile- or tidy-time
//!   failure;
//! * every variant must appear in the `docs/SERVICE.md` table annotated
//!   `<!-- tidy:wire-schema frames: EnumName -->`, and every documented
//!   frame must still exist — the marker declares the table as this
//!   check's source of truth.
//!
//! Findings anchor in `proto.rs` (the variant or enum line) so the fix
//! and the finding live where the schema is defined.

use crate::checks::{find_token, lib_code_lines};
use crate::diag::{CheckId, Diagnostic};
use crate::fields::FileInput;
use crate::parse::TypeDefKind;

/// The wire enums and the peer source file that must handle each.
const ENUMS: &[(&str, &str)] = &[
    ("ClientFrame", "src/server.rs"),
    ("ServerFrame", "src/client.rs"),
];

/// Runs the check, appending raw `(file_idx, diagnostic)` pairs (the
/// driver applies suppressions). `service_doc` is the contents of
/// `docs/SERVICE.md`, when present.
pub fn check(
    inputs: &[FileInput<'_>],
    service_doc: Option<&str>,
    out: &mut Vec<(usize, Diagnostic)>,
) {
    let Some(proto) = inputs
        .iter()
        .find(|i| i.policy.net && i.rel.ends_with("src/proto.rs"))
    else {
        return;
    };
    for &(enum_name, peer_suffix) in ENUMS {
        let Some(def) = proto
            .model
            .structs
            .iter()
            .find(|s| s.name == enum_name && s.kind == TypeDefKind::Enum)
        else {
            continue;
        };

        // Half 1: every variant is named somewhere in the peer's library
        // code (a match arm or a construction — either proves the peer
        // knows the frame exists).
        if let Some(peer) = inputs
            .iter()
            .find(|i| i.policy.net && i.rel.ends_with(peer_suffix))
        {
            for v in &def.fields {
                let pat = format!("{enum_name}::{}", v.name);
                let handled = lib_code_lines(peer.src)
                    .any(|(_, line)| find_token(&line.code, &pat).is_some());
                if !handled {
                    out.push((
                        proto.file_idx,
                        Diagnostic::new(
                            proto.rel,
                            v.line,
                            CheckId::WireSchema,
                            format!(
                                "wire frame `{pat}` is never named in {}; an \
                                 unhandled frame surfaces as a runtime protocol \
                                 error instead of a tidy finding",
                                peer.rel
                            ),
                        )
                        .with_symbol(&pat),
                    ));
                }
            }
        }

        // Half 2: the annotated frame table in docs/SERVICE.md.
        match service_doc.map(|doc| doc_frames(doc, enum_name)) {
            Some(Some(documented)) => {
                for v in &def.fields {
                    if !documented.contains(&v.name) {
                        out.push((
                            proto.file_idx,
                            Diagnostic::new(
                                proto.rel,
                                v.line,
                                CheckId::WireSchema,
                                format!(
                                    "wire frame `{enum_name}::{}` is missing from \
                                     the docs/SERVICE.md frame table (the \
                                     `tidy:wire-schema frames: {enum_name}` \
                                     table is the documented contract)",
                                    v.name
                                ),
                            )
                            .with_symbol(format!("{enum_name}::{}", v.name)),
                        ));
                    }
                }
                for name in &documented {
                    if !def.fields.iter().any(|v| &v.name == name) {
                        out.push((
                            proto.file_idx,
                            Diagnostic::new(
                                proto.rel,
                                def.line,
                                CheckId::WireSchema,
                                format!(
                                    "docs/SERVICE.md documents a `{enum_name}` \
                                     frame `{name}` that no longer exists in \
                                     proto.rs"
                                ),
                            )
                            .with_symbol(format!("{enum_name}::{name}")),
                        ));
                    }
                }
            }
            Some(None) | None => {
                out.push((
                    proto.file_idx,
                    Diagnostic::new(
                        proto.rel,
                        def.line,
                        CheckId::WireSchema,
                        format!(
                            "docs/SERVICE.md has no frame table annotated \
                             `<!-- tidy:wire-schema frames: {enum_name} -->`; \
                             the wire contract must be documented where this \
                             check can hold it to the enum"
                        ),
                    )
                    .with_symbol(enum_name),
                ));
            }
        }
    }
}

/// Extracts the frame names from the markdown table following the
/// `<!-- tidy:wire-schema frames: enum_name -->` marker: the leading
/// identifier of each row's first backticked cell. `None` when the
/// marker is absent.
fn doc_frames(doc: &str, enum_name: &str) -> Option<Vec<String>> {
    let marker = format!("<!-- tidy:wire-schema frames: {enum_name} -->");
    let mut lines = doc.lines();
    lines.find(|l| l.trim() == marker)?;
    let mut frames = Vec::new();
    let mut in_table = false;
    for line in lines {
        let t = line.trim();
        if !t.starts_with('|') {
            if in_table {
                break; // the table ended
            }
            continue; // prose between the marker and the table
        }
        in_table = true;
        let Some(cell) = t.trim_start_matches('|').split('|').next() else {
            continue;
        };
        // Header and separator rows have no backticked cell.
        let Some(name) = cell.trim().strip_prefix('`') else {
            continue;
        };
        let name: String = name
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.chars().next().is_some_and(char::is_uppercase) {
            frames.push(name);
        }
    }
    Some(frames)
}
