//! `float-determinism`: keep order-sensitive float math out of the
//! simulation-critical crates.
//!
//! The differential oracle replays trajectories byte-for-byte, so any
//! float computation whose result depends on evaluation order — or whose
//! rounding is decided implicitly — is a latent divergence. Three shapes
//! are findings in crates with `float_det: true`:
//!
//! - **Unordered reductions**: `.sum::<f64>()`, `.product::<f64>()` (and
//!   the `f32` forms), or `.fold(` seeded with a float literal. Summation
//!   order changes the result in the last ulps; the fixed-point lanes
//!   (`u64` ticks, `mul_div`) reduce exactly in any order.
//! - **Float equality**: `==`/`!=` with a float literal or a
//!   known-float identifier as an operand. Equality after arithmetic is
//!   representation-dependent; compare in fixed point or use an explicit
//!   tolerance (and suppress with it named).
//! - **Truncating casts**: `as` from a float expression to an integer
//!   type. `as` rounds toward zero silently; fingerprint/popularity math
//!   must route through the fixed-point helpers so the rounding rule is
//!   written down.
//!
//! "Known-float identifiers" are collected per file from `name: f64` /
//! `name: f32` annotations (fields, params, lets) — deliberately shallow,
//! like every other lexical layer in this tool: no type inference, just
//! enough signal to anchor a witness. Symbols are
//! `{Type::}fn#kind[/ordinal]`, so baseline entries survive line churn.

use std::collections::BTreeMap;

use crate::checks::find_token;
use crate::diag::{CheckId, Diagnostic};
use crate::fields::FileInput;

/// Unordered-reduction tokens, matched with identifier boundaries.
const REDUCERS: &[&str] = &[
    "sum::<f64>",
    "sum::<f32>",
    "product::<f64>",
    "product::<f32>",
];

/// Integer destinations of a truncating cast.
const INT_TYPES: &[&str] = &[
    "i128", "i16", "i32", "i64", "i8", "isize", "u128", "u16", "u32", "u64", "u8", "usize",
];

/// Runs the per-file scan, appending raw `(file_idx, finding)` pairs.
pub fn check(input: &FileInput<'_>, out: &mut Vec<(usize, Diagnostic)>) {
    let floats = known_floats(input);
    let mut ordinals: BTreeMap<String, usize> = BTreeMap::new();
    for (lineno, line) in crate::checks::lib_code_lines(input.src) {
        let code = &line.code;
        let mut push = |kind: &str, message: String, out: &mut Vec<(usize, Diagnostic)>| {
            let base = format!("{}#{kind}", fn_symbol(input, lineno));
            let n = ordinals.entry(base.clone()).or_insert(0);
            *n += 1;
            let symbol = if *n == 1 { base } else { format!("{base}/{n}") };
            out.push((
                input.file_idx,
                Diagnostic::new(input.rel, lineno, CheckId::FloatDeterminism, message)
                    .with_symbol(symbol),
            ));
        };
        if let Some(tok) = REDUCERS.iter().find(|t| code.contains(*t)) {
            push(
                "reduction",
                format!(
                    "unordered float reduction `.{tok}()`: summation order changes \
                     the result — reduce in the fixed-point lanes (u64 ticks, \
                     mul_div) or document the ordering and suppress"
                ),
                out,
            );
        } else if let Some(seed) = float_fold_seed(code) {
            push(
                "reduction",
                format!(
                    "float `fold` seeded with `{seed}`: accumulation order changes \
                     the result — reduce in the fixed-point lanes or document the \
                     ordering and suppress"
                ),
                out,
            );
        }
        for (op_at, op) in eq_operators(code) {
            if let Some(operand) = float_operand(code, op_at, op.len(), &floats) {
                push(
                    "eq",
                    format!(
                        "float `{op}` comparison against `{operand}`: equality after \
                         float arithmetic is representation-dependent — compare in \
                         fixed point or with an explicit tolerance"
                    ),
                    out,
                );
            }
        }
        for target in truncating_casts(code, &floats) {
            push(
                "cast",
                format!(
                    "truncating `as {target}` cast from a float: `as` rounds toward \
                     zero silently — route through the fixed-point helpers so the \
                     rounding rule is explicit"
                ),
                out,
            );
        }
    }
}

/// Identifiers annotated `: f64` / `: f32` anywhere in the file's
/// non-test code.
fn known_floats(input: &FileInput<'_>) -> std::collections::BTreeSet<String> {
    let mut floats = std::collections::BTreeSet::new();
    for (_, line) in crate::checks::lib_code_lines(input.src) {
        let code = &line.code;
        for float_ty in ["f64", "f32"] {
            let mut from = 0;
            while let Some(at) = find_token(&code[from..], float_ty) {
                let at = from + at;
                from = at + float_ty.len();
                // Walk back over `:` and whitespace to the identifier.
                let before = code[..at].trim_end();
                let Some(before) = before.strip_suffix(':') else {
                    continue;
                };
                let before = before.trim_end();
                let ident: String = before
                    .chars()
                    .rev()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                if !ident.is_empty() && !ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                    floats.insert(ident);
                }
            }
        }
    }
    floats
}

/// The innermost function containing `lineno`, as `Type::name` / `name`,
/// or `<file>` at module scope.
fn fn_symbol(input: &FileInput<'_>, lineno: usize) -> String {
    let mut best: Option<(usize, String)> = None;
    for f in &input.model.fns {
        if !f.has_body || lineno < f.line || lineno > f.end_line {
            continue;
        }
        let span = f.end_line - f.line;
        let name = match &f.type_ctx {
            Some(ty) => format!("{ty}::{}", f.name),
            None => f.name.clone(),
        };
        if best.as_ref().is_none_or(|(s, _)| span < *s) {
            best = Some((span, name));
        }
    }
    best.map_or_else(|| "<file>".to_owned(), |(_, name)| name)
}

/// If the line calls `.fold(` with a float-literal seed, returns the seed.
fn float_fold_seed(code: &str) -> Option<&str> {
    let at = code.find(".fold(")?;
    let after = code[at + ".fold(".len()..].trim_start();
    let lit_len = float_literal_len(after)?;
    Some(&after[..lit_len])
}

/// Length of a leading float literal (`0.0`, `1.5e3`, `1f64`), if any.
fn float_literal_len(s: &str) -> Option<usize> {
    let digits = s.chars().take_while(|c| c.is_ascii_digit()).count();
    if digits == 0 {
        return None;
    }
    let rest = &s[digits..];
    if let Some(frac) = rest.strip_prefix('.') {
        let frac_digits = frac.chars().take_while(|c| c.is_ascii_digit()).count();
        if frac_digits > 0 {
            return Some(digits + 1 + frac_digits + suffix_len(&frac[frac_digits..]));
        }
        None
    } else if rest.starts_with("f64") || rest.starts_with("f32") {
        Some(digits + 3)
    } else {
        None
    }
}

/// Length of an exponent/suffix tail (`e3`, `_f64`) after a fraction.
fn suffix_len(s: &str) -> usize {
    let mut n = 0;
    if s.starts_with('e') || s.starts_with('E') {
        let mut k = 1;
        if s[1..].starts_with('+') || s[1..].starts_with('-') {
            k += 1;
        }
        let digits = s[k..].chars().take_while(|c| c.is_ascii_digit()).count();
        if digits > 0 {
            n = k + digits;
        }
    }
    if s[n..].starts_with("f64") || s[n..].starts_with("f32") {
        n += 3;
    } else if s[n..].starts_with("_f64") || s[n..].starts_with("_f32") {
        n += 4;
    }
    n
}

/// `==` / `!=` occurrences that are genuinely comparison operators (not
/// `<=`, `>=`, `=>`, or `===`-like runs).
fn eq_operators(code: &str) -> Vec<(usize, &'static str)> {
    let bytes = code.as_bytes();
    let mut ops = Vec::new();
    for (at, pair) in bytes.windows(2).enumerate() {
        let op = match pair {
            b"==" => "==",
            b"!=" => "!=",
            _ => continue,
        };
        let before_ok = at == 0 || !matches!(bytes[at - 1], b'<' | b'>' | b'=' | b'!');
        let after_ok = at + 2 >= bytes.len() || bytes[at + 2] != b'=';
        if before_ok && after_ok {
            ops.push((at, op));
        }
    }
    ops
}

/// The float operand adjacent to an operator at `op_at`, if either side
/// is a float literal or a known-float identifier.
fn float_operand<'c>(
    code: &'c str,
    op_at: usize,
    op_len: usize,
    floats: &std::collections::BTreeSet<String>,
) -> Option<&'c str> {
    // Right side: leading literal or identifier after the operator.
    let right = code[op_at + op_len..].trim_start();
    if let Some(n) = float_literal_len(right) {
        return Some(&right[..n]);
    }
    let ident_len = right
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .count();
    if ident_len > 0 && floats.contains(&right[..ident_len]) {
        return Some(&right[..ident_len]);
    }
    // Left side: trailing literal or identifier before the operator.
    let left = code[..op_at].trim_end();
    let tail_start = left
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_alphanumeric() || *c == '_' || *c == '.')
        .last()
        .map(|(i, _)| i)?;
    let tail = &left[tail_start..];
    if float_literal_len(tail).is_some_and(|n| n == tail.len()) {
        return Some(tail);
    }
    if !tail.contains('.') && floats.contains(tail) {
        return Some(tail);
    }
    None
}

/// Integer-type names cast to on this line from a float source: the
/// token before `as` is a float literal or known-float identifier, or a
/// `)` on a line with float evidence.
fn truncating_casts<'c>(
    code: &'c str,
    floats: &std::collections::BTreeSet<String>,
) -> Vec<&'c str> {
    let mut found = Vec::new();
    let mut from = 0;
    while let Some(rel) = find_token(&code[from..], "as") {
        let at = from + rel;
        from = at + 2;
        let after = code[at + 2..].trim_start();
        let Some(target) = INT_TYPES
            .iter()
            .find(|t| after.starts_with(**t) && find_token(after, t) == Some(0))
        else {
            continue;
        };
        let left = code[..at].trim_end();
        let tail_start = left
            .char_indices()
            .rev()
            .take_while(|(_, c)| c.is_alphanumeric() || *c == '_' || *c == '.')
            .last()
            .map(|(i, _)| i);
        let is_float_source = match tail_start {
            Some(i) => {
                let tail = &left[i..];
                float_literal_len(tail).is_some_and(|n| n == tail.len())
                    || (!tail.contains('.') && floats.contains(tail))
                    || tail.ends_with(".floor()")
                    || tail.ends_with(".ceil()")
                    || tail.ends_with(".round()")
            }
            // `(a / b) as u64`: only with float evidence on the line.
            None if left.ends_with(')') => {
                floats.iter().any(|f| find_token(left, f).is_some())
                    || find_token(left, "f64").is_some()
                    || find_token(left, "f32").is_some()
            }
            None => false,
        };
        if is_float_source {
            found.push(*target);
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::FileModel;
    use crate::policy::policy_for_dir;
    use crate::source::SourceFile;

    fn run(text: &str) -> Vec<Diagnostic> {
        let src = SourceFile::parse(text);
        let rel = "crates/simcore/src/stats.rs";
        let model = FileModel::parse(rel, &src);
        let input = FileInput {
            rel,
            file_idx: 0,
            policy: policy_for_dir("crates/simcore").expect("registered"),
            src: &src,
            model: &model,
        };
        let mut out = Vec::new();
        check(&input, &mut out);
        out.into_iter().map(|(_, d)| d).collect()
    }

    #[test]
    fn unordered_reductions_are_flagged() {
        let out = run("pub fn mean(xs: &[f64]) -> f64 {\n    \
             let total: f64 = xs.iter().sum::<f64>();\n    \
             let alt = xs.iter().fold(0.0, |a, b| a + b);\n    \
             total + alt\n}\n");
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].line, 2);
        assert_eq!(out[0].symbol, "mean#reduction");
        assert!(out[0].message.contains("sum::<f64>"));
        assert_eq!(out[1].line, 3);
        assert_eq!(out[1].symbol, "mean#reduction/2");
        assert!(out[1].message.contains("`0.0`"));
    }

    #[test]
    fn float_equality_is_flagged_for_literals_and_known_idents() {
        let out = run("pub fn check(share: f64, total: u64) -> bool {\n    \
             if share == 0.5 {\n        return true;\n    }\n    \
             let exact = 1.0 != share;\n    \
             exact && total == 0\n}\n");
        // Line 2: rhs literal. Line 5: lhs literal (and rhs known ident).
        // Line 6: integer compare, clean.
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].line, out[0].symbol.as_str()), (2, "check#eq"));
        assert!(out[0].message.contains("`0.5`"));
        assert_eq!(out[1].line, 5);
        assert!(out[1].message.contains("`!=`"));
    }

    #[test]
    fn truncating_casts_need_a_float_source() {
        let out = run("pub fn quantize(share: f64, ticks: u64) -> u64 {\n    \
             let a = share as u64;\n    \
             let b = (share * 1000.0) as u64;\n    \
             let c = ticks as u32;\n    \
             a + b + u64::from(c)\n}\n");
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].line, 2);
        assert_eq!(out[0].symbol, "quantize#cast");
        assert_eq!(out[1].line, 3);
        assert_eq!(out[1].symbol, "quantize#cast/2");
        assert!(out[1].message.contains("as u64"));
    }

    #[test]
    fn fixed_point_math_is_clean() {
        let out = run("pub fn mul_div(a: u64, b: u64, d: u64) -> u64 {\n    \
             let wide = u128::from(a) * u128::from(b);\n    \
             (wide / u128::from(d)) as u64\n}\n\
             pub fn total(xs: &[u64]) -> u64 {\n    \
             xs.iter().sum::<u64>()\n}\n");
        assert!(out.is_empty(), "got {:?}", out);
    }

    #[test]
    fn comparisons_against_version_paths_and_ints_are_clean() {
        let out = run("pub fn pick(kind: u32, name: &str) -> bool {\n    \
             kind == 3 && name.len() != 0\n}\n");
        assert!(out.is_empty(), "got {:?}", out);
    }

    #[test]
    fn module_scope_findings_get_the_file_symbol() {
        let out = run("pub const SHARE: bool = 0.5 == 0.5;\n");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].symbol, "<file>#eq");
    }
}
