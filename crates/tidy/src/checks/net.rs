//! The net-policy check: network I/O stays in the service crate.
//!
//! `eaao-serve` exists so that exactly one crate owns the socket surface —
//! its policy row carries `net: true` and nothing else does. Everywhere
//! else, a `std::net` import (or a bare socket type smuggled in through a
//! `use` rename) means the service boundary leaked: simulation crates
//! would stop being deterministic, and host tools would grow an ambient
//! network dependency nobody audits. The simulation crates already ban
//! `std::net` through the determinism check; this check extends the ban
//! to the host-tool crates (`campaign`, `obs`, `bench`, `tidy`, the root
//! facade) whose policy rows have `determinism: false`.

use crate::checks::find_token;
use crate::diag::{CheckId, Diagnostic};
use crate::source::SourceFile;

/// Banned token → remedy. Matched with identifier boundaries against
/// masked code, so mentions in comments, docs, and string literals are
/// fine. The bare type names catch `use std::net::TcpStream` call sites
/// even when the import itself sits in another file.
pub const BANNED: &[(&str, &str)] = &[
    (
        "std::net",
        "network I/O lives in eaao-serve; route socket work through the service crate",
    ),
    (
        "TcpListener",
        "socket type outside the service crate; accept loops belong in eaao-serve",
    ),
    (
        "TcpStream",
        "socket type outside the service crate; connections belong in eaao-serve",
    ),
    (
        "UdpSocket",
        "socket type outside the service crate; sockets belong in eaao-serve",
    ),
];

/// Scans non-test library code of a `net: false` crate for socket tokens.
pub fn check(rel: &str, src: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (idx, line) in src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for &(token, remedy) in BANNED {
            if find_token(&line.code, token).is_some() {
                out.push(Diagnostic::new(
                    rel,
                    idx + 1,
                    CheckId::NetPolicy,
                    format!("`{token}` in a crate not sanctioned for network I/O: {remedy}"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(text: &str) -> Vec<Diagnostic> {
        let src = SourceFile::parse(text);
        let mut out = Vec::new();
        check("x.rs", &src, &mut out);
        out
    }

    #[test]
    fn flags_imports_and_bare_types() {
        let d = run(
            "use std::net::TcpListener;\nfn dial(s: TcpStream) {}\nlet u = UdpSocket::bind(a);\n",
        );
        let lines: Vec<usize> = d.iter().map(|d| d.line).collect();
        // Line 1 carries both the `std::net` path and the `TcpListener` type.
        assert_eq!(lines, vec![1, 1, 2, 3]);
        assert!(d.iter().all(|d| d.check == CheckId::NetPolicy));
    }

    #[test]
    fn ignores_tests_comments_and_strings() {
        assert!(run(
            "// a TcpStream in prose\nlet s = \"std::net\";\n#[cfg(test)]\nmod tests {\n    use std::net::TcpStream;\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn ignores_lookalike_identifiers() {
        assert!(run("struct MyTcpStreamWrapper;\nfn tcp_stream() {}\n").is_empty());
    }
}
