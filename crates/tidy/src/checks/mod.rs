//! The checks, and the per-file driver that runs them and applies
//! suppressions.

pub mod determinism;
pub mod headers;
pub mod hermeticity;
pub mod panics;
pub mod unsafe_code;

use crate::diag::{CheckId, Diagnostic};
use crate::policy::{CratePolicy, FileKind};
use crate::source::SourceFile;

/// Finds `pattern` in masked code with identifier boundaries on both ends
/// (`HashMap` does not match `FxHashMap` or `HashMaps`; `std::fs` does
/// match `use std::fs::File`). Returns the byte offset of the first hit.
pub fn find_token(code: &str, pattern: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find(pattern) {
        let at = from + rel;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + pattern.len();
        let after_ok = !code[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + pattern.len();
    }
    None
}

/// Runs every source-level check on one Rust file and appends the
/// surviving findings to `diags`. `rel` is the workspace-relative path
/// used in diagnostics.
pub fn check_rust_file(
    policy: &CratePolicy,
    kind: FileKind,
    rel: &str,
    text: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let src = SourceFile::parse(text);
    let mut raw: Vec<Diagnostic> = Vec::new();

    if policy.determinism && kind == FileKind::LibSrc {
        determinism::check(rel, &src, &mut raw);
    }
    if kind == FileKind::LibSrc {
        panics::check(rel, &src, &mut raw);
        headers::check_allow_attributes(rel, &src, &mut raw);
    }
    unsafe_code::check(rel, &src, &mut raw);
    if rel.ends_with("src/lib.rs") {
        headers::check_lint_header(rel, &src, &mut raw);
    }

    // Apply suppressions, tracking which ones earned their keep.
    let mut used = vec![false; src.suppressions.len()];
    for d in raw {
        if !src.is_suppressed(d.line, d.check, &mut used) {
            diags.push(d);
        }
    }
    for (s, used) in src.suppressions.iter().zip(&used) {
        if s.check.is_none() {
            diags.push(Diagnostic::new(
                rel,
                s.declared_at,
                CheckId::Suppression,
                format!(
                    "unknown check `{}` in tidy:allow (known: determinism, \
                     unsafe-policy, crate-header, panic-policy, hermeticity)",
                    s.check_name
                ),
            ));
        } else if !s.justified {
            diags.push(Diagnostic::new(
                rel,
                s.declared_at,
                CheckId::Suppression,
                format!(
                    "tidy:allow({}) needs a justification: \
                     `// tidy:allow({}) -- why this is sound`",
                    s.check_name, s.check_name
                ),
            ));
        } else if !used {
            diags.push(Diagnostic::new(
                rel,
                s.declared_at,
                CheckId::Suppression,
                format!(
                    "unused suppression tidy:allow({}): nothing on the covered \
                     line fires this check — remove it",
                    s.check_name
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_boundaries() {
        assert!(find_token("use std::collections::HashMap;", "HashMap").is_some());
        assert!(find_token("type FxHashMap = ();", "HashMap").is_none());
        assert!(find_token("fn hashmaps()", "HashMap").is_none());
        assert!(find_token("use std::fs::File;", "std::fs").is_some());
        assert!(find_token("use mystd::fs;", "std::fs").is_none());
    }
}
