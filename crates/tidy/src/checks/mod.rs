//! The checks, and the shared per-file plumbing they all use.
//!
//! The lexical checks (`determinism`, `panics`, `headers`, `unsafe_code`,
//! `hermeticity`) each scan one file; the semantic checks
//! (`panic_reach`, `taint`, `lock_order`) run over the whole-workspace
//! call graph; the concurrency checks (`threads`, `queues`,
//! `error_policy`, `wire`) run over the per-function lifecycle model.
//! All kinds produce *raw* findings; the driver applies
//! inline suppressions once, centrally, via [`filter_suppressed`] and
//! [`account_suppressions`] — per-check suppression handling is
//! deliberately impossible to re-implement, because a sixth copy of that
//! logic is how suppression semantics drift.

pub mod cow;
pub mod determinism;
pub mod error_policy;
pub mod float_det;
pub mod fork_cov;
pub mod headers;
pub mod hermeticity;
pub mod lock_order;
pub mod net;
pub mod panic_reach;
pub mod panics;
pub mod queues;
pub mod taint;
pub mod threads;
pub mod unsafe_code;
pub mod wire;

use crate::diag::{CheckId, Diagnostic};
use crate::policy::{CratePolicy, FileKind};
use crate::source::{Line, SourceFile};

/// The check names a `tidy:allow(...)` may legally name, for the
/// unknown-check diagnostic.
pub const SUPPRESSIBLE_CHECKS: &str = "determinism, unsafe-policy, crate-header, panic-policy, \
     net-policy, hermeticity, panic-reachability, determinism-taint, lock-order, \
     fork-coverage, cow-aliasing, float-determinism, thread-lifecycle, queue-bounds, \
     error-policy, wire-schema";

/// Finds `pattern` in masked code with identifier boundaries on both ends
/// (`HashMap` does not match `FxHashMap` or `HashMaps`; `std::fs` does
/// match `use std::fs::File`). Returns the byte offset of the first hit.
pub fn find_token(code: &str, pattern: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find(pattern) {
        let at = from + rel;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + pattern.len();
        let after_ok = !code[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + pattern.len();
    }
    None
}

/// Iterates the non-test lines of a file as `(1-based line number, line)`
/// — the shared `#[cfg(test)]`-region filter every library-code check
/// uses instead of re-implementing the skip.
pub fn lib_code_lines(src: &SourceFile) -> impl Iterator<Item = (usize, &Line)> {
    src.lines
        .iter()
        .enumerate()
        .filter(|(_, line)| !line.in_test)
        .map(|(idx, line)| (idx + 1, line))
}

/// Consults (and consumes) inline suppressions across the workspace.
/// Implemented by the driver; the semantic checks use it both to honor
/// barrier suppressions during propagation and to mark them used so the
/// unused-suppression meta-check stays accurate.
pub trait SuppressionOracle {
    /// Whether `(file_idx, line)` carries a justified suppression for
    /// `check`; a hit is recorded as *used*.
    fn suppressed(&mut self, file_idx: usize, line: usize, check: CheckId) -> bool;
}

/// Runs the per-file lexical checks on one Rust file, appending **raw**
/// (pre-suppression) findings to `raw`.
pub fn lexical_checks(
    policy: &CratePolicy,
    kind: FileKind,
    rel: &str,
    src: &SourceFile,
    raw: &mut Vec<Diagnostic>,
) {
    if policy.determinism && kind == FileKind::LibSrc {
        determinism::check(rel, src, raw);
    }
    if !policy.net && !policy.determinism && kind == FileKind::LibSrc {
        // Simulation-critical crates already ban `std::net` through the
        // determinism check; re-running the net check there would double-
        // report the same line under two names.
        net::check(rel, src, raw);
    }
    if kind == FileKind::LibSrc {
        panics::check(rel, src, raw);
        headers::check_allow_attributes(rel, src, raw);
    }
    unsafe_code::check(rel, src, raw);
    if rel.ends_with("src/lib.rs") {
        headers::check_lint_header(rel, src, raw);
    }
}

/// Applies the file's inline suppressions to `raw`, pushing the surviving
/// findings to `out` and marking consumed suppressions in `used`.
pub fn filter_suppressed(
    src: &SourceFile,
    raw: Vec<Diagnostic>,
    used: &mut [bool],
    out: &mut Vec<Diagnostic>,
) {
    for d in raw {
        if !src.is_suppressed(d.line, d.check, used) {
            out.push(d);
        }
    }
}

/// Reports the suppression meta-findings for one file: unknown check
/// names, missing justifications, and suppressions that silenced nothing.
pub fn account_suppressions(rel: &str, src: &SourceFile, used: &[bool], out: &mut Vec<Diagnostic>) {
    for (s, used) in src.suppressions.iter().zip(used) {
        if s.check.is_none() {
            out.push(Diagnostic::new(
                rel,
                s.declared_at,
                CheckId::Suppression,
                format!(
                    "unknown check `{}` in tidy:allow (known: {SUPPRESSIBLE_CHECKS})",
                    s.check_name
                ),
            ));
        } else if !s.justified {
            out.push(Diagnostic::new(
                rel,
                s.declared_at,
                CheckId::Suppression,
                format!(
                    "tidy:allow({}) needs a justification: \
                     `// tidy:allow({}) -- why this is sound`",
                    s.check_name, s.check_name
                ),
            ));
        } else if !used {
            out.push(Diagnostic::new(
                rel,
                s.declared_at,
                CheckId::Suppression,
                format!(
                    "unused suppression tidy:allow({}): nothing on the covered \
                     line fires this check — remove it",
                    s.check_name
                ),
            ));
        }
    }
}

/// Runs every source-level check on one Rust file **with** suppression
/// semantics applied — the single-file entry point used by the fixture
/// tests. The workspace driver composes the same pieces itself so the
/// semantic checks can participate in suppression accounting.
pub fn check_rust_file(
    policy: &CratePolicy,
    kind: FileKind,
    rel: &str,
    text: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let src = SourceFile::parse(text);
    let mut raw: Vec<Diagnostic> = Vec::new();
    lexical_checks(policy, kind, rel, &src, &mut raw);
    let mut used = vec![false; src.suppressions.len()];
    filter_suppressed(&src, raw, &mut used, diags);
    account_suppressions(rel, &src, &used, diags);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_boundaries() {
        assert!(find_token("use std::collections::HashMap;", "HashMap").is_some());
        assert!(find_token("type FxHashMap = ();", "HashMap").is_none());
        assert!(find_token("fn hashmaps()", "HashMap").is_none());
        assert!(find_token("use std::fs::File;", "std::fs").is_some());
        assert!(find_token("use mystd::fs;", "std::fs").is_none());
    }

    #[test]
    fn lib_code_lines_skips_test_regions() {
        let src = SourceFile::parse("use a;\n#[cfg(test)]\nmod tests {\n    use b;\n}\nuse c;");
        let numbers: Vec<usize> = lib_code_lines(&src).map(|(n, _)| n).collect();
        assert_eq!(numbers, vec![1, 6]);
    }
}
