//! The panic policy for library code.
//!
//! Recoverable failures take typed errors (`LaunchError`, `GuestError`,
//! `SpecError`, …). Genuine invariants use `expect("message naming the
//! invariant")` — the message is the documentation, which is why `expect`
//! is the sanctioned form and is *not* flagged here. What is flagged, in
//! non-test library code:
//!
//! * bare `unwrap()` — an invariant nobody wrote down;
//! * `panic!` — usually an error path that deserves a type (suppressible
//!   where the panic *is* the documented contract, e.g. a formatted
//!   "unknown id" message behind a `# Panics` doc section);
//! * `todo!` / `unimplemented!` — unfinished code has no business on the
//!   simulation path.
//!
//! `assert!`/`debug_assert!` are allowed: they state their predicate.

use crate::checks::find_token;
use crate::diag::{CheckId, Diagnostic};
use crate::source::SourceFile;

const BANNED_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Scans non-test library code for panic-policy violations.
pub fn check(rel: &str, src: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (idx, line) in src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if has_bare_unwrap(&line.code) {
            out.push(Diagnostic::new(
                rel,
                idx + 1,
                CheckId::PanicPolicy,
                "`unwrap()` in library code: use `?`, a typed error, or \
                 `expect(\"the invariant that holds here\")`",
            ));
        }
        for &mac in BANNED_MACROS {
            if is_macro_call(&line.code, mac) {
                out.push(Diagnostic::new(
                    rel,
                    idx + 1,
                    CheckId::PanicPolicy,
                    format!(
                        "`{mac}!` in library code: prefer a typed error or \
                         `expect`; suppress only with a documented invariant"
                    ),
                ));
            }
        }
    }
}

/// `unwrap` immediately followed by `()` (so `unwrap_or`, `unwrap_err`,
/// and `unwrap_or_else` never match).
fn has_bare_unwrap(code: &str) -> bool {
    let mut rest = code;
    while let Some(at) = find_token(rest, "unwrap") {
        let tail = rest[at + "unwrap".len()..].trim_start();
        if let Some(t) = tail.strip_prefix('(') {
            if t.trim_start().starts_with(')') {
                return true;
            }
        }
        rest = &rest[at + "unwrap".len()..];
    }
    false
}

/// `name` followed by `!` with an identifier boundary before it.
fn is_macro_call(code: &str, name: &str) -> bool {
    let mut rest = code;
    while let Some(at) = find_token(rest, name) {
        if rest[at + name.len()..].starts_with('!') {
            return true;
        }
        rest = &rest[at + name.len()..];
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(text: &str) -> Vec<Diagnostic> {
        let src = SourceFile::parse(text);
        let mut out = Vec::new();
        check("x.rs", &src, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_and_panic_macros() {
        let d = run("let x = y.unwrap();\npanic!(\"boom\");\ntodo!()\n");
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(d.iter().all(|d| d.check == CheckId::PanicPolicy));
    }

    #[test]
    fn expect_and_fallible_unwraps_are_fine() {
        assert!(run(
            "let x = y.expect(\"queue is non-empty\");\nlet z = r.unwrap_or_else(|| 0);\nlet w = r.unwrap_or(1);\nassert!(x > 0);\n"
        )
        .is_empty());
    }

    #[test]
    fn panic_paths_and_should_panic_do_not_match() {
        assert!(run("use std::panic::catch_unwind;\nfn panicking() {}\n").is_empty());
    }

    #[test]
    fn tests_are_exempt() {
        assert!(
            run("#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); panic!(); }\n}\n").is_empty()
        );
    }
}
