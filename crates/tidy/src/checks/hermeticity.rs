//! The hermeticity check: every dependency in every `Cargo.toml` must
//! resolve inside the repository.
//!
//! The workspace builds offline by construction — external crates exist
//! only as in-tree stand-ins under `vendor/`. A single registry (`foo =
//! "1.0"`, `version = …`) or `git = …` dependency would silently
//! reintroduce network access and unpinned code; this check keeps the
//! guarantee honest, including for the vendor stand-ins themselves.

use crate::diag::{CheckId, Diagnostic};

/// Scans one `Cargo.toml` (already read into `text`; `rel` is the
/// workspace-relative path used in diagnostics).
pub fn check(rel: &str, text: &str, out: &mut Vec<Diagnostic>) {
    let mut in_dep_section = false;
    // `[dependencies.foo]` table form: (header line, name, saw path/workspace,
    // offending key if any).
    let mut dep_table: Option<(usize, String, bool, Option<String>)> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line = strip_toml_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush_dep_table(rel, &mut dep_table, out);
            let header = line.trim_matches(|c| c == '[' || c == ']');
            if let Some(name) = header
                .strip_prefix("dependencies.")
                .or_else(|| header.strip_prefix("dev-dependencies."))
                .or_else(|| header.strip_prefix("build-dependencies."))
                .or_else(|| header.strip_prefix("workspace.dependencies."))
            {
                dep_table = Some((idx + 1, name.to_owned(), false, None));
                in_dep_section = false;
            } else {
                in_dep_section = is_dep_section(header);
            }
            continue;
        }
        if let Some((_, _, ok, bad)) = dep_table.as_mut() {
            let key = line.split('=').next().unwrap_or("").trim();
            if key == "path" || (key == "workspace" && line.contains("true")) {
                *ok = true;
            } else if matches!(
                key,
                "git" | "version" | "registry" | "branch" | "tag" | "rev"
            ) {
                *bad = Some(key.to_owned());
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((name, value)) = split_dep_line(&line) else {
            continue;
        };
        let hermetic = value.contains("path =")
            || value.contains("path=")
            || value.contains("workspace = true")
            || value.contains("workspace=true")
            || name.ends_with(".workspace");
        if !hermetic {
            let name = name.trim_end_matches(".workspace");
            out.push(Diagnostic::new(
                rel,
                idx + 1,
                CheckId::Hermeticity,
                format!(
                    "dependency `{name}` does not resolve in-tree ({value}); the \
                     workspace is hermetic — vendor a stand-in under vendor/ and \
                     use a path or workspace dependency"
                ),
            ));
        }
    }
    flush_dep_table(rel, &mut dep_table, out);
}

fn flush_dep_table(
    rel: &str,
    table: &mut Option<(usize, String, bool, Option<String>)>,
    out: &mut Vec<Diagnostic>,
) {
    if let Some((line, name, ok, bad)) = table.take() {
        if let Some(key) = bad {
            out.push(Diagnostic::new(
                rel,
                line,
                CheckId::Hermeticity,
                format!("dependency table `{name}` uses `{key} = …`; only path/workspace dependencies are allowed"),
            ));
        } else if !ok {
            out.push(Diagnostic::new(
                rel,
                line,
                CheckId::Hermeticity,
                format!("dependency table `{name}` has no `path` or `workspace = true` key"),
            ));
        }
    }
}

fn is_dep_section(header: &str) -> bool {
    header == "dependencies"
        || header == "dev-dependencies"
        || header == "build-dependencies"
        || header == "workspace.dependencies"
        || header.ends_with(".dependencies")
        || header.ends_with(".dev-dependencies")
        || header.ends_with(".build-dependencies")
}

/// Splits `name = value`, ignoring `=` inside the value.
fn split_dep_line(line: &str) -> Option<(&str, &str)> {
    let eq = line.find('=')?;
    let name = line[..eq].trim();
    if name.is_empty() || name.contains(' ') {
        return None;
    }
    Some((name, line[eq + 1..].trim()))
}

/// Drops a `# comment` unless the `#` sits inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(text: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check("Cargo.toml", text, &mut out);
        out
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let toml = r#"
[dependencies]
eaao-simcore = { path = "crates/simcore" }
serde = { path = "vendor/serde", features = ["derive"] }
rand.workspace = true
eaao-core = { workspace = true }

[dev-dependencies]
proptest = { path = "vendor/proptest" }
"#;
        assert!(run(toml).is_empty());
    }

    #[test]
    fn registry_and_git_deps_fail() {
        let toml = r#"
[dependencies]
rand = "0.8"
serde = { version = "1", features = ["derive"] }
foo = { git = "https://example.com/foo" }
"#;
        let d = run(toml);
        assert_eq!(d.len(), 3);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![3, 4, 5]);
        assert!(d.iter().all(|d| d.check == CheckId::Hermeticity));
    }

    #[test]
    fn dep_tables_are_checked() {
        let good = "[dependencies.serde]\npath = \"vendor/serde\"\nfeatures = [\"derive\"]\n";
        assert!(run(good).is_empty());
        let bad = "[dependencies.rand]\nversion = \"0.8\"\n";
        let d = run(bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
        let missing = "[dependencies.rand]\nfeatures = [\"std\"]\n";
        assert_eq!(run(missing).len(), 1);
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let toml = "[package]\nname = \"x\"\nversion = \"0.1.0\"\n\n[features]\ndefault = []\n";
        assert!(run(toml).is_empty());
    }
}
