//! Crate-header hygiene: the standard lint set on every `lib.rs`, and a
//! justification on every `#[allow(...)]`.

use crate::diag::{CheckId, Diagnostic};
use crate::source::SourceFile;

/// Lints every `lib.rs` must enable (via `#![warn]`, `#![deny]`, or
/// `#![forbid]`).
const REQUIRED_LINTS: &[&str] = &["missing_docs", "missing_debug_implementations"];

/// Checks that a `lib.rs` carries the standard lint header.
pub fn check_lint_header(rel: &str, src: &SourceFile, out: &mut Vec<Diagnostic>) {
    for &lint in REQUIRED_LINTS {
        let present = src.lines.iter().any(|l| {
            (l.code.contains("#![warn(")
                || l.code.contains("#![deny(")
                || l.code.contains("#![forbid("))
                && l.code.contains(lint)
        });
        if !present {
            out.push(Diagnostic::new(
                rel,
                1,
                CheckId::CrateHeader,
                format!("lib.rs is missing the standard lint header `#![warn({lint})]`"),
            ));
        }
    }
}

/// Checks that every `#[allow(...)]` / `#![allow(...)]` in non-test
/// library code explains itself — a trailing comment on the same line or a
/// comment on the line directly above.
pub fn check_allow_attributes(rel: &str, src: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (idx, line) in src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if !(line.code.contains("#[allow(") || line.code.contains("#![allow(")) {
            continue;
        }
        let justified = !line.comment.trim().is_empty()
            || (idx > 0 && !src.lines[idx - 1].comment.trim().is_empty());
        if !justified {
            out.push(Diagnostic::new(
                rel,
                idx + 1,
                CheckId::CrateHeader,
                "#[allow(...)] without a justification comment (same line or the line above)",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_lints_reported_individually() {
        let src = SourceFile::parse("#![warn(missing_docs)]\npub fn f() {}\n");
        let mut out = Vec::new();
        check_lint_header("src/lib.rs", &src, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("missing_debug_implementations"));
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn combined_warn_attribute_satisfies_both() {
        let src = SourceFile::parse("#![warn(missing_docs, missing_debug_implementations)]\n");
        let mut out = Vec::new();
        check_lint_header("src/lib.rs", &src, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn allow_needs_a_reason() {
        let src = SourceFile::parse(
            "#[allow(dead_code)]\nfn a() {}\n// scratch buffer reused across calls\n#[allow(clippy::type_complexity)]\nfn b() {}\n#[allow(unused)] // windows-only helper\nfn c() {}\n",
        );
        let mut out = Vec::new();
        check_allow_attributes("x.rs", &src, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 1);
        assert_eq!(out[0].check, CheckId::CrateHeader);
    }
}
