//! Thread-lifecycle analysis over the spawn sites captured by the parser.
//!
//! The parser records every `thread::spawn`/`Builder::spawn` in a
//! function body with the fate of its `JoinHandle` (discarded, bound and
//! later used, bound and never used, or flowing into an enclosing
//! expression) plus the body's `catch_unwind` lines. Over that model,
//! three findings for crates with policy `concurrency=true`:
//!
//! * a **discarded** spawn (statement position, value dropped) — the
//!   thread is detached on the spot and nothing can ever join it;
//! * a **leaked** handle — `let h = spawn(...)` where `h` never
//!   reappears in the function, so the handle is silently dropped at
//!   scope end;
//! * a **panic-unsafe worker** — the spawn's argument list neither
//!   carries its own `catch_unwind` nor confines itself to callees that
//!   cannot propagate a panic, so one panicking job kills the worker
//!   silently (the dead-dispatcher class: the thread dies, its queue
//!   wedges, and the service keeps accepting work it will never run).
//!
//! Deliberate detaches are sanctioned with a justified
//! `tidy:allow(thread-lifecycle)` on the spawn line.

use std::collections::BTreeSet;

use crate::diag::{CheckId, Diagnostic};
use crate::graph::Workspace;

/// Runs the check over the workspace graph, appending raw
/// `(file_idx, diagnostic)` pairs (the driver applies suppressions).
pub fn check(ws: &Workspace, out: &mut Vec<(usize, Diagnostic)>) {
    let unbarred = unbarred_fns(ws);
    for f in &ws.fns {
        if !f.policy.concurrency {
            continue;
        }
        for (ord, spawn) in f.item.spawns.iter().enumerate() {
            let symbol = format!("{}#spawn{}", f.qual, ord);
            if spawn.discarded {
                out.push((
                    f.file_idx,
                    Diagnostic::new(
                        &f.rel,
                        spawn.line,
                        CheckId::ThreadLifecycle,
                        "spawned thread's JoinHandle is discarded on the spot; \
                         join it, store it in a tracked container, or carry a \
                         justified tidy:allow(thread-lifecycle) for a \
                         deliberate detach",
                    )
                    .with_symbol(&symbol),
                ));
            } else if let Some(binding) = &spawn.binding {
                if !spawn.binding_used {
                    out.push((
                        f.file_idx,
                        Diagnostic::new(
                            &f.rel,
                            spawn.line,
                            CheckId::ThreadLifecycle,
                            format!(
                                "JoinHandle `{binding}` is never joined, stored, \
                                 or returned after the spawn; the thread detaches \
                                 silently when the handle drops at scope end"
                            ),
                        )
                        .with_symbol(&symbol),
                    ));
                }
            }

            // Panic barrier: the spawn's argument list must either carry
            // its own catch_unwind or only enter barred callees.
            if f.item
                .catch_unwinds
                .iter()
                .any(|&l| spawn.line <= l && l <= spawn.end_line)
            {
                continue;
            }
            let mut offenders: Vec<String> = Vec::new();
            if f.item
                .panic_sources
                .iter()
                .any(|s| spawn.line <= s.line && s.line <= spawn.end_line)
            {
                offenders.push("the worker closure itself".to_owned());
            }
            for &(callee, line, _) in &f.edges {
                if spawn.line <= line
                    && line <= spawn.end_line
                    && unbarred.contains(&callee)
                    && !offenders.contains(&ws.fns[callee].qual)
                {
                    offenders.push(ws.fns[callee].qual.clone());
                }
            }
            if !offenders.is_empty() {
                out.push((
                    f.file_idx,
                    Diagnostic::new(
                        &f.rel,
                        spawn.line,
                        CheckId::ThreadLifecycle,
                        format!(
                            "worker can panic with no catch_unwind barrier (via \
                             {}); a panicking worker dies silently and wedges \
                             whatever queue it was draining",
                            offenders.join(", ")
                        ),
                    )
                    .with_symbol(&symbol),
                ));
            }
        }
    }
}

/// Function ids that can let a panic escape to their caller: no
/// `catch_unwind` of their own, and either a direct panic source or an
/// edge to another unbarred function. A fixpoint over the call graph —
/// coarser than `panic-reachability` on purpose (a `# Panics` doc stops
/// that check, but documentation does not stop a thread from dying).
fn unbarred_fns(ws: &Workspace) -> BTreeSet<usize> {
    let mut unbarred: Vec<bool> = ws
        .fns
        .iter()
        .map(|f| f.item.catch_unwinds.is_empty() && !f.item.panic_sources.is_empty())
        .collect();
    loop {
        let mut changed = false;
        for id in 0..ws.fns.len() {
            if unbarred[id] || !ws.fns[id].item.catch_unwinds.is_empty() {
                continue;
            }
            if ws.fns[id]
                .edges
                .iter()
                .any(|&(callee, _, _)| unbarred[callee])
            {
                unbarred[id] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    unbarred
        .iter()
        .enumerate()
        .filter_map(|(id, &u)| u.then_some(id))
        .collect()
}
