//! The determinism check: sources of nondeterminism in simulation-critical
//! crates.
//!
//! The differential oracle and the campaign engine promise byte-identical
//! output for a given seed, at any parallelism. Four classes of constructs
//! can silently break that promise:
//!
//! * **Iteration-order hazards** — `std::collections::HashMap`/`HashSet`
//!   iterate in a layout-dependent order (randomized per process by the
//!   default hasher), so any iteration that reaches output, or feeds an
//!   RNG draw sequence, forks the trajectory.
//! * **Wall clocks** — `SystemTime`/`Instant` read host time; simulation
//!   time is [`SimTime`](https://docs.rs/) from `eaao-simcore`.
//! * **Ambient inputs** — `std::env`, `std::fs`, `std::net`,
//!   `std::process` smuggle host state into the model.
//! * **Non-seeded RNGs** — `thread_rng`/`from_entropy`/`OsRng` draw OS
//!   entropy; every stream must derive from `SimRng::fork_labeled`.

use crate::checks::find_token;
use crate::diag::{CheckId, Diagnostic};
use crate::source::SourceFile;

/// Banned token → remedy. Matched with identifier boundaries against
/// masked code, so mentions in comments, docs, and string literals are
/// fine. Public so the semantic determinism-taint pass can reuse the
/// exact same source definition.
pub const BANNED: &[(&str, &str)] = &[
    (
        "HashMap",
        "iteration order is layout-dependent; use BTreeMap or an index-keyed Vec",
    ),
    (
        "HashSet",
        "iteration order is layout-dependent; use BTreeSet or a sorted Vec",
    ),
    (
        "SystemTime",
        "wall-clock read; simulation code must use eaao_simcore::time::SimTime",
    ),
    (
        "Instant",
        "wall-clock read; simulation code must use eaao_simcore::time::SimTime",
    ),
    (
        "std::env",
        "ambient environment read; thread configuration through RegionConfig/Spec types",
    ),
    (
        "std::fs",
        "ambient file I/O; only host-tool crates (campaign, obs, bench, tidy) may touch the filesystem",
    ),
    (
        "std::net",
        "ambient network I/O is banned in simulation-critical crates",
    ),
    (
        "std::process",
        "process spawning/exit is banned in simulation-critical crates",
    ),
    (
        "thread_rng",
        "non-seeded RNG; derive a stream with SimRng::fork_labeled",
    ),
    (
        "from_entropy",
        "non-seeded RNG; derive a stream with SimRng::fork_labeled",
    ),
    (
        "from_os_rng",
        "non-seeded RNG; derive a stream with SimRng::fork_labeled",
    ),
    (
        "OsRng",
        "OS entropy source; derive a stream with SimRng::fork_labeled",
    ),
];

/// Scans non-test library code for the banned tokens.
pub fn check(rel: &str, src: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (idx, line) in src.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for &(token, remedy) in BANNED {
            if find_token(&line.code, token).is_some() {
                out.push(Diagnostic::new(
                    rel,
                    idx + 1,
                    CheckId::Determinism,
                    format!("`{token}` in a simulation-critical crate: {remedy}"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(text: &str) -> Vec<Diagnostic> {
        let src = SourceFile::parse(text);
        let mut out = Vec::new();
        check("x.rs", &src, &mut out);
        out
    }

    #[test]
    fn flags_each_class() {
        let d = run("use std::collections::HashMap;\nlet t = Instant::now();\nlet e = std::env::var(\"X\");\nlet f = std::fs::read(p);\nlet r = thread_rng();\n");
        let lines: Vec<usize> = d.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![1, 2, 3, 4, 5]);
        assert!(d.iter().all(|d| d.check == CheckId::Determinism));
    }

    #[test]
    fn ignores_tests_comments_and_strings() {
        assert!(run("// a HashMap in prose\nlet s = \"HashMap\";\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n").is_empty());
    }

    #[test]
    fn ignores_lookalike_identifiers() {
        assert!(run("struct SimInstant;\nfn hash_map() {}\n").is_empty());
    }
}
