//! Queue-bounds analysis over the queue construction sites captured by
//! the parser.
//!
//! Every `VecDeque`, crossbeam `channel`, or `std::sync::mpsc`
//! construction in a crate with policy `concurrency=true` must either
//! use a capacity-fixing constructor (`with_capacity`, `bounded`,
//! `sync_channel`) or name the mechanism that bounds it in a `bound:`
//! comment on the construction line or the line directly above:
//!
//! ```text
//! // bound: capped at max_pending by the admission check below
//! pending: VecDeque::new(),
//! ```
//!
//! This is the snapshot-eviction bug class from the service review: an
//! unbounded completed-campaign map (or frame queue) grows for the
//! lifetime of a daemon that runs for hours. The comment is the bound's
//! documentation *and* the check's evidence — deleting one deletes the
//! other. Queues that are unbounded by design carry a justified
//! `tidy:allow(queue-bounds)` instead.

use crate::diag::{CheckId, Diagnostic};
use crate::graph::Workspace;

/// Runs the check over the workspace graph, appending raw
/// `(file_idx, diagnostic)` pairs (the driver applies suppressions).
pub fn check(ws: &Workspace, out: &mut Vec<(usize, Diagnostic)>) {
    for f in &ws.fns {
        if !f.policy.concurrency {
            continue;
        }
        for (ord, q) in f.item.queues.iter().enumerate() {
            if q.bounded || q.bound_named {
                continue;
            }
            out.push((
                f.file_idx,
                Diagnostic::new(
                    &f.rel,
                    q.line,
                    CheckId::QueueBounds,
                    format!(
                        "`{}` builds an unbounded queue; use a bounded \
                         constructor or name the enforcing mechanism in a \
                         `// bound: …` comment at the construction site",
                        q.what
                    ),
                )
                .with_symbol(format!("{}#queue{}", f.qual, ord)),
            ));
        }
    }
}
