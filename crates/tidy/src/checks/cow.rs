//! `cow-aliasing`: `Arc` state in fork-surface types stays copy-on-write.
//!
//! PR 8's sharing discipline is: clones/branches share genesis lanes via
//! `Arc`, and the **only** sanctioned write path is `Arc::make_mut`,
//! which unshares before mutating. Everything else aliases state across
//! branches:
//!
//! - `Arc::get_mut` silently returns `None` (and typically panics or
//!   no-ops behind an `if let`) once a branch exists; `Arc::as_ptr` /
//!   `Arc::into_raw` escape the count entirely. Any of these naming an
//!   `Arc` field of a fork-surface type in one of its methods is a
//!   finding at the write site.
//! - `Arc<Mutex<..>>`-shaped fields (interior mutability *inside* the
//!   shared pointer) make every write visible to every clone — the exact
//!   shape of the SimClock shared-time bug. Finding at the field.
//! - `Mutex`/`Cell`-family fields on a type whose `Clone` ships (any
//!   `Clone` fork-surface type) smuggle write-through state across a
//!   branch even without an `Arc` around them. Finding at the field;
//!   non-`Clone` types (caches keyed off shared state, e.g. `WorldCache`)
//!   are exempt because they never cross a branch.
//!
//! Field findings carry symbol `Type.field`; write-site findings carry
//! `Type.field` too (the baseline keys on `(check, file, symbol)`, so a
//! field stays one sanctioned site no matter how often it moves).

use crate::checks::find_token;
use crate::diag::{CheckId, Diagnostic};
use crate::fields::{classify, FieldModel, FileInput};

/// `Arc` associated functions that bypass copy-on-write.
const ARC_ESCAPES: &[&str] = &["Arc::get_mut", "Arc::as_ptr", "Arc::into_raw"];

/// Runs the check, appending raw `(file_idx, finding)` pairs.
pub fn check(model: &FieldModel, inputs: &[FileInput<'_>], out: &mut Vec<(usize, Diagnostic)>) {
    field_findings(model, out);
    write_site_findings(model, inputs, out);
}

/// Field-shape findings: interior-in-`Arc`, and interior mutability on a
/// `Clone` type.
fn field_findings(model: &FieldModel, out: &mut Vec<(usize, Diagnostic)>) {
    for t in model.fork_surface() {
        for field in &t.def.fields {
            let class = classify(&field.ty);
            if class.interior_in_arc {
                let wrapper = class.interior.unwrap_or("interior mutability");
                out.push((
                    t.file_idx,
                    Diagnostic::new(
                        &t.rel,
                        field.line,
                        CheckId::CowAliasing,
                        format!(
                            "`{}` inside a shared `Arc` on fork-surface type `{}` \
                             (field `{}`): writes alias across every clone/branch \
                             — hold owned data behind the Arc and write through \
                             Arc::make_mut, or suppress here naming why sharing \
                             is the contract",
                            wrapper, t.def.name, field.name
                        ),
                    )
                    .with_symbol(format!("{}.{}", t.def.name, field.name)),
                ));
            } else if let (Some(wrapper), true) = (class.interior, t.is_clone) {
                out.push((
                    t.file_idx,
                    Diagnostic::new(
                        &t.rel,
                        field.line,
                        CheckId::CowAliasing,
                        format!(
                            "`{}` field `{}` on `Clone` fork-surface type `{}`: \
                             interior writes cross a branch without unsharing — \
                             make the lane copy-on-write, or suppress here with \
                             the genesis-lane justification",
                            wrapper, field.name, t.def.name
                        ),
                    )
                    .with_symbol(format!("{}.{}", t.def.name, field.name)),
                ));
            }
        }
    }
}

/// Write-site findings: `Arc::get_mut`/`as_ptr`/`into_raw` naming an
/// `Arc` field of a fork-surface type, inside one of that type's methods.
fn write_site_findings(
    model: &FieldModel,
    inputs: &[FileInput<'_>],
    out: &mut Vec<(usize, Diagnostic)>,
) {
    for input in inputs {
        if !input.policy.fork_surface {
            continue;
        }
        for f in &input.model.fns {
            if !f.has_body {
                continue;
            }
            let Some(ty_name) = &f.type_ctx else { continue };
            // The type this method belongs to, if it is fork-surface and
            // defined in the same crate.
            let Some(t) = model.types.iter().find(|t| {
                t.fork_surface && t.def.name == *ty_name && t.policy.dir == input.policy.dir
            }) else {
                continue;
            };
            let arc_fields: Vec<&str> = t
                .def
                .fields
                .iter()
                .filter(|field| classify(&field.ty).arc)
                .map(|field| field.name.as_str())
                .collect();
            if arc_fields.is_empty() {
                continue;
            }
            for lineno in f.line..=f.end_line.min(input.src.lines.len()) {
                let line = &input.src.lines[lineno - 1];
                if line.in_test {
                    continue;
                }
                let Some(escape) = ARC_ESCAPES
                    .iter()
                    .find(|esc| find_token(&line.code, esc).is_some())
                else {
                    continue;
                };
                for field in &arc_fields {
                    if find_token(&line.code, field).is_none() {
                        continue;
                    }
                    out.push((
                        input.file_idx,
                        Diagnostic::new(
                            input.rel,
                            lineno,
                            CheckId::CowAliasing,
                            format!(
                                "`{escape}` on `Arc` field `{field}` of fork-surface \
                                 type `{ty_name}`: use Arc::make_mut so the write \
                                 unshares (copy-on-write) instead of failing or \
                                 aliasing once a branch exists"
                            ),
                        )
                        .with_symbol(format!("{ty_name}.{field}")),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::FieldModel;
    use crate::parse::FileModel;
    use crate::policy::policy_for_dir;
    use crate::source::SourceFile;

    fn run(files: &[(&str, &str, &str)]) -> Vec<(usize, Diagnostic)> {
        let parsed: Vec<(&str, SourceFile)> = files
            .iter()
            .map(|(_, rel, text)| (*rel, SourceFile::parse(text)))
            .collect();
        let models: Vec<FileModel> = parsed
            .iter()
            .map(|(rel, src)| FileModel::parse(rel, src))
            .collect();
        let inputs: Vec<FileInput<'_>> = files
            .iter()
            .zip(&parsed)
            .zip(&models)
            .enumerate()
            .map(|(i, (((dir, rel, _), (_, src)), model))| FileInput {
                rel,
                file_idx: i,
                policy: policy_for_dir(dir).expect("registered dir"),
                src,
                model,
            })
            .collect();
        let fm = FieldModel::build(&inputs);
        let mut out = Vec::new();
        check(&fm, &inputs, &mut out);
        out
    }

    const SAMPLER: &str = "pub struct Sampler {\n    tree: Arc<Vec<u64>>,\n}\n\
         impl Clone for Sampler {\n    fn clone(&self) -> Self {\n        \
         Sampler { tree: Arc::clone(&self.tree) }\n    }\n}\n";

    #[test]
    fn get_mut_on_an_arc_field_is_a_write_site_finding() {
        let out = run(&[(
            "crates/cloudsim",
            "crates/cloudsim/src/wsample.rs",
            &format!(
                "{SAMPLER}impl Sampler {{\n    pub fn branch(&self) -> Self {{\n        \
                 self.clone()\n    }}\n    pub fn bump(&mut self) {{\n        \
                 if let Some(t) = Arc::get_mut(&mut self.tree) {{\n            \
                 t.push(1);\n        }}\n    }}\n}}\n"
            ),
        )]);
        // branch misses `tree` under fork-coverage, not this check; here
        // exactly the get_mut line fires.
        assert_eq!(out.len(), 1);
        let (_, d) = &out[0];
        assert_eq!(d.check, CheckId::CowAliasing);
        assert_eq!(d.line, 14);
        assert_eq!(d.symbol, "Sampler.tree");
        assert!(d.message.contains("Arc::get_mut"));
        assert!(d.message.contains("Arc::make_mut"));
    }

    #[test]
    fn make_mut_is_the_sanctioned_write_path() {
        let out = run(&[(
            "crates/cloudsim",
            "crates/cloudsim/src/wsample.rs",
            &format!(
                "{SAMPLER}impl Sampler {{\n    pub fn branch(&self) -> Self {{\n        \
                 self.clone()\n    }}\n    pub fn bump(&mut self) {{\n        \
                 Arc::make_mut(&mut self.tree).push(1);\n    }}\n}}\n"
            ),
        )]);
        assert!(out.is_empty(), "got {:?}", out);
    }

    #[test]
    fn interior_mutability_inside_a_shared_arc_is_flagged_at_the_field() {
        let out = run(&[(
            "crates/simcore",
            "crates/simcore/src/clock.rs",
            "pub struct Clock {\n    now: Arc<Mutex<u64>>,\n}\n\
             impl Clock {\n    pub fn fork(&self) -> Self {\n        \
             Clock { now: Arc::new(Mutex::new(0)) }\n    }\n}\n",
        )]);
        assert_eq!(out.len(), 1);
        let (_, d) = &out[0];
        assert_eq!(d.line, 2);
        assert_eq!(d.symbol, "Clock.now");
        assert!(d.message.contains("Mutex"));
        assert!(d.message.contains("alias across every clone"));
    }

    #[test]
    fn interior_mutability_on_a_clone_type_is_flagged_but_non_clone_is_exempt() {
        let out = run(&[(
            "crates/cloudsim",
            "crates/cloudsim/src/datacenter.rs",
            "#[derive(Clone)]\npub struct Center {\n    shards: Vec<OnceCell<u64>>,\n}\n\
             impl Center {\n    pub fn branch(&self) -> Self {\n        \
             Center { shards: self.shards.clone() }\n    }\n}\n\
             pub struct Cache {\n    memo: Mutex<u64>,\n}\n\
             impl Cache {\n    pub fn snapshot(&self) -> Self {\n        \
             Cache { memo: Mutex::new(0) }\n    }\n}\n",
        )]);
        // Center is Clone with a OnceCell lane: finding. Cache has a
        // snapshot fn (fork-surface root) but is not Clone: exempt.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.symbol, "Center.shards");
        assert!(out[0].1.message.contains("OnceCell"));
    }

    #[test]
    fn arc_escapes_outside_fork_surface_types_are_ignored() {
        let out = run(&[(
            "crates/cloudsim",
            "crates/cloudsim/src/scratch.rs",
            "pub struct Scratch {\n    buf: Arc<Vec<u64>>,\n}\n\
             impl Scratch {\n    pub fn bump(&mut self) {\n        \
             if let Some(b) = Arc::get_mut(&mut self.buf) {\n            \
             b.push(1);\n        }\n    }\n}\n",
        )]);
        // Scratch has no fork/branch/snapshot and nothing pulls it into
        // the surface; the call-graph taint checks own the rest.
        assert!(out.is_empty(), "got {:?}", out);
    }
}
