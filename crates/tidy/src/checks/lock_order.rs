//! Lock-order analysis over `parking_lot::Mutex` acquisitions.
//!
//! The parser records every `.lock()` with a canonical lock name
//! (`Type.field` for `self.field.lock()` in an `impl Type`, else
//! `filestem::binding`) and which locks are held at each acquisition.
//! This check assembles a workspace-wide **acquisition-order graph**:
//!
//! * an intra-function edge `A -> B` whenever `B` is acquired while `A`
//!   is held, and
//! * a cross-function edge `A -> B` whenever a call is made while `A` is
//!   held into a function that (transitively) acquires `B`.
//!
//! Two finding kinds come out of it: **cycles** in the order graph
//! (including self-loops — `parking_lot` mutexes are not reentrant, so
//! re-acquiring a held lock deadlocks a single thread), and **locks held
//! across calls** into lock-taking functions, which is how cross-function
//! cycles are born and is worth a finding even before a second thread
//! closes the loop.
//!
//! The held-lock model is `Condvar`-aware: the parser treats
//! `Condvar::wait`/`wait_while`/`wait_for` as **releasing** the guard
//! passed to them (the wait atomically unlocks for its duration), and an
//! explicit `drop(guard)` as an early release — so the blocking-queue
//! idiom needs no suppression.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::checks::SuppressionOracle;
use crate::diag::{CheckId, Diagnostic};
use crate::graph::Workspace;

/// An order edge's provenance: the first (file_idx, rel, line) it was
/// observed at.
type Site = (usize, String, usize);

/// Runs the check over the workspace graph, appending post-suppression
/// findings to `out`.
pub fn check(ws: &Workspace, supp: &mut dyn SuppressionOracle, out: &mut Vec<Diagnostic>) {
    let takes = locks_reachable(ws);

    // Order graph: lock -> lock -> first site.
    let mut order: BTreeMap<String, BTreeMap<String, Site>> = BTreeMap::new();
    let mut record = |from: &str, to: &str, site: Site| {
        order
            .entry(from.to_owned())
            .or_default()
            .entry(to.to_owned())
            .or_insert(site);
    };

    // Held-across-call findings, deduplicated per (caller, callee).
    let mut across: Vec<Diagnostic> = Vec::new();
    let mut across_seen: BTreeSet<(usize, usize)> = BTreeSet::new();

    for id in ws.ids() {
        let f = &ws.fns[id];
        for acq in &f.item.locks {
            for held in &acq.held {
                record(held, &acq.lock, (f.file_idx, f.rel.clone(), acq.line));
            }
        }
        for &(callee, line, ref holding) in &f.edges {
            if holding.is_empty() {
                continue;
            }
            let callee_locks = &takes[callee];
            if callee_locks.is_empty() {
                continue;
            }
            for held in holding {
                for lock in callee_locks {
                    record(held, lock, (f.file_idx, f.rel.clone(), line));
                }
            }
            if across_seen.insert((id, callee))
                && !supp.suppressed(f.file_idx, line, CheckId::LockOrder)
            {
                let held_list = holding
                    .iter()
                    .map(|h| format!("`{h}`"))
                    .collect::<Vec<_>>()
                    .join(", ");
                let lock_list = callee_locks
                    .iter()
                    .map(|l| format!("`{l}`"))
                    .collect::<Vec<_>>()
                    .join(", ");
                across.push(
                    Diagnostic::new(
                        &f.rel,
                        line,
                        CheckId::LockOrder,
                        format!(
                            "`{}` holds {held_list} across a call into `{}`, which may \
                             acquire {lock_list}: drop the guard before the call, or \
                             justify why the acquisition order is safe",
                            f.qual, ws.fns[callee].qual
                        ),
                    )
                    .with_symbol(format!("{} -> {}", f.qual, ws.fns[callee].qual)),
                );
            }
        }
    }

    // Cycles: strongly connected components of the order graph with more
    // than one lock, plus self-loops.
    let nodes: Vec<String> = order
        .iter()
        .flat_map(|(from, tos)| std::iter::once(from.clone()).chain(tos.keys().cloned()))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let reachable = |from: &String| -> BTreeSet<String> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut queue: VecDeque<&String> = VecDeque::new();
        queue.push_back(from);
        while let Some(at) = queue.pop_front() {
            if let Some(tos) = order.get(at) {
                for to in tos.keys() {
                    if seen.insert(to.clone()) {
                        queue.push_back(to);
                    }
                }
            }
        }
        seen
    };
    let reach: BTreeMap<&String, BTreeSet<String>> =
        nodes.iter().map(|n| (n, reachable(n))).collect();

    let mut assigned: BTreeSet<&String> = BTreeSet::new();
    for node in &nodes {
        if assigned.contains(node) {
            continue;
        }
        let scc: Vec<&String> = nodes
            .iter()
            .filter(|m| (*m == node) || (reach[node].contains(*m) && reach[*m].contains(node)))
            .collect();
        for m in &scc {
            assigned.insert(m);
        }
        let self_loop = reach[node].contains(node);
        if scc.len() < 2 && !self_loop {
            continue;
        }
        // Collect the intra-SCC edges for the message; anchor on the
        // first (smallest) site.
        let member_set: BTreeSet<&String> = scc.iter().copied().collect();
        let mut edges: Vec<(String, String, Site)> = Vec::new();
        for from in &scc {
            if let Some(tos) = order.get(*from) {
                for (to, site) in tos {
                    if member_set.contains(to) {
                        edges.push(((*from).clone(), to.clone(), site.clone()));
                    }
                }
            }
        }
        let Some(anchor) = edges
            .iter()
            .map(|(_, _, s)| s.clone())
            .min_by(|a, b| (&a.1, a.2).cmp(&(&b.1, b.2)))
        else {
            continue;
        };
        if supp.suppressed(anchor.0, anchor.2, CheckId::LockOrder) {
            continue;
        }
        let edge_list = edges
            .iter()
            .map(|(from, to, (_, rel, line))| format!("`{from}` -> `{to}` ({rel}:{line})"))
            .collect::<Vec<_>>()
            .join(", ");
        let symbol = {
            let mut names: Vec<String> = scc.iter().map(|s| (*s).clone()).collect();
            names.sort();
            let first = names[0].clone();
            names.push(first);
            names.join(" -> ")
        };
        let message = if scc.len() == 1 {
            format!(
                "lock `{node}` can be re-acquired while already held ({edge_list}): \
                 parking_lot mutexes are not reentrant, so this self-deadlocks"
            )
        } else {
            format!(
                "lock-order cycle: {edge_list}; establish one global acquisition order \
                 for these locks"
            )
        };
        out.push(
            Diagnostic::new(&anchor.1, anchor.2, CheckId::LockOrder, message).with_symbol(symbol),
        );
    }

    out.extend(across);
}

/// For every function, the set of locks it (transitively) acquires.
fn locks_reachable(ws: &Workspace) -> Vec<BTreeSet<String>> {
    let n = ws.fns.len();
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for id in 0..n {
        for &(callee, _, _) in &ws.fns[id].edges {
            rev[callee].push(id);
        }
    }
    let mut takes: Vec<BTreeSet<String>> = ws
        .fns
        .iter()
        .map(|f| f.item.locks.iter().map(|a| a.lock.clone()).collect())
        .collect();
    let mut work: Vec<usize> = (0..n).filter(|&i| !takes[i].is_empty()).collect();
    while let Some(j) = work.pop() {
        for &i in &rev[j] {
            let missing: Vec<String> = takes[j].difference(&takes[i]).cloned().collect();
            if !missing.is_empty() {
                takes[i].extend(missing);
                work.push(i);
            }
        }
    }
    takes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphInput, Workspace};
    use crate::parse::FileModel;
    use crate::policy::policy_for_dir;
    use crate::source::SourceFile;

    struct NoSupp;
    impl SuppressionOracle for NoSupp {
        fn suppressed(&mut self, _: usize, _: usize, _: CheckId) -> bool {
            false
        }
    }

    fn run(text: &str) -> Vec<Diagnostic> {
        let policy = policy_for_dir("crates/obs").expect("registered");
        let src = SourceFile::parse(text);
        let model = FileModel::parse("crates/obs/src/lib.rs", &src);
        let inputs = [GraphInput {
            rel: "crates/obs/src/lib.rs",
            file_idx: 0,
            policy,
            model: &model,
        }];
        let ws = Workspace::build(&inputs);
        let mut out = Vec::new();
        check(&ws, &mut NoSupp, &mut out);
        out
    }

    #[test]
    fn two_mutex_ordering_cycle_is_flagged() {
        let d = run(
            "pub struct S;\nimpl S {\n    pub fn ab(&self) {\n        let a = self.alpha.lock();\n        let b = self.beta.lock();\n        drop(b);\n        drop(a);\n    }\n    pub fn ba(&self) {\n        let b = self.beta.lock();\n        let a = self.alpha.lock();\n        drop(a);\n        drop(b);\n    }\n}\n",
        );
        let cycles: Vec<&Diagnostic> = d
            .iter()
            .filter(|d| d.message.contains("lock-order cycle"))
            .collect();
        assert_eq!(cycles.len(), 1, "{d:?}");
        assert_eq!(cycles[0].symbol, "S.alpha -> S.beta -> S.alpha");
        assert_eq!(cycles[0].line, 5);
    }

    #[test]
    fn consistent_order_is_clean() {
        let d = run(
            "pub struct S;\nimpl S {\n    pub fn ab(&self) {\n        let a = self.alpha.lock();\n        let b = self.beta.lock();\n        drop(b);\n        drop(a);\n    }\n    pub fn ab2(&self) {\n        let a = self.alpha.lock();\n        let b = self.beta.lock();\n        drop(b);\n        drop(a);\n    }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn held_across_call_into_lock_taker_is_flagged() {
        let d = run(
            "pub struct S;\nimpl S {\n    pub fn outer(&self) {\n        let g = self.alpha.lock();\n        helper();\n        drop(g);\n    }\n}\nfn helper() {\n    let l = std::sync::Mutex::new(0);\n    let g = l.lock();\n}\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 5);
        assert_eq!(d[0].symbol, "eaao_obs::S::outer -> eaao_obs::helper");
        assert!(d[0].message.contains("`S.alpha`"), "{}", d[0].message);
    }

    #[test]
    fn transient_locking_with_no_nesting_is_clean() {
        let d = run(
            "pub struct S;\nimpl S {\n    pub fn push(&self, v: u32) {\n        self.items.lock().push(v);\n    }\n    pub fn take(&self) -> Vec<u32> {\n        std::mem::take(&mut *self.items.lock())\n    }\n}\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
