//! `fork-coverage`: every field of a fork-surface type must be mentioned
//! in each of its fork-path impls.
//!
//! This is the static form of the SimClock bug: PR 8 added a struct field
//! whose share-vs-detach behavior was never decided, and a sharing
//! `derive(Clone)` silently leaked simulated time across
//! `World::branch()`. The check makes that decision mandatory:
//!
//! - A manual `clone`/`fork`/`branch`/`snapshot` that re-produces the
//!   type (returns `Self` or the type by name) must name every field (or
//!   enum variant) in its body — a missing mention means a new field was
//!   added without deciding what the fork path does with it. A pure
//!   delegator (no field mentions, calls another fork-path fn, like
//!   `World::branch` = `self.clone()`) hands the obligation to its
//!   delegate.
//! - `derive(Clone)` on a fork-surface type with an `Arc` field is a
//!   finding on its own: the derive shares the pointee without anyone
//!   writing that decision down. Either impl `Clone` manually (the
//!   mention requirement then documents each field) or suppress at the
//!   field with the sanctioned-sharing justification.
//!
//! Findings anchor at the field's declaration line with symbol
//! `Type.field` (or `Type::fn.field` for a missing mention), so inline
//! suppressions sit on the field and baseline entries survive line churn.

use crate::diag::{CheckId, Diagnostic};
use crate::fields::{classify, has_named_fields, returns_self, FieldModel};

/// Runs the check over the field model, appending raw
/// `(file_idx, finding)` pairs (the driver applies suppressions).
pub fn check(model: &FieldModel, out: &mut Vec<(usize, Diagnostic)>) {
    for t in model.fork_surface() {
        if !has_named_fields(&t.def) {
            continue;
        }
        // Rule 1: derive(Clone) + Arc field = an undocumented share.
        if t.derives_clone() {
            for field in &t.def.fields {
                if classify(&field.ty).arc {
                    out.push((
                        t.file_idx,
                        Diagnostic::new(
                            &t.rel,
                            field.line,
                            CheckId::ForkCoverage,
                            format!(
                                "derive(Clone) on fork-surface type `{}` silently \
                                 shares `Arc` field `{}`; impl Clone by hand so the \
                                 share-vs-detach decision is written down, or \
                                 suppress here with the sanctioned-sharing reason",
                                t.def.name, field.name
                            ),
                        )
                        .with_symbol(format!("{}.{}", t.def.name, field.name)),
                    ));
                }
            }
        }
        // Rule 2: each re-producing fork-path body mentions every field.
        // A *pure delegator* — a body naming no field at all but naming
        // another fork-path fn (`World::branch` is `self.clone()`) — hands
        // its obligation to the delegate; a body mentioning *some* fields
        // is constructing the value and owes all of them.
        for f in &t.fork_fns {
            if !returns_self(f, &t.def.name) {
                continue;
            }
            let mentions_any = t
                .def
                .fields
                .iter()
                .any(|fl| f.body_idents.contains(&fl.name));
            let delegates = crate::fields::FORK_FN_NAMES
                .iter()
                .any(|n| *n != f.name && f.body_idents.contains(*n));
            if !mentions_any && delegates {
                continue;
            }
            for field in &t.def.fields {
                if f.body_idents.contains(&field.name) {
                    continue;
                }
                out.push((
                    t.file_idx,
                    Diagnostic::new(
                        &t.rel,
                        field.line,
                        CheckId::ForkCoverage,
                        format!(
                            "`{}::{}` does not mention field `{}`: decide its \
                             share-vs-detach behavior in the fork path (the \
                             SimClock bug class), or suppress here with the reason",
                            t.def.name, f.name, field.name
                        ),
                    )
                    .with_symbol(format!("{}::{}.{}", t.def.name, f.name, field.name)),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::{FieldModel, FileInput};
    use crate::parse::FileModel;
    use crate::policy::policy_for_dir;
    use crate::source::SourceFile;

    fn run(files: &[(&str, &str, &str)]) -> Vec<(usize, Diagnostic)> {
        let parsed: Vec<(&str, SourceFile)> = files
            .iter()
            .map(|(_, rel, text)| (*rel, SourceFile::parse(text)))
            .collect();
        let models: Vec<FileModel> = parsed
            .iter()
            .map(|(rel, src)| FileModel::parse(rel, src))
            .collect();
        let inputs: Vec<FileInput<'_>> = files
            .iter()
            .zip(&parsed)
            .zip(&models)
            .enumerate()
            .map(|(i, (((dir, rel, _), (_, src)), model))| FileInput {
                rel,
                file_idx: i,
                policy: policy_for_dir(dir).expect("registered dir"),
                src,
                model,
            })
            .collect();
        let fm = FieldModel::build(&inputs);
        let mut out = Vec::new();
        check(&fm, &mut out);
        out
    }

    #[test]
    fn a_fork_body_missing_a_field_is_flagged_at_the_field() {
        let out = run(&[(
            "crates/simcore",
            "crates/simcore/src/rng.rs",
            "pub struct Rng {\n    state: u64,\n    stream: u64,\n}\n\
             impl Rng {\n    pub fn fork(&mut self) -> Rng {\n        \
             Rng { state: self.state ^ 1, stream: 0 }\n    }\n}\n\
             pub struct Missing {\n    a: u64,\n    b: u64,\n}\n\
             impl Missing {\n    pub fn fork(&mut self) -> Self {\n        \
             Missing { a: self.a, ..Default::default() }\n    }\n}\n",
        )]);
        assert_eq!(out.len(), 1);
        let (_, d) = &out[0];
        assert_eq!(d.check, CheckId::ForkCoverage);
        assert_eq!(d.line, 12); // `b: u64` in Missing
        assert_eq!(d.symbol, "Missing::fork.b");
        assert!(d.message.contains("does not mention field `b`"));
    }

    #[test]
    fn derived_clone_with_arc_field_is_an_undocumented_share() {
        let out = run(&[(
            "crates/simcore",
            "crates/simcore/src/clock.rs",
            "#[derive(Debug, Clone)]\npub struct Clock {\n    now: Arc<Mutex<u64>>,\n    \
             epoch: u64,\n}\n\
             impl Clock {\n    pub fn fork(&self) -> Clock {\n        \
             let now = self.now;\n        let epoch = self.epoch;\n        \
             Clock { now, epoch }\n    }\n}\n",
        )]);
        // Only the Arc field under derive(Clone); the fork body covers both.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.symbol, "Clock.now");
        assert!(out[0].1.message.contains("derive(Clone)"));
    }

    #[test]
    fn manual_clone_mentioning_every_field_passes() {
        let out = run(&[(
            "crates/cloudsim",
            "crates/cloudsim/src/wsample.rs",
            "pub struct Sampler {\n    tree: Arc<Vec<u64>>,\n    total: u64,\n}\n\
             impl Clone for Sampler {\n    fn clone(&self) -> Self {\n        \
             Sampler { tree: Arc::clone(&self.tree), total: self.total }\n    }\n}\n\
             impl Sampler {\n    pub fn branch(&self) -> Self {\n        self.clone()\n    }\n}\n",
        )]);
        // The manual clone names both fields; `branch` is a pure
        // delegator (`self.clone()`, no field mentions) so its obligation
        // transfers to `clone`. Nothing fires.
        assert!(out.is_empty(), "got {:?}", out);
    }

    #[test]
    fn partial_field_mentions_are_not_delegation() {
        let out = run(&[(
            "crates/cloudsim",
            "crates/cloudsim/src/wsample.rs",
            "pub struct Sampler {\n    tree: Arc<Vec<u64>>,\n    total: u64,\n}\n\
             impl Sampler {\n    pub fn branch(&self) -> Self {\n        \
             Sampler { tree: Arc::clone(&self.tree), ..self.clone() }\n    }\n}\n",
        )]);
        // Mentions `tree` (and the word `clone`), so it is constructing,
        // not delegating: `total` is still owed.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.symbol, "Sampler::branch.total");
    }

    #[test]
    fn non_reproducing_snapshots_owe_nothing_for_the_source_type() {
        let out = run(&[(
            "crates/orchestrator",
            "crates/orchestrator/src/world.rs",
            "pub struct World {\n    hosts: u64,\n    idle: u64,\n}\n\
             impl World {\n    pub fn snapshot(&self) -> WorldSnapshot {\n        \
             WorldSnapshot { sealed: self.hosts }\n    }\n}\n\
             pub struct WorldSnapshot {\n    sealed: u64,\n}\n",
        )]);
        assert!(out.is_empty(), "got {:?}", out);
    }

    #[test]
    fn enum_fork_paths_must_match_every_variant() {
        let out = run(&[(
            "crates/orchestrator",
            "crates/orchestrator/src/platform.rs",
            "pub enum Policy {\n    Fixed(u64),\n    Sampled(u64),\n}\n\
             impl Clone for Policy {\n    fn clone(&self) -> Self {\n        \
             match self {\n            Policy::Fixed(x) => Policy::Fixed(*x),\n            \
             _ => unreachable!(),\n        }\n    }\n}\n\
             impl Policy {\n    pub fn branch(&self) -> Self {\n        \
             match self {\n            Policy::Fixed(x) => Policy::Fixed(*x),\n            \
             Policy::Sampled(x) => Policy::Sampled(*x),\n        }\n    }\n}\n",
        )]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.symbol, "Policy::clone.Sampled");
    }
}
